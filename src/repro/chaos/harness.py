"""Broker kill-and-restart orchestration for crash-safety tests and CI.

:class:`BrokerHarness` runs a *journaled* :class:`~repro.distributed.
broker.SweepBroker` in a child process (``spawn`` start method, so the
child is a clean interpreter that can be SIGKILLed without corrupting any
state shared with the test) on a **fixed port**, so workers that survive
the kill reconnect to the restarted broker at the same address.  The
canonical chaos scenario::

    plan = FaultPlan(drop_after_frames=8, drop_every=5)
    harness = BrokerHarness(tasks, journal_path=tmp / "sweep.journal",
                            store_root=tmp / "artifacts")
    harness.start()
    ...workers run with options.connect_factory=plan.connect and a
       reconnect RetryPolicy whose deadline spans the restart gap...
    harness.wait_for_deliveries(3)        # journal shows progress
    harness.kill()                        # SIGKILL: no atexit, no flush
    harness.start()                       # replays the journal, resumes
    harness.wait_until_exit()             # broker exits once grid drains
    results read back from the store / journal

Everything the harness asserts against is on disk (the fsync'd journal,
the artifact store), never in the killed process — that is the point.
"""

from __future__ import annotations

import multiprocessing as mp
import socket
import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.distributed.journal import count_deliveries
from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.chaos.harness")


def free_port(host: str = "127.0.0.1") -> int:
    """Pick a currently-free TCP port to use as a *fixed* broker address.

    Brokers normally bind port 0 and publish the kernel's choice, but a
    restarted broker must come back on the address its workers already
    know, so the harness reserves a concrete port up front.  (The classic
    bind-then-close race is real but irrelevant at test scale.)
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _journaled_broker_main(tasks, host: str, port: int, journal_path: str,
                           store_root: Optional[str],
                           heartbeat_timeout: float, lease_batch: int) -> None:
    """Child-process target: serve the grid until it drains, then exit.

    Module-level (and all-picklable arguments) so it starts under the
    ``spawn`` method.  Deferred imports keep the parent's module graph out
    of the child until it actually runs.
    """
    from repro.api.store import ArtifactStore
    from repro.distributed.broker import SweepBroker

    store = ArtifactStore(store_root) if store_root else None
    broker = SweepBroker(list(tasks), host=host, port=port, store=store,
                         heartbeat_timeout=heartbeat_timeout,
                         lease_batch=lease_batch, journal=journal_path)
    broker.start()
    try:
        broker.join()
    finally:
        broker.close()


class BrokerHarness:
    """Own one journaled broker subprocess; kill and restart it at will."""

    def __init__(self, tasks: Sequence, *, journal_path: Union[str, Path],
                 store_root: Optional[Union[str, Path]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 heartbeat_timeout: float = 5.0, lease_batch: int = 1) -> None:
        self.tasks = list(tasks)
        self.journal_path = Path(journal_path)
        self.store_root = str(store_root) if store_root is not None else None
        self.host = host
        self.port = port or free_port(host)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.lease_batch = int(lease_batch)
        self._ctx = mp.get_context("spawn")
        self._process: Optional[mp.process.BaseProcess] = None
        #: Broker processes started so far (sessions; kills don't decrement).
        self.starts = 0
        self.kills = 0

    # ------------------------------------------------------------------ lifecycle
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def start(self) -> "BrokerHarness":
        """Start (or restart) the broker process on the fixed port.

        A restart replays ``journal_path`` before binding, which is the
        crash-recovery path under test.  Waits until the port accepts
        connections so callers can connect workers immediately.
        """
        if self.alive:
            raise RuntimeError("broker process already running")
        self._process = self._ctx.Process(
            target=_journaled_broker_main,
            args=(self.tasks, self.host, self.port, str(self.journal_path),
                  self.store_root, self.heartbeat_timeout, self.lease_batch),
            daemon=True, name=f"chaos-broker-{self.starts}")
        self._process.start()
        self.starts += 1
        self._await_port()
        _LOGGER.info("chaos broker up", address=self.address,
                     session=self.starts)
        return self

    def _await_port(self, timeout: float = 15.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._process is not None and not self._process.is_alive():
                raise RuntimeError(
                    "broker process exited during startup (exit code "
                    f"{self._process.exitcode}); journal: {self.journal_path}")
            try:
                socket.create_connection((self.host, self.port),
                                         timeout=0.2).close()
                return
            except OSError:
                time.sleep(0.05)
        raise TimeoutError(f"broker never bound {self.address}")

    def kill(self) -> None:
        """SIGKILL the broker — no cleanup, no flush; the crash under test."""
        if self._process is None:
            raise RuntimeError("broker was never started")
        self._process.kill()
        self._process.join(timeout=10.0)
        self.kills += 1
        _LOGGER.info("chaos broker killed", session=self.starts)

    def terminate(self) -> None:
        """Best-effort teardown for test finalizers (idempotent)."""
        if self._process is not None and self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)

    def __enter__(self) -> "BrokerHarness":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.terminate()

    # ------------------------------------------------------------------ waiting
    def deliveries(self) -> int:
        """Fsync'd ``deliver`` records in the journal right now."""
        return count_deliveries(self.journal_path)

    def wait_for_deliveries(self, n: int, *, timeout: float = 120.0) -> int:
        """Block until the journal holds >= ``n`` deliveries; returns the count.

        This is how tests decide *when* to kill: the journal is the only
        authority on durable progress, so "kill after 3 deliveries" is a
        deterministic statement about recoverable state, not a sleep.
        """
        deadline = time.monotonic() + timeout
        while True:
            done = self.deliveries()
            if done >= n:
                return done
            if not self.alive:
                raise RuntimeError(
                    f"broker exited with only {done}/{n} deliveries journaled "
                    f"(exit code {self._process.exitcode})")
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"journal stuck at {done}/{n} deliveries after {timeout}s")
            time.sleep(0.05)

    def wait_until_exit(self, timeout: float = 120.0) -> int:
        """Block until the broker process exits on its own (grid drained)."""
        if self._process is None:
            raise RuntimeError("broker was never started")
        self._process.join(timeout=timeout)
        if self._process.is_alive():
            raise TimeoutError(f"broker still running after {timeout}s")
        return self._process.exitcode


def run_workers_through(harness: BrokerHarness, n_workers: int, *,
                        make_options) -> List["_WorkerThread"]:
    """Start ``n_workers`` in-process worker threads against a harness.

    ``make_options(i)`` builds each worker's ``WorkerOptions`` — typically
    with a reconnect ``RetryPolicy`` whose deadline spans the planned
    broker outage and a ``FaultPlan.connect`` factory.  Threads (not
    processes) keep the fault plan's counters shared with the test.
    """
    threads = [_WorkerThread(harness.host, harness.port, make_options(i))
               for i in range(n_workers)]
    for thread in threads:
        thread.start()
    return threads


class _WorkerThread:
    """One ``run_worker`` call on a thread, capturing its outcome."""

    def __init__(self, host: str, port: int, options) -> None:
        self.options = options
        self.completed: Optional[int] = None
        self.error: Optional[BaseException] = None
        import threading

        def main() -> None:
            from repro.distributed.worker import run_worker
            try:
                self.completed = run_worker(host, port, options)
            except BaseException as error:   # noqa: BLE001 - surfaced to the test
                self.error = error

        self._thread = threading.Thread(target=main, daemon=True,
                                        name="chaos-worker")

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


__all__ = ["BrokerHarness", "free_port", "run_workers_through"]
