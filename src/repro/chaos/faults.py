"""Deterministic transport fault injection: :class:`FaultPlan`.

A ``FaultPlan`` is a seeded, fully deterministic schedule of network
misbehaviour that wraps real sockets:

* **refuse connects** — the first ``refuse_connects`` connection attempts
  (and/or every ``refuse_every``-th one) raise ``ConnectionRefusedError``
  before any socket exists, exercising connect-retry paths;
* **drop connections** — every ``drop_every``-th established connection is
  severed after ``drop_after_frames`` outbound frames, exercising
  reconnect + redelivery;
* **truncate a frame mid-write** — the ``truncate_after_frames``-th frame
  of an affected connection is cut in half on the wire and the connection
  dies, so the peer observes EOF mid-length-header or mid-payload;
* **delay** — ``delay_seconds`` added before every frame send, exercising
  timeout paths without a real slow network.

Injection points: ``WorkerOptions(connect_factory=plan.connect)`` and
``PolicyClient(connect_factory=plan.connect)`` — or :meth:`FaultPlan.wrap`
around any already-connected socket (tests wrap one end of a socketpair).
The ``repro worker --fault-plan SPEC`` CLI flag parses the same
comma-separated spec :meth:`FaultPlan.from_spec` does, which is how the
CI chaos job injects faults into real worker processes.

Determinism: the plan's schedule depends only on its parameters, its
``seed`` and the *order* of connections through it — no wall clock, no
global RNG.  Counters (:meth:`FaultPlan.snapshot`) let tests assert the
faults actually fired instead of silently configuring a no-op plan.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule for one test/CI scenario.

    All knobs default to "off"; a default-constructed plan is a transparent
    pass-through (asserted in tests, so wiring a plan through production
    code paths is provably behaviour-neutral when unused).

    Parameters
    ----------
    seed:
        Seeds the per-plan RNG used only when ``jitter_frames`` is on.
    refuse_connects:
        Refuse this many connection attempts before letting any through.
    refuse_every:
        Additionally refuse every N-th attempt (1-based count; 0 = off).
    drop_after_frames:
        Sever an affected connection after this many outbound frames
        (0 = never drop).
    drop_every:
        Which established connections the drop/truncate rules affect:
        every N-th one (1 = every connection, 0 = none).
    truncate_after_frames:
        On affected connections, cut the N-th outbound frame in half
        mid-write and kill the connection (0 = off).  Takes precedence
        over ``drop_after_frames`` when both land on the same frame.
    delay_seconds:
        Sleep added before every outbound frame (0 = off).
    jitter_frames:
        With ``drop_after_frames`` set, vary the actual drop frame per
        affected connection in ``[1, drop_after_frames]``, drawn from the
        seeded RNG — still fully deterministic for a given seed and
        connection order.
    """

    seed: int = 0
    refuse_connects: int = 0
    refuse_every: int = 0
    drop_after_frames: int = 0
    drop_every: int = 1
    truncate_after_frames: int = 0
    delay_seconds: float = 0.0
    jitter_frames: bool = False

    def __post_init__(self) -> None:
        for name in ("refuse_connects", "refuse_every", "drop_after_frames",
                     "drop_every", "truncate_after_frames"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        # Mutable bookkeeping on a frozen dataclass: the schedule is frozen,
        # the counters are not.
        object.__setattr__(self, "_lock", threading.Lock())
        object.__setattr__(self, "_rng", random.Random(self.seed))
        object.__setattr__(self, "_counters", {
            "connects_attempted": 0,
            "connects_refused": 0,
            "connections_established": 0,
            "connections_dropped": 0,
            "frames_truncated": 0,
            "frames_delayed": 0,
        })

    # ------------------------------------------------------------------ spec
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"drop_after_frames=8,drop_every=5,seed=7"`` into a plan.

        Accepts every dataclass field as ``name=value``; unknown names
        raise ``ValueError`` with the accepted list, so a typo'd CLI flag
        fails loudly instead of silently injecting nothing.
        """
        known = {f.name: f.type for f in fields(cls)}
        kwargs: Dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            name = name.strip()
            if not sep or name not in known:
                raise ValueError(
                    f"bad fault-plan entry {part!r}; accepted keys: "
                    f"{', '.join(sorted(known))}")
            value = value.strip()
            if name == "delay_seconds":
                kwargs[name] = float(value)
            elif name == "jitter_frames":
                kwargs[name] = value.lower() in ("1", "true", "yes", "on")
            else:
                kwargs[name] = int(value)
        return cls(**kwargs)

    def to_spec(self) -> str:
        """The ``from_spec`` round-trip of this plan's non-default knobs."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={int(value) if f.name == 'jitter_frames' else value}")
        return ",".join(parts)

    # ------------------------------------------------------------------ counters
    def _count(self, name: str, amount: int = 1) -> int:
        with self._lock:                              # type: ignore[attr-defined]
            counters = self._counters                 # type: ignore[attr-defined]
            counters[name] += amount
            return counters[name]

    def snapshot(self) -> Dict[str, int]:
        """Copy of the fault counters (what actually fired so far)."""
        with self._lock:                              # type: ignore[attr-defined]
            return dict(self._counters)               # type: ignore[attr-defined]

    # ------------------------------------------------------------------ wiring
    def connect(self, host: str, port: int,
                timeout: Optional[float] = None) -> "FaultySocket":
        """Drop-in for ``socket.create_connection`` with faults applied.

        Matches the ``connect_factory`` signature the worker and the
        serving client accept.
        """
        attempt = self._count("connects_attempted")
        refused = (attempt <= self.refuse_connects
                   or (self.refuse_every and attempt % self.refuse_every == 0))
        if refused:
            self._count("connects_refused")
            raise ConnectionRefusedError(
                f"fault plan refused connection attempt #{attempt}")
        sock = socket.create_connection((host, port), timeout=timeout)
        return self.wrap(sock)

    def wrap(self, sock: socket.socket) -> "FaultySocket":
        """Wrap an existing socket (e.g. one the broker just accepted)."""
        with self._lock:                              # type: ignore[attr-defined]
            self._counters["connections_established"] += 1   # type: ignore[attr-defined]
            ordinal = self._counters["connections_established"]  # type: ignore[attr-defined]
            affected = bool(self.drop_every
                            and ordinal % self.drop_every == 0)
            drop_at = 0
            if affected and self.drop_after_frames:
                drop_at = (self._rng.randint(1, self.drop_after_frames)  # type: ignore[attr-defined]
                           if self.jitter_frames else self.drop_after_frames)
            truncate_at = (self.truncate_after_frames
                           if affected and self.truncate_after_frames else 0)
        return FaultySocket(sock, self, drop_at=drop_at,
                            truncate_at=truncate_at,
                            delay=self.delay_seconds)


class FaultyConnectionError(ConnectionError):
    """The fault plan severed this connection (drop or truncation)."""


class FaultySocket:
    """A socket proxy that executes one connection's fault schedule.

    Implements exactly the surface :mod:`repro.distributed.protocol` uses
    (``sendall``/``recv``/``settimeout``/``close`` + context manager) and
    forwards everything else to the wrapped socket.  "Frames" are
    ``sendall`` calls: :func:`~repro.distributed.protocol.send_message`
    writes each frame with a single ``sendall``, so outbound frame counts
    are exact.
    """

    def __init__(self, sock: socket.socket, plan: FaultPlan, *,
                 drop_at: int = 0, truncate_at: int = 0,
                 delay: float = 0.0) -> None:
        self._sock = sock
        self._plan = plan
        self._drop_at = drop_at
        self._truncate_at = truncate_at
        self._delay = delay
        self._frames_sent = 0
        self._dead: Optional[str] = None

    # ------------------------------------------------------------------ faults
    def _die(self, reason: str, counter: str) -> None:
        self._dead = reason
        self._plan._count(counter)
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        raise FaultyConnectionError(f"fault plan: {reason}")

    def _check_dead(self) -> None:
        if self._dead is not None:
            raise FaultyConnectionError(f"fault plan: {self._dead}")

    def sendall(self, data: bytes) -> None:
        self._check_dead()
        self._frames_sent += 1
        if self._delay:
            self._plan._count("frames_delayed")
            time.sleep(self._delay)
        if self._truncate_at and self._frames_sent == self._truncate_at:
            # Write a strict prefix — cutting inside the 8-byte length
            # header for tiny frames, inside the payload for normal ones —
            # then kill the connection, so the peer sees EOF mid-frame.
            try:
                self._sock.sendall(data[:max(1, len(data) // 2)])
            except OSError:
                pass
            self._die(f"truncated frame #{self._frames_sent} mid-write",
                      "frames_truncated")
        if self._drop_at and self._frames_sent > self._drop_at:
            self._die(f"dropped connection after {self._drop_at} frames",
                      "connections_dropped")
        self._sock.sendall(data)

    def recv(self, bufsize: int) -> bytes:
        self._check_dead()
        return self._sock.recv(bufsize)

    # ------------------------------------------------------------------ passthrough
    def settimeout(self, value: Optional[float]) -> None:
        self._sock.settimeout(value)

    def close(self) -> None:
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()

    def getpeername(self):
        return self._sock.getpeername()

    def getsockname(self):
        return self._sock.getsockname()

    def __enter__(self) -> "FaultySocket":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = f"dead: {self._dead}" if self._dead else "live"
        return (f"FaultySocket(frames_sent={self._frames_sent}, "
                f"drop_at={self._drop_at}, {state})")


__all__ = ["FaultPlan", "FaultyConnectionError", "FaultySocket"]
