"""Deterministic chaos engineering for the distributed stack.

Two pieces, composable with any test:

* :class:`FaultPlan` — a seeded, reproducible schedule of transport faults
  (refused connects, dropped connections after N frames, frames truncated
  mid-write, per-frame delay) injected through the ``connect_factory``
  seam of workers and serving clients, or ``SweepBroker(fault_plan=...)``
  on the accepting side.
* :class:`BrokerHarness` — a journaled broker in a SIGKILL-able child
  process on a fixed port, with journal-driven progress waits, so "kill
  the broker after exactly 3 durable deliveries, restart it, and demand a
  byte-identical sweep" is a deterministic test rather than a flake.

Nothing in here is imported by production code paths; the chaos layer
observes and wraps, it is never load-bearing.
"""

from repro.chaos.faults import FaultPlan, FaultyConnectionError, FaultySocket
from repro.chaos.harness import BrokerHarness, free_port, run_workers_through

__all__ = ["BrokerHarness", "FaultPlan", "FaultyConnectionError",
           "FaultySocket", "free_port", "run_workers_through"]
