"""Experiment E1: FPGA resource utilization of the OS-ELM Q-Network core (Table 3).

Sweeps the hidden-layer size over the paper's values (32, 64, 128, 192, 256),
runs the analytical area model against the xc7z020 and reports percent
utilization of BRAM / DSP / FF / LUT — marking, like the paper, the 256-unit
design as unimplementable because it exceeds the device's BRAM capacity.

Registered with the unified experiment API as ``table3``
(``python -m repro run table3``); the engine calls :func:`resource_table`
directly since there are no training trials to sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.reporting import format_table, relative_error
from repro.fpga.device import FPGADevice, XC7Z020
from repro.fpga.resources import (
    TABLE3_HIDDEN_SIZES,
    TABLE3_PAPER_VALUES,
    OSELMCoreResourceModel,
    ResourceReport,
)


def resource_table(hidden_sizes: Sequence[int] = TABLE3_HIDDEN_SIZES, *,
                   n_inputs: int = 5, n_outputs: int = 1,
                   device: FPGADevice = XC7Z020,
                   model: Optional[OSELMCoreResourceModel] = None) -> ResourceReport:
    """Generate the Table-3 sweep with the analytical area model."""
    if model is None:
        model = OSELMCoreResourceModel(n_inputs=n_inputs, n_outputs=n_outputs)
    return model.report(hidden_sizes, device)


def compare_with_paper(report: Optional[ResourceReport] = None) -> List[Dict[str, object]]:
    """Side-by-side rows: modelled utilization vs the paper's Table 3 values.

    Rows for designs the paper marks as unimplementable compare the *fits*
    flag instead of percentages.
    """
    if report is None:
        report = resource_table()
    rows: List[Dict[str, object]] = []
    for n_hidden, paper_values in TABLE3_PAPER_VALUES.items():
        try:
            row = report.row_for(n_hidden)
        except KeyError:
            continue
        if paper_values is None:
            rows.append({
                "Units": n_hidden,
                "paper_fits": False,
                "model_fits": row.fits,
                "agreement": not row.fits,
            })
            continue
        for resource, paper_pct in paper_values.items():
            model_pct = row.utilization_percent[resource]
            rows.append({
                "Units": n_hidden,
                "resource": resource,
                "paper_percent": paper_pct,
                "model_percent": round(model_pct, 2),
                "relative_error": round(relative_error(model_pct, paper_pct), 3),
            })
    return rows


def render_table3(report: Optional[ResourceReport] = None) -> str:
    """Text rendering in the paper's Table 3 layout."""
    if report is None:
        report = resource_table()
    rows = []
    for row in report.rows:
        cells: Dict[str, object] = {"Units": row.n_hidden}
        if row.fits:
            cells.update({f"{k} [%]": round(v, 2) for k, v in row.utilization_percent.items()})
        else:
            cells.update({f"{k} [%]": None for k in ("BRAM", "DSP", "FF", "LUT")})
        rows.append(cells)
    return format_table(
        rows,
        columns=["Units", "BRAM [%]", "DSP [%]", "FF [%]", "LUT [%]"],
        title="Table 3: FPGA resource utilization of OS-ELM Q-Network core "
              f"({report.device_name})",
    )
