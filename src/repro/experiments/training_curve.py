"""Experiment E2: training curves of the six software designs (Figure 4).

For each (design, hidden-layer size) pair the experiment trains an agent on
CartPole-v0 with the paper's protocol and records the per-episode number of
steps the pole stayed up plus its 100-episode moving average — the two
series plotted as the light and dark lines of Figure 4.

The paper runs each design to 50,000 episodes (or success) on the board; the
harness exposes the same protocol but defaults to CI-scale budgets so the
benchmark suite terminates quickly.  Use ``paper_scale()`` to get the
full-scale configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.designs import SOFTWARE_DESIGNS, make_design
from repro.experiments.reporting import format_table
from repro.rl.recording import TrainingResult
from repro.rl.runner import TrainingConfig, train_agent
from repro.utils.logging import get_logger
from repro.utils.seeding import stable_hash

_LOGGER = get_logger("repro.experiments.training_curve")

#: Hidden-layer sizes shown in Figure 4.
FIGURE4_HIDDEN_SIZES: Tuple[int, ...] = (32, 64, 128, 192)


@dataclass
class TrainingCurveResult:
    """All runs of one training-curve experiment, indexed by (design, n_hidden)."""

    results: Dict[Tuple[str, int], TrainingResult] = field(default_factory=dict)

    def add(self, result: TrainingResult) -> None:
        self.results[(result.design, result.n_hidden)] = result

    def get(self, design: str, n_hidden: int) -> TrainingResult:
        return self.results[(design, n_hidden)]

    def designs(self) -> List[str]:
        return sorted({key[0] for key in self.results})

    def hidden_sizes(self) -> List[int]:
        return sorted({key[1] for key in self.results})

    def curve_series(self, design: str, n_hidden: int) -> Dict[str, np.ndarray]:
        """The (episodes, steps, moving_average) series for one panel line of Figure 4."""
        return self.get(design, n_hidden).curve.as_dict()

    def summary_rows(self) -> List[Dict[str, object]]:
        rows = []
        for (design, n_hidden), result in sorted(self.results.items(),
                                                 key=lambda kv: (kv[0][1], kv[0][0])):
            rows.append({
                "design": design,
                "n_hidden": n_hidden,
                "solved": result.solved,
                "episodes": result.episodes,
                "episodes_to_solve": result.episodes_to_solve,
                "final_avg_steps": round(result.curve.final_average(), 1),
                "weight_resets": result.weight_resets,
            })
        return rows

    def render(self) -> str:
        return format_table(self.summary_rows(),
                            title="Figure 4 summary: training outcome per design / hidden size")


@dataclass(frozen=True)
class TrainingCurveExperiment:
    """Configuration + runner for the Figure 4 experiment.

    Parameters
    ----------
    designs:
        Subset of the software designs to run (all six by default).
    hidden_sizes:
        Hidden-layer sizes to sweep (Figure 4 uses 32–192).
    training:
        Protocol configuration; the default is a CI-scale budget.
    seed:
        Base seed; each (design, hidden) run derives its own seed from it.
    parallel:
        Fan the (design, hidden-size) grid across a worker pool via
        :mod:`repro.parallel` instead of looping serially.  Each cell runs
        the identical ``run_single`` with the identical derived seed, so
        results match the serial mode cell-for-cell.
    max_workers:
        Pool size when ``parallel`` (default: one worker per cell, capped
        by the CPU count).
    """

    designs: Sequence[str] = SOFTWARE_DESIGNS
    hidden_sizes: Sequence[int] = FIGURE4_HIDDEN_SIZES
    training: TrainingConfig = field(default_factory=lambda: TrainingConfig(max_episodes=300))
    seed: int = 42
    gamma: float = 0.99
    parallel: bool = False
    max_workers: Optional[int] = None

    @staticmethod
    def paper_scale() -> "TrainingCurveExperiment":
        """The full protocol of Section 4.3 (50,000-episode cutoff, 195/100 criterion)."""
        return TrainingCurveExperiment(training=TrainingConfig(max_episodes=50_000))

    @staticmethod
    def ci_scale(designs: Sequence[str] = ("OS-ELM-L2-Lipschitz", "DQN"),
                 hidden_sizes: Sequence[int] = (32,),
                 max_episodes: int = 60) -> "TrainingCurveExperiment":
        """A minutes-scale configuration used by the benchmark suite."""
        return TrainingCurveExperiment(
            designs=designs,
            hidden_sizes=hidden_sizes,
            training=TrainingConfig(max_episodes=max_episodes, solved_threshold=60.0,
                                    solved_window=20),
        )

    # ------------------------------------------------------------------ execution
    def run_single(self, design: str, n_hidden: int, *, trial: int = 0) -> TrainingResult:
        """Train one (design, hidden-size) combination."""
        seed = self.seed + 1000 * trial + 17 * n_hidden + stable_hash(design) % 997
        agent = make_design(design, n_hidden=n_hidden, gamma=self.gamma, seed=seed)
        config = TrainingConfig(
            env_id=self.training.env_id,
            max_episodes=self.training.max_episodes,
            max_steps_per_episode=self.training.max_steps_per_episode,
            solved_threshold=self.training.solved_threshold,
            solved_window=self.training.solved_window,
            reward_shaping=self.training.reward_shaping,
            success_steps=self.training.success_steps,
            stop_when_solved=self.training.stop_when_solved,
            record_lipschitz=self.training.record_lipschitz,
            seed=seed,
        )
        _LOGGER.info("training", design=design, n_hidden=n_hidden,
                     max_episodes=config.max_episodes)
        return train_agent(agent, config=config, n_hidden=n_hidden)

    def run(self) -> TrainingCurveResult:
        """Run the full sweep and return the collected curves."""
        from repro.parallel.pool import run_experiment_grid

        collected = TrainingCurveResult()
        grid = [(design, int(n_hidden))
                for n_hidden in self.hidden_sizes for design in self.designs]
        for result in run_experiment_grid(self, grid, parallel=self.parallel,
                                          max_workers=self.max_workers):
            collected.add(result)
        return collected


def stability_classification(result: TrainingResult, *, collapse_window: int = 50,
                             collapse_threshold: float = 0.5) -> str:
    """Classify a training curve the way Section 4.3 discusses them.

    Returns one of:

    * ``"solved"`` — reached the solved criterion;
    * ``"collapsed"`` — the late moving average fell below ``collapse_threshold``
      times the peak moving average (the paper's description of plain OS-ELM,
      whose performance degrades as outliers corrupt beta);
    * ``"not_learning"`` — never rose meaningfully above the initial performance.
    """
    if result.solved:
        return "solved"
    averages = result.curve.moving_average
    if averages.size == 0:
        return "not_learning"
    peak = float(averages.max())
    if peak <= 15.0:
        return "not_learning"
    tail = averages[-collapse_window:]
    if tail.size and float(tail.mean()) < collapse_threshold * peak:
        return "collapsed"
    return "not_learning"
