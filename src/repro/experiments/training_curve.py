"""Experiment E2: training curves of the six software designs (Figure 4).

For each (design, hidden-layer size) pair the experiment trains an agent on
CartPole-v0 with the paper's protocol and records the per-episode number of
steps the pole stayed up plus its 100-episode moving average — the two
series plotted as the light and dark lines of Figure 4.

The paper runs each design to 50,000 episodes (or success) on the board; the
harness exposes the same protocol but defaults to CI-scale budgets so the
benchmark suite terminates quickly.  Use ``paper_scale()`` to get the
full-scale configuration.

.. deprecated::
    :class:`TrainingCurveExperiment` is now a thin shim over the unified
    experiment API: ``ci_scale()``/``paper_scale()`` resolve the registered
    ``figure4`` spec and ``run()`` delegates to :func:`repro.api.run`, so
    every trial goes through the one sweep engine.  New code should call
    ``repro.api.run("figure4")`` (or ``python -m repro run figure4``)
    directly; the shim stays because its summaries are pinned byte-identical
    to the historical harness.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.designs import SOFTWARE_DESIGNS, make_design
from repro.experiments.reporting import format_table
from repro.training.records import TrainingResult
from repro.training import Trainer, TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.seeding import stable_hash

_LOGGER = get_logger("repro.experiments.training_curve")

#: Hidden-layer sizes shown in Figure 4.
FIGURE4_HIDDEN_SIZES: Tuple[int, ...] = (32, 64, 128, 192)


@dataclass
class TrainingCurveResult:
    """All runs of one training-curve experiment, indexed by (design, n_hidden)."""

    results: Dict[Tuple[str, int], TrainingResult] = field(default_factory=dict)

    def add(self, result: TrainingResult) -> None:
        self.results[(result.design, result.n_hidden)] = result

    def get(self, design: str, n_hidden: int) -> TrainingResult:
        return self.results[(design, n_hidden)]

    def designs(self) -> List[str]:
        return sorted({key[0] for key in self.results})

    def hidden_sizes(self) -> List[int]:
        return sorted({key[1] for key in self.results})

    def curve_series(self, design: str, n_hidden: int) -> Dict[str, np.ndarray]:
        """The (episodes, steps, moving_average) series for one panel line of Figure 4."""
        return self.get(design, n_hidden).curve.as_dict()

    def summary_rows(self) -> List[Dict[str, object]]:
        rows = []
        for (design, n_hidden), result in sorted(self.results.items(),
                                                 key=lambda kv: (kv[0][1], kv[0][0])):
            rows.append({
                "design": design,
                "n_hidden": n_hidden,
                "solved": result.solved,
                "episodes": result.episodes,
                "episodes_to_solve": result.episodes_to_solve,
                "final_avg_steps": round(result.curve.final_average(), 1),
                "weight_resets": result.weight_resets,
            })
        return rows

    def render(self) -> str:
        return format_table(self.summary_rows(),
                            title="Figure 4 summary: training outcome per design / hidden size")


@dataclass(frozen=True)
class TrainingCurveExperiment:
    """Configuration + runner for the Figure 4 experiment.

    Parameters
    ----------
    designs:
        Subset of the software designs to run (all six by default).
    hidden_sizes:
        Hidden-layer sizes to sweep (Figure 4 uses 32–192).
    training:
        Protocol configuration; the default is a CI-scale budget.
    seed:
        Base seed; each (design, hidden) run derives its own seed from it.
    parallel:
        Fan the (design, hidden-size) grid across a worker pool via
        :mod:`repro.parallel` instead of looping serially.  Each cell runs
        the identical ``run_single`` with the identical derived seed, so
        results match the serial mode cell-for-cell.
    max_workers:
        Pool size when ``parallel`` (default: one worker per cell, capped
        by the CPU count).
    """

    designs: Sequence[str] = SOFTWARE_DESIGNS
    hidden_sizes: Sequence[int] = FIGURE4_HIDDEN_SIZES
    training: TrainingConfig = field(default_factory=lambda: TrainingConfig(max_episodes=300))
    seed: int = 42
    gamma: float = 0.99
    parallel: bool = False
    max_workers: Optional[int] = None

    @staticmethod
    def paper_scale() -> "TrainingCurveExperiment":
        """The full protocol of Section 4.3 (50,000-episode cutoff, 195/100 criterion).

        Routed through the registered ``figure4`` paper-scale spec, so the
        two scales differ only in declarative budget/grid fields.
        """
        from repro.api.registry import get_spec

        return TrainingCurveExperiment.from_spec(get_spec("figure4", scale="paper"))

    @staticmethod
    def ci_scale(designs: Sequence[str] = ("OS-ELM-L2-Lipschitz", "DQN"),
                 hidden_sizes: Sequence[int] = (32,),
                 max_episodes: int = 60) -> "TrainingCurveExperiment":
        """A minutes-scale configuration used by the benchmark suite.

        The registered ``figure4`` CI spec with the grid/budget overrides
        applied — the same code path as ``paper_scale()``.
        """
        from repro.api.registry import get_spec

        spec = get_spec("figure4", scale="ci").with_grid(
            designs=tuple(designs), hidden_sizes=tuple(hidden_sizes),
        ).with_budget(max_episodes=max_episodes)
        return TrainingCurveExperiment.from_spec(spec)

    # ------------------------------------------------------------------ spec bridge
    @staticmethod
    def from_spec(spec) -> "TrainingCurveExperiment":
        """Build the legacy harness view of a training-curve spec."""
        return TrainingCurveExperiment(
            designs=spec.designs,
            hidden_sizes=spec.hidden_sizes,
            training=spec.budget.training_config(env_id=spec.env_ids[0]),
            seed=spec.seed,
            gamma=spec.gamma,
        )

    def to_spec(self, name: str = "training-curve"):
        """This configuration as a declarative :class:`~repro.api.ExperimentSpec`.

        ``seed_stride``/``seed_mod`` are the constants ``run_single`` has
        always used, so the spec's trials carry identical seeds.
        """
        from repro.api.spec import Budget, ExperimentSpec

        return ExperimentSpec(
            name=name,
            kind="training_curve",
            designs=tuple(self.designs),
            hidden_sizes=tuple(int(h) for h in self.hidden_sizes),
            env_ids=(self.training.env_id,),
            n_seeds=1,
            seed=self.seed,
            gamma=self.gamma,
            budget=Budget.from_training_config(self.training),
            seed_stride=17,
            seed_mod=997,
        )

    # ------------------------------------------------------------------ execution
    def run_single(self, design: str, n_hidden: int, *, trial: int = 0) -> TrainingResult:
        """Train one (design, hidden-size) combination."""
        seed = self.seed + 1000 * trial + 17 * n_hidden + stable_hash(design) % 997
        agent = make_design(design, n_hidden=n_hidden, gamma=self.gamma, seed=seed)
        config = TrainingConfig(
            env_id=self.training.env_id,
            max_episodes=self.training.max_episodes,
            max_steps_per_episode=self.training.max_steps_per_episode,
            solved_threshold=self.training.solved_threshold,
            solved_window=self.training.solved_window,
            reward_shaping=self.training.reward_shaping,
            success_steps=self.training.success_steps,
            stop_when_solved=self.training.stop_when_solved,
            record_lipschitz=self.training.record_lipschitz,
            seed=seed,
        )
        _LOGGER.info("training", design=design, n_hidden=n_hidden,
                     max_episodes=config.max_episodes)
        return Trainer().fit(agent, config=config, n_hidden=n_hidden)

    def run(self) -> TrainingCurveResult:
        """Run the full sweep and return the collected curves.

        Deprecated shim: delegates to the unified engine
        (:func:`repro.api.run`), which routes every trial through
        :class:`~repro.parallel.sweep.SweepRunner`.  Results are
        byte-identical to the historical in-class loop.
        """
        from repro.api.engine import run as run_experiment

        warnings.warn(
            "TrainingCurveExperiment.run() is a deprecated shim; use "
            "repro.api.run('figure4') or `python -m repro run figure4`",
            DeprecationWarning, stacklevel=2)
        report = run_experiment(self.to_spec(),
                                backend="process" if self.parallel else "serial",
                                max_workers=self.max_workers)
        return report.to_training_curve_result()


def stability_classification(result: TrainingResult, *, collapse_window: int = 50,
                             collapse_threshold: float = 0.5) -> str:
    """Classify a training curve the way Section 4.3 discusses them.

    Returns one of:

    * ``"solved"`` — reached the solved criterion;
    * ``"collapsed"`` — the late moving average fell below ``collapse_threshold``
      times the peak moving average (the paper's description of plain OS-ELM,
      whose performance degrades as outliers corrupt beta);
    * ``"not_learning"`` — never rose meaningfully above the initial performance.
    """
    if result.solved:
        return "solved"
    averages = result.curve.moving_average
    if averages.size == 0:
        return "not_learning"
    peak = float(averages.max())
    if peak <= 15.0:
        return "not_learning"
    tail = averages[-collapse_window:]
    if tail.size and float(tail.mean()) < collapse_threshold * peak:
        return "collapsed"
    return "not_learning"
