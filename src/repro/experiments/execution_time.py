"""Experiments E3 / E4: execution time to complete CartPole-v0 (Figures 5 and 6).

The paper reports, for every design and hidden-layer size, the wall-clock
time to reach the solved criterion broken down by operation (seq_train,
predict_seq, init_train, predict_init, train_DQN, predict_1, predict_32).
The reproduction:

1. trains each design and records how many times each operation was invoked
   (``TrainingResult.breakdown.counts``);
2. projects those counts through the PYNQ-Z1 latency models
   (:class:`~repro.fpga.platform.PynqZ1Platform`) — Cortex-A9 latencies for
   the software designs and 125 MHz programmable-logic latencies for the
   FPGA design's predict_seq / seq_train;
3. reports modelled completion times, per-operation breakdowns and speed-up
   factors relative to DQN (the numbers quoted in the paper's abstract:
   29.76x for OS-ELM-L2-Lipschitz and 126.06x for FPGA at 64 hidden units).

The measured host wall-clock breakdown is also kept for reference, but the
modelled times are what is comparable across designs because the host CPU is
not a 650 MHz Cortex-A9.

.. deprecated::
    :class:`ExecutionTimeExperiment` is now a thin shim over the unified
    experiment API (the registered ``figure5``/``table2`` spec); ``run()``
    delegates to :func:`repro.api.run` and projects the cached operation
    counts through this instance's ``platform``.  New code should call
    ``repro.api.run("figure5")`` or ``python -m repro run figure5``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.designs import DESIGN_NAMES, make_design
from repro.experiments.reporting import format_table
from repro.fpga.platform import PynqZ1Platform
from repro.training.records import TrainingResult
from repro.training import Trainer, TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.seeding import stable_hash
from repro.utils.timer import TimeBreakdown

_LOGGER = get_logger("repro.experiments.execution_time")

#: Hidden-layer sizes of Figure 5.
FIGURE5_HIDDEN_SIZES: Tuple[int, ...] = (32, 64, 128, 192)

#: Completion times (seconds) reported in Section 4.4 for the designs that
#: "acquire correct behaviors"; used for shape comparison in EXPERIMENTS.md.
PAPER_EXECUTION_TIMES: Dict[int, Dict[str, float]] = {
    32: {"OS-ELM-L2": 132.27, "OS-ELM-L2-Lipschitz": 55.02, "DQN": 3232.54, "FPGA": 6.88},
    64: {"ELM": 127.08, "OS-ELM-L2": 647.56, "OS-ELM-L2-Lipschitz": 74.20,
         "DQN": 2208.897, "FPGA": 17.52},
    128: {"OS-ELM-L2-Lipschitz": 241.81, "DQN": 1348.99, "FPGA": 81.79},
    192: {"OS-ELM-L2-Lipschitz": 722.64, "DQN": 1581.02, "FPGA": 155.00},
}

#: Speed-ups over DQN quoted in Section 4.4.
PAPER_SPEEDUPS: Dict[int, Dict[str, float]] = {
    32: {"OS-ELM-L2": 24.43, "OS-ELM-L2-Lipschitz": 58.75, "FPGA": 469.80},
    64: {"ELM": 17.38, "OS-ELM-L2": 3.41, "OS-ELM-L2-Lipschitz": 29.76, "FPGA": 126.06},
    128: {"OS-ELM-L2-Lipschitz": 5.58, "FPGA": 16.49},
    192: {"OS-ELM-L2-Lipschitz": 2.18, "FPGA": 10.19},
}


def project_timing(result: TrainingResult, platform: PynqZ1Platform) -> "DesignTiming":
    """Project a finished run's operation counts through a platform model.

    The single projection implementation shared by the legacy harness and
    the unified API's report adapters: trial artifacts store
    platform-independent counts, and this turns them into modelled seconds.
    """
    modelled = platform.project_breakdown(
        result.design, result.breakdown.counts, n_hidden=result.n_hidden,
    )
    return DesignTiming(
        design=result.design,
        n_hidden=result.n_hidden,
        solved=result.solved,
        episodes=result.episodes,
        modelled=modelled,
        measured=result.breakdown,
        counts=dict(result.breakdown.counts),
    )


@dataclass
class DesignTiming:
    """Execution-time record of one (design, hidden size) run."""

    design: str
    n_hidden: int
    solved: bool
    episodes: int
    modelled: TimeBreakdown
    measured: TimeBreakdown
    counts: Dict[str, int]

    @property
    def modelled_total(self) -> float:
        return self.modelled.total()

    @property
    def measured_total(self) -> float:
        return self.measured.total()


@dataclass
class ExecutionTimeResult:
    """All timings of one experiment run, with speed-up helpers."""

    timings: Dict[Tuple[str, int], DesignTiming] = field(default_factory=dict)

    def add(self, timing: DesignTiming) -> None:
        self.timings[(timing.design, timing.n_hidden)] = timing

    def get(self, design: str, n_hidden: int) -> DesignTiming:
        return self.timings[(design, n_hidden)]

    def speedup_vs_dqn(self, design: str, n_hidden: int) -> Optional[float]:
        """Modelled completion-time ratio DQN / design (None when either is missing)."""
        key_dqn = ("DQN", n_hidden)
        key = (design, n_hidden)
        if key_dqn not in self.timings or key not in self.timings:
            return None
        denominator = self.timings[key].modelled_total
        if denominator <= 0:
            return None
        return self.timings[key_dqn].modelled_total / denominator

    def summary_rows(self) -> List[Dict[str, object]]:
        rows = []
        for (design, n_hidden), timing in sorted(self.timings.items(),
                                                 key=lambda kv: (kv[0][1], kv[0][0])):
            rows.append({
                "design": design,
                "n_hidden": n_hidden,
                "solved": timing.solved,
                "episodes": timing.episodes,
                "modelled_seconds": round(timing.modelled_total, 3),
                "speedup_vs_DQN": (round(s, 2) if (s := self.speedup_vs_dqn(design, n_hidden))
                                   else None),
            })
        return rows

    def breakdown_rows(self, design: str, n_hidden: int) -> List[Dict[str, object]]:
        """Per-operation rows for one bar of Figure 5 / Figure 6."""
        timing = self.get(design, n_hidden)
        total = timing.modelled_total
        rows = []
        for operation, seconds in sorted(timing.modelled.seconds.items(),
                                         key=lambda kv: -kv[1]):
            rows.append({
                "operation": operation,
                "count": timing.counts.get(operation, 0),
                "modelled_seconds": round(seconds, 4),
                "fraction": round(seconds / total, 3) if total > 0 else 0.0,
            })
        return rows

    def render(self) -> str:
        return format_table(self.summary_rows(),
                            title="Figure 5 summary: modelled execution time to complete")


@dataclass(frozen=True)
class ExecutionTimeExperiment:
    """Configuration + runner for the Figure 5/6 experiment.

    ``parallel=True`` fans the (design, hidden-size) grid over a worker pool
    through :mod:`repro.parallel`; every cell keeps its serial-mode seed, so
    the two modes produce identical timings counts-for-counts.
    """

    designs: Sequence[str] = DESIGN_NAMES
    hidden_sizes: Sequence[int] = FIGURE5_HIDDEN_SIZES
    training: TrainingConfig = field(default_factory=lambda: TrainingConfig(max_episodes=300))
    platform: PynqZ1Platform = field(default_factory=PynqZ1Platform)
    seed: int = 7
    gamma: float = 0.99
    parallel: bool = False
    max_workers: Optional[int] = None

    @staticmethod
    def paper_scale() -> "ExecutionTimeExperiment":
        """Full Section 4.4 protocol (50,000-episode cutoff).

        Routed through the registered ``figure5`` paper-scale spec, so the
        two scales differ only in declarative budget/grid fields.
        """
        from repro.api.registry import get_spec

        return ExecutionTimeExperiment.from_spec(get_spec("figure5", scale="paper"))

    @staticmethod
    def ci_scale(designs: Sequence[str] = ("OS-ELM-L2-Lipschitz", "DQN", "FPGA"),
                 hidden_sizes: Sequence[int] = (32,),
                 max_episodes: int = 60) -> "ExecutionTimeExperiment":
        """A minutes-scale configuration used by the benchmark suite.

        The registered ``figure5`` CI spec with the grid/budget overrides
        applied — the same code path as ``paper_scale()``.
        """
        from repro.api.registry import get_spec

        spec = get_spec("figure5", scale="ci").with_grid(
            designs=tuple(designs), hidden_sizes=tuple(hidden_sizes),
        ).with_budget(max_episodes=max_episodes)
        return ExecutionTimeExperiment.from_spec(spec)

    # ------------------------------------------------------------------ spec bridge
    @staticmethod
    def from_spec(spec, platform: Optional[PynqZ1Platform] = None
                  ) -> "ExecutionTimeExperiment":
        """Build the legacy harness view of an execution-time spec."""
        return ExecutionTimeExperiment(
            designs=spec.designs,
            hidden_sizes=spec.hidden_sizes,
            training=spec.budget.training_config(env_id=spec.env_ids[0]),
            platform=platform if platform is not None else PynqZ1Platform(),
            seed=spec.seed,
            gamma=spec.gamma,
        )

    def to_spec(self, name: str = "execution-time"):
        """This configuration as a declarative :class:`~repro.api.ExperimentSpec`.

        The platform model is *not* part of the spec: trials record
        platform-independent operation counts, and the projection happens at
        report time with whatever platform the caller supplies.  Note
        ``record_lipschitz`` is dropped, exactly as ``run_single`` has
        always done for this harness.
        """
        from repro.api.spec import Budget, ExperimentSpec
        from dataclasses import replace as dc_replace

        budget = dc_replace(Budget.from_training_config(self.training),
                            record_lipschitz=False)
        return ExperimentSpec(
            name=name,
            kind="execution_time",
            designs=tuple(self.designs),
            hidden_sizes=tuple(int(h) for h in self.hidden_sizes),
            env_ids=(self.training.env_id,),
            n_seeds=1,
            seed=self.seed,
            gamma=self.gamma,
            budget=budget,
            seed_stride=13,
            seed_mod=991,
        )

    # ------------------------------------------------------------------ execution
    def run_single(self, design: str, n_hidden: int, *, trial: int = 0) -> DesignTiming:
        seed = self.seed + 1000 * trial + 13 * n_hidden + stable_hash(design) % 991
        agent = make_design(design, n_hidden=n_hidden, gamma=self.gamma, seed=seed)
        config = TrainingConfig(
            env_id=self.training.env_id,
            max_episodes=self.training.max_episodes,
            max_steps_per_episode=self.training.max_steps_per_episode,
            solved_threshold=self.training.solved_threshold,
            solved_window=self.training.solved_window,
            reward_shaping=self.training.reward_shaping,
            success_steps=self.training.success_steps,
            stop_when_solved=self.training.stop_when_solved,
            seed=seed,
        )
        _LOGGER.info("timing run", design=design, n_hidden=n_hidden)
        result = Trainer().fit(agent, config=config, n_hidden=n_hidden)
        return self.project(result)

    def project(self, result: TrainingResult) -> DesignTiming:
        """Project a finished training run's operation counts through the platform model."""
        return project_timing(result, self.platform)

    def run(self) -> ExecutionTimeResult:
        """Deprecated shim: delegates to the unified engine and projects the
        resulting operation counts through this instance's ``platform``."""
        from repro.api.engine import run as run_experiment

        warnings.warn(
            "ExecutionTimeExperiment.run() is a deprecated shim; use "
            "repro.api.run('figure5') or `python -m repro run figure5`",
            DeprecationWarning, stacklevel=2)
        report = run_experiment(self.to_spec(),
                                backend="process" if self.parallel else "serial",
                                max_workers=self.max_workers)
        return report.to_execution_time_result(platform=self.platform)


def fpga_breakdown_rows(result: ExecutionTimeResult,
                        hidden_sizes: Sequence[int] = FIGURE5_HIDDEN_SIZES
                        ) -> List[Dict[str, object]]:
    """Figure 6: the FPGA design's per-operation breakdown across hidden sizes."""
    rows: List[Dict[str, object]] = []
    for n_hidden in hidden_sizes:
        key = ("FPGA", int(n_hidden))
        if key not in result.timings:
            continue
        timing = result.timings[key]
        row: Dict[str, object] = {
            "n_hidden": n_hidden,
            "total_seconds": round(timing.modelled_total, 4),
        }
        for operation in ("init_train", "predict_init", "predict_seq", "seq_train"):
            row[operation] = round(timing.modelled.seconds.get(operation, 0.0), 4)
        rows.append(row)
    return rows
