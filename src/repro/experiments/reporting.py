"""Rendering helpers: aligned text tables and CSV output for experiment rows."""

from __future__ import annotations

import io
from typing import Dict, List, Mapping, Optional, Sequence


def _format_cell(value: object, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], *,
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = ".2f",
                 title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned, pipe-separated text table."""
    if not rows:
        return (title + "\n" if title else "") + "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([_format_cell(row.get(c), float_format) for c in columns])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(rendered[0]))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row_cells in rendered[1:]:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row_cells)))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping[str, object]], *,
                columns: Optional[Sequence[str]] = None) -> str:
    """Serialize dict rows as CSV text (no external dependencies)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    buffer.write(",".join(str(c) for c in columns) + "\n")
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column)
            text = "" if value is None else str(value)
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            cells.append(text)
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (inf when the reference is zero)."""
    if reference == 0:
        return float("inf") if measured != 0 else 0.0
    return abs(measured - reference) / abs(reference)


def paper_comparison_rows(measured: Mapping[str, float], paper: Mapping[str, float]
                          ) -> List[Dict[str, object]]:
    """Side-by-side rows of measured-vs-paper values for EXPERIMENTS.md."""
    rows: List[Dict[str, object]] = []
    for key in paper:
        measured_value = measured.get(key)
        row: Dict[str, object] = {"quantity": key, "paper": paper[key],
                                  "measured": measured_value}
        if isinstance(measured_value, (int, float)) and isinstance(paper[key], (int, float)):
            row["relative_error"] = relative_error(float(measured_value), float(paper[key]))
        rows.append(row)
    return rows
