"""Experiment harnesses that regenerate the paper's tables and figures.

The harness classes are deprecated shims over the unified experiment API
(:mod:`repro.api`): their ``ci_scale``/``paper_scale`` constructors resolve
registered specs (``figure4``, ``figure5``) and ``run()`` delegates to the
one engine, keeping summaries byte-identical to the historical loops.  New
code should prefer ``repro.api.run("figure4")`` / ``python -m repro run``.

Each harness returns plain data structures (lists of dict rows, NumPy
arrays) and can render them as aligned text tables, so the benchmarks and
examples can print output directly comparable to the paper:

* :mod:`repro.experiments.resource_table` — Table 3 (FPGA resource
  utilization of the OS-ELM Q-Network core).
* :mod:`repro.experiments.training_curve` — Figure 4 (training curves of the
  six software designs for 32–192 hidden units).
* :mod:`repro.experiments.execution_time` — Figures 5 and 6 (execution time
  to complete CartPole-v0, with per-operation breakdowns), plus the speed-up
  factors quoted in the abstract.
* :mod:`repro.experiments.reporting` — text-table / CSV rendering helpers.
"""

from repro.experiments.reporting import format_table, rows_to_csv
from repro.experiments.resource_table import (
    compare_with_paper,
    resource_table,
)
from repro.experiments.training_curve import (
    TrainingCurveExperiment,
    TrainingCurveResult,
)
from repro.experiments.execution_time import (
    ExecutionTimeExperiment,
    ExecutionTimeResult,
    PAPER_EXECUTION_TIMES,
    PAPER_SPEEDUPS,
)

__all__ = [
    "format_table",
    "rows_to_csv",
    "compare_with_paper",
    "resource_table",
    "TrainingCurveExperiment",
    "TrainingCurveResult",
    "ExecutionTimeExperiment",
    "ExecutionTimeResult",
    "PAPER_EXECUTION_TIMES",
    "PAPER_SPEEDUPS",
]
