"""Incremental (rank-k) updates of an inverse Gram matrix.

OS-ELM's sequential training (Equations 5–6 of the paper) maintains
``P_i = (sum_j H_j^T H_j)^{-1}`` and updates it with each new chunk using the
Woodbury identity::

    P_i = P_{i-1} - P_{i-1} H_i^T (I + H_i P_{i-1} H_i^T)^{-1} H_i P_{i-1}

For batch size 1 (the paper's FPGA configuration) the inner inverse is the
reciprocal of a scalar (Sherman–Morrison), which is why the hardware needs no
SVD/QRD core.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg

from repro.telemetry.tracing import span
from repro.utils.validation import ensure_2d


def sherman_morrison_update(p: np.ndarray, h_row: np.ndarray) -> np.ndarray:
    """Rank-1 (batch-size-1) update of the inverse Gram matrix.

    Computes ``P' = P - (P h^T h P) / (1 + h P h^T)`` where ``h`` is a single
    row vector.  This is the exact operation the paper's ``seq_train`` FPGA
    module performs: matrix-vector products plus one scalar reciprocal.
    """
    p = ensure_2d(p, name="P")
    h_row = np.asarray(h_row, dtype=float).reshape(-1)
    if h_row.shape[0] != p.shape[0]:
        raise ValueError(
            f"h_row length {h_row.shape[0]} does not match P dimension {p.shape[0]}"
        )
    with span("linalg.sherman_morrison"):
        ph = p @ h_row                      # (N,)
        denom = 1.0 + float(h_row @ ph)     # scalar: 1 + h P h^T
        if denom <= 0:
            raise np.linalg.LinAlgError(
                f"Sherman-Morrison denominator is non-positive ({denom}); P is not positive definite"
            )
        return p - np.outer(ph, ph) / denom


def woodbury_update(p: np.ndarray, h_chunk: np.ndarray) -> np.ndarray:
    """Rank-k (arbitrary batch) update of the inverse Gram matrix (Equation 5/6).

    Computes ``P' = P - P H^T (I + H P H^T)^{-1} H P`` for a chunk ``H`` of
    shape ``(k, N)``.  The inner ``k x k`` system is solved with a Cholesky
    factorization (it is symmetric positive definite when P is).
    """
    p = ensure_2d(p, name="P")
    h_chunk = ensure_2d(h_chunk, name="H")
    if h_chunk.shape[1] != p.shape[0]:
        raise ValueError(
            f"H has {h_chunk.shape[1]} columns but P is {p.shape[0]}x{p.shape[1]}"
        )
    k = h_chunk.shape[0]
    if k == 1:
        return sherman_morrison_update(p, h_chunk[0])
    with span("linalg.woodbury"):
        ph_t = p @ h_chunk.T                          # (N, k)
        inner = np.eye(k) + h_chunk @ ph_t            # (k, k)
        try:
            cho = scipy.linalg.cho_factor(inner)
            solved = scipy.linalg.cho_solve(cho, ph_t.T)   # (k, N)
        except scipy.linalg.LinAlgError:
            solved = np.linalg.solve(inner, ph_t.T)
        return p - ph_t @ solved


def beta_update(beta: np.ndarray, p_new: np.ndarray, h_chunk: np.ndarray,
                t_chunk: np.ndarray) -> np.ndarray:
    """Output-weight update ``beta' = beta + P' H^T (T - H beta)`` (Equation 5/6)."""
    beta = ensure_2d(beta, name="beta")
    p_new = ensure_2d(p_new, name="P")
    h_chunk = ensure_2d(h_chunk, name="H")
    t_chunk = ensure_2d(t_chunk, name="T")
    residual = t_chunk - h_chunk @ beta
    return beta + p_new @ (h_chunk.T @ residual)


class RecursiveInverse:
    """Stateful recursive-least-squares style tracker of ``P`` and ``beta``.

    This is the numerical heart of OS-ELM: it owns the pair ``(P, beta)`` and
    applies the Woodbury/Sherman–Morrison update for each incoming chunk.  The
    OS-ELM model object in :mod:`repro.core.os_elm` delegates to it, and the
    FPGA functional simulation re-implements the same recurrence in fixed
    point so the two can be compared element-wise.
    """

    def __init__(self, p0: np.ndarray, beta0: np.ndarray) -> None:
        p0 = ensure_2d(p0, name="P0")
        beta0 = ensure_2d(beta0, name="beta0")
        if p0.shape[0] != p0.shape[1]:
            raise ValueError(f"P0 must be square, got shape {p0.shape}")
        if beta0.shape[0] != p0.shape[0]:
            raise ValueError(
                f"beta0 rows ({beta0.shape[0]}) must match P0 dimension ({p0.shape[0]})"
            )
        self.p = p0.astype(float, copy=True)
        self.beta = beta0.astype(float, copy=True)
        self.updates = 0

    @property
    def n_hidden(self) -> int:
        return self.p.shape[0]

    @property
    def n_outputs(self) -> int:
        return self.beta.shape[1]

    def update(self, h_chunk: np.ndarray, t_chunk: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Consume one chunk ``(H_i, T_i)`` and return the updated ``(P, beta)``."""
        h_chunk = ensure_2d(h_chunk, name="H")
        t_chunk = ensure_2d(t_chunk, name="T")
        if h_chunk.shape[0] != t_chunk.shape[0]:
            raise ValueError("H and T must have the same number of rows")
        if t_chunk.shape[1] != self.n_outputs:
            raise ValueError(
                f"T has {t_chunk.shape[1]} outputs but beta expects {self.n_outputs}"
            )
        p_new = woodbury_update(self.p, h_chunk)
        self.beta = beta_update(self.beta, p_new, h_chunk, t_chunk)
        self.p = p_new
        self.updates += 1
        return self.p, self.beta

    def copy(self) -> "RecursiveInverse":
        clone = RecursiveInverse(self.p, self.beta)
        clone.updates = self.updates
        return clone
