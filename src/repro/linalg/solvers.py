"""Small dense-system solvers used by the training algorithms."""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.utils.validation import ensure_2d


def solve_posdef(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` for symmetric positive-definite ``A`` via Cholesky.

    Falls back to a general LU solve if the Cholesky factorization fails
    (e.g. when numerical round-off makes A slightly indefinite).
    """
    a = ensure_2d(a, name="A")
    b = np.asarray(b, dtype=float)
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"A must be square, got shape {a.shape}")
    try:
        cho = scipy.linalg.cho_factor(a)
        return scipy.linalg.cho_solve(cho, b)
    except scipy.linalg.LinAlgError:
        return scipy.linalg.solve(a, b)


def solve_small_system(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve a small general square system ``A x = b``.

    Dimensions 1 and 2 are special-cased with closed forms: the batch-size-1
    OS-ELM path reduces the inner inverse to a scalar reciprocal (the paper's
    key hardware simplification), and 2x2 systems arise in the tiny-batch
    ablations.
    """
    a = ensure_2d(a, name="A")
    b = np.asarray(b, dtype=float)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"A must be square, got shape {a.shape}")
    if n == 1:
        pivot = a[0, 0]
        if pivot == 0:
            raise np.linalg.LinAlgError("singular 1x1 system")
        return b / pivot
    if n == 2:
        det = a[0, 0] * a[1, 1] - a[0, 1] * a[1, 0]
        if det == 0:
            raise np.linalg.LinAlgError("singular 2x2 system")
        inv = np.array([[a[1, 1], -a[0, 1]], [-a[1, 0], a[0, 0]]]) / det
        return inv @ b
    return scipy.linalg.solve(a, b)


def is_symmetric(a: np.ndarray, tol: float = 1e-10) -> bool:
    """Whether ``A`` is symmetric to within ``tol`` (absolute, scaled by max |A|)."""
    a = ensure_2d(a, name="A")
    if a.shape[0] != a.shape[1]:
        return False
    scale = max(1.0, float(np.max(np.abs(a))) if a.size else 1.0)
    return bool(np.allclose(a, a.T, atol=tol * scale))


def is_positive_definite(a: np.ndarray) -> bool:
    """Whether symmetric ``A`` is positive definite (via attempted Cholesky)."""
    a = ensure_2d(a, name="A")
    if a.shape[0] != a.shape[1] or not is_symmetric(a, tol=1e-8):
        return False
    try:
        scipy.linalg.cholesky(a)
        return True
    except scipy.linalg.LinAlgError:
        return False


def symmetrize(a: np.ndarray) -> np.ndarray:
    """Return ``(A + A^T) / 2`` — used to keep P numerically symmetric over many updates."""
    a = ensure_2d(a, name="A")
    return (a + a.T) * 0.5
