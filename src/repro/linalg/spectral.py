"""Spectral norms, spectral normalization and Lipschitz-constant accounting.

Section 3.3 of the paper normalizes the (fixed, random) input weight matrix
``alpha`` by its largest singular value so that the Lipschitz constant of the
OS-ELM network is bounded by ``sigma_max(beta)``; the L2 regularization of
``beta`` then controls that remaining factor (Relation 13).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.linalg

from repro.utils.validation import ensure_2d


def spectral_norm(matrix: np.ndarray, *, method: str = "svd",
                  n_iterations: int = 100, tol: float = 1e-10,
                  rng: Optional[np.random.Generator] = None) -> float:
    """Largest singular value of ``matrix``.

    ``method="svd"`` uses a full (LAPACK) SVD, matching line 2 of
    Algorithm 1; ``method="power"`` uses power iteration, which is what an
    on-device implementation would use because it needs only matrix-vector
    products.
    """
    matrix = ensure_2d(matrix, name="matrix")
    if matrix.size == 0:
        return 0.0
    if method == "svd":
        return float(scipy.linalg.svdvals(matrix)[0])
    if method == "power":
        sigma, _, _ = power_iteration(matrix, n_iterations=n_iterations, tol=tol, rng=rng)
        return sigma
    raise ValueError(f"unknown spectral norm method {method!r}; use 'svd' or 'power'")


def power_iteration(matrix: np.ndarray, *, n_iterations: int = 100, tol: float = 1e-10,
                    rng: Optional[np.random.Generator] = None
                    ) -> Tuple[float, np.ndarray, np.ndarray]:
    """Estimate the dominant singular triple ``(sigma, u, v)`` by power iteration.

    Iterates ``v <- A^T u / ||.||``, ``u <- A v / ||.||`` as in the spectral
    normalization paper (Miyato et al., 2018).
    """
    matrix = ensure_2d(matrix, name="matrix")
    if n_iterations <= 0:
        raise ValueError("n_iterations must be positive")
    rows, cols = matrix.shape
    if rows == 0 or cols == 0:
        return 0.0, np.zeros(rows), np.zeros(cols)
    rng = rng if rng is not None else np.random.default_rng(0)
    u = rng.standard_normal(rows)
    u_norm = np.linalg.norm(u)
    u = u / u_norm if u_norm > 0 else np.ones(rows) / np.sqrt(rows)
    sigma_prev = 0.0
    v = np.zeros(cols)
    for _ in range(n_iterations):
        v = matrix.T @ u
        v_norm = np.linalg.norm(v)
        if v_norm == 0:
            return 0.0, u, v
        v = v / v_norm
        u = matrix @ v
        sigma = np.linalg.norm(u)
        if sigma == 0:
            return 0.0, u, v
        u = u / sigma
        if abs(sigma - sigma_prev) <= tol * max(1.0, sigma):
            sigma_prev = sigma
            break
        sigma_prev = sigma
    return float(sigma_prev), u, v


def spectral_normalize(matrix: np.ndarray, *, target: float = 1.0, method: str = "svd",
                       eps: float = 1e-12) -> Tuple[np.ndarray, float]:
    """Scale ``matrix`` so its spectral norm equals ``target`` (lines 2–3 of Algorithm 1).

    Returns the normalized matrix and the original spectral norm.  Matrices
    whose norm is already below ``eps`` are returned unchanged (an all-zero
    alpha cannot be normalized and would never occur with the paper's
    uniform-[0,1] initialisation).
    """
    matrix = ensure_2d(matrix, name="matrix")
    if target <= 0:
        raise ValueError(f"target must be positive, got {target}")
    sigma = spectral_norm(matrix, method=method)
    if sigma <= eps:
        return matrix.copy(), sigma
    return matrix * (target / sigma), sigma


def dominant_singular_vectors(matrix: np.ndarray) -> Tuple[float, np.ndarray, np.ndarray]:
    """Exact dominant singular triple via full SVD (used by Equation 12's analysis)."""
    matrix = ensure_2d(matrix, name="matrix")
    u, s, vt = scipy.linalg.svd(matrix, full_matrices=False)
    if s.size == 0:
        return 0.0, np.zeros(matrix.shape[0]), np.zeros(matrix.shape[1])
    return float(s[0]), u[:, 0], vt[0, :]


def frobenius_norm(matrix: np.ndarray) -> float:
    """Frobenius norm, the quantity bounded below by the spectral norm in Relation 13."""
    return float(np.linalg.norm(np.asarray(matrix, dtype=float)))


def lipschitz_constant_relu_network(weights: Sequence[np.ndarray]) -> float:
    """Upper bound on the Lipschitz constant of a ReLU network.

    The paper derives the network Lipschitz constant as the product of the
    per-layer Lipschitz constants; for ReLU / tanh activations each activation
    contributes at most 1, so the bound is the product of the weight-matrix
    spectral norms.
    """
    constant = 1.0
    for weight in weights:
        constant *= spectral_norm(np.asarray(weight, dtype=float))
    return float(constant)
