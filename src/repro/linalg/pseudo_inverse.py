"""Pseudo-inverse and regularized least-squares solvers.

ELM computes its optimal output weights as ``beta = pinv(H) @ T``
(Equation 3 of the paper); ReOS-ELM replaces the Gram inverse with a ridge
(L2-regularized) inverse ``(H^T H + delta I)^{-1}`` (Equation 8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg

from repro.utils.validation import check_positive, ensure_2d


def pinv(matrix: np.ndarray, *, rcond: float = 1e-12, method: str = "svd") -> np.ndarray:
    """Moore–Penrose pseudo-inverse via SVD or QR.

    The paper notes that ``H†`` "can be computed with matrix decomposition
    algorithms, such as SVD and QRD"; both are exposed here so the ELM batch
    path can be exercised with either backend.

    Parameters
    ----------
    matrix:
        2-D array of shape ``(k, n)``.
    rcond:
        Relative cutoff for small singular values (SVD method only).
    method:
        ``"svd"`` (default, robust for rank-deficient input) or ``"qr"``
        (valid for full-column-rank input).
    """
    matrix = ensure_2d(matrix, name="matrix")
    if method == "svd":
        u, s, vt = scipy.linalg.svd(matrix, full_matrices=False)
        cutoff = rcond * (s[0] if s.size else 0.0)
        s_inv = np.where(s > cutoff, 1.0 / np.where(s > cutoff, s, 1.0), 0.0)
        return (vt.T * s_inv) @ u.T
    if method == "qr":
        k, n = matrix.shape
        if k >= n:
            q, r = scipy.linalg.qr(matrix, mode="economic")
            return scipy.linalg.solve_triangular(r, q.T)
        q, r = scipy.linalg.qr(matrix.T, mode="economic")
        return (scipy.linalg.solve_triangular(r, q.T)).T
    raise ValueError(f"unknown pseudo-inverse method {method!r}; use 'svd' or 'qr'")


def regularized_gram_inverse(h: np.ndarray, delta: float = 0.0,
                             *, assume_finite: bool = False) -> np.ndarray:
    """Compute ``(H^T H + delta I)^{-1}``.

    With ``delta=0`` this is the OS-ELM initial-training ``P0`` (Equation 7);
    with ``delta>0`` it is the ReOS-ELM ``P0`` (Equation 8).  A
    positive-definite (Cholesky) solve is attempted first; if the Gram matrix
    is singular (possible when the initial chunk has fewer rows than hidden
    units and ``delta=0``) the computation falls back to the SVD
    pseudo-inverse.
    """
    h = ensure_2d(h, name="H")
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    n_hidden = h.shape[1]
    gram = h.T @ h
    if delta > 0:
        gram = gram + delta * np.eye(n_hidden)
    try:
        cho = scipy.linalg.cho_factor(gram, check_finite=not assume_finite)
        return scipy.linalg.cho_solve(cho, np.eye(n_hidden), check_finite=not assume_finite)
    except (scipy.linalg.LinAlgError, ValueError):
        return pinv(gram)


def ridge_solve(h: np.ndarray, t: np.ndarray, delta: float = 0.0,
                p: Optional[np.ndarray] = None) -> np.ndarray:
    """Solve the (optionally ridge-regularized) least-squares problem for beta.

    Returns ``beta = P H^T T`` where ``P = (H^T H + delta I)^{-1}`` — i.e. the
    combined initial training of Equations 7/8.  If ``P`` has already been
    computed it can be passed to avoid recomputing the inverse.
    """
    h = ensure_2d(h, name="H")
    t = ensure_2d(t, name="T")
    if h.shape[0] != t.shape[0]:
        raise ValueError(
            f"H and T must have the same number of rows, got {h.shape[0]} and {t.shape[0]}"
        )
    if p is None:
        p = regularized_gram_inverse(h, delta)
    return p @ (h.T @ t)


def condition_number(matrix: np.ndarray) -> float:
    """2-norm condition number (ratio of extreme singular values)."""
    matrix = ensure_2d(matrix, name="matrix")
    s = scipy.linalg.svdvals(matrix)
    if s.size == 0 or s[-1] == 0:
        return float("inf")
    return float(s[0] / s[-1])


def effective_rank(matrix: np.ndarray, rcond: float = 1e-12) -> int:
    """Numerical rank: number of singular values above ``rcond * s_max``."""
    matrix = ensure_2d(matrix, name="matrix")
    s = scipy.linalg.svdvals(matrix)
    if s.size == 0:
        return 0
    return int(np.sum(s > rcond * s[0]))


def ridge_path(h: np.ndarray, t: np.ndarray, deltas: np.ndarray) -> np.ndarray:
    """Solve the ridge problem for a sweep of regularization strengths.

    Used by the regularization ablation to show how ``delta`` (the paper sets
    1.0 and 0.5) trades training error against the norm of ``beta``.
    Returns an array of shape ``(len(deltas), n_hidden, n_outputs)``.
    """
    h = ensure_2d(h, name="H")
    t = ensure_2d(t, name="T")
    deltas = np.asarray(deltas, dtype=float)
    check_positive(deltas.size, name="len(deltas)")
    betas = np.empty((deltas.size, h.shape[1], t.shape[1]))
    # A single SVD serves every delta: beta(delta) = V diag(s/(s^2+delta)) U^T T.
    u, s, vt = scipy.linalg.svd(h, full_matrices=False)
    ut_t = u.T @ t
    for i, delta in enumerate(deltas):
        if delta < 0:
            raise ValueError("deltas must be non-negative")
        filt = s / (s**2 + delta) if delta > 0 else np.where(s > 0, 1.0 / np.where(s > 0, s, 1.0), 0.0)
        betas[i] = vt.T @ (filt[:, None] * ut_t)
    return betas
