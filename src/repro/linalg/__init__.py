"""Numerical linear-algebra kernels shared by ELM / OS-ELM and the FPGA models.

These are the building blocks of the paper's training algorithms:

* regularized pseudo-inverse / normal-equation solves (ELM, Equation 3;
  ReOS-ELM, Equation 8),
* the rank-k Woodbury / rank-1 Sherman–Morrison update of the inverse
  covariance ``P`` (OS-ELM, Equations 5–6),
* the spectral norm (largest singular value) used by the spectral
  normalization of ``alpha`` and the Lipschitz-constant accounting
  (Section 3.3).
"""

from repro.linalg.incremental import (
    RecursiveInverse,
    sherman_morrison_update,
    woodbury_update,
)
from repro.linalg.pseudo_inverse import (
    pinv,
    regularized_gram_inverse,
    ridge_solve,
)
from repro.linalg.solvers import solve_posdef, solve_small_system
from repro.linalg.spectral import (
    lipschitz_constant_relu_network,
    power_iteration,
    spectral_norm,
    spectral_normalize,
)

__all__ = [
    "RecursiveInverse",
    "sherman_morrison_update",
    "woodbury_update",
    "pinv",
    "regularized_gram_inverse",
    "ridge_solve",
    "solve_posdef",
    "solve_small_system",
    "lipschitz_constant_relu_network",
    "power_iteration",
    "spectral_norm",
    "spectral_normalize",
]
