"""Unified training API: one Trainer + callback lifecycle for every design.

The paper's headline claim is that one update loop serves every design
(ELM, OS-ELM, regularized variants, DQN baseline) on-device; this package
is that loop in the reproduction.  :class:`Trainer` drives the canonical
episode/step protocol for any :class:`AgentProtocol` agent, serially or in
lock-step over a vector env, with a typed :class:`Callback` lifecycle for
progress streaming, metric recording and mid-trial checkpointing.

The historical entry points — ``repro.rl.runner.train_agent``,
``repro.parallel.lockstep.train_agents_lockstep`` and the DQN episode loop
— are deprecated thin wrappers over this package and remain bit-for-bit
compatible on fixed seeds.
"""

from repro.training.callbacks import (
    Callback,
    CallbackList,
    CheckpointCallback,
    MetricsRecorder,
    ProgressCallback,
    StepEvent,
    progress_to_stderr,
)
from repro.training.config import TrainingConfig
from repro.training.protocols import AgentProtocol, BatchableAgentProtocol
from repro.training.records import EpisodeRecord, TrainingCurve, TrainingResult
from repro.training.strategies import (
    BatchedELMStrategy,
    GenericLockstepStrategy,
    LockstepStrategy,
    resolve_strategy,
    supports_lockstep,
)
from repro.training.trainer import Trainer, TrainingRun, TrialState, resolve_env

__all__ = [
    "AgentProtocol",
    "BatchableAgentProtocol",
    "BatchedELMStrategy",
    "Callback",
    "CallbackList",
    "CheckpointCallback",
    "EpisodeRecord",
    "GenericLockstepStrategy",
    "LockstepStrategy",
    "MetricsRecorder",
    "ProgressCallback",
    "StepEvent",
    "Trainer",
    "TrainingConfig",
    "TrainingCurve",
    "TrainingResult",
    "TrainingRun",
    "TrialState",
    "progress_to_stderr",
    "resolve_env",
    "resolve_strategy",
    "supports_lockstep",
]
