"""Lock-step strategies: the per-step math behind ``Trainer.fit_lockstep``.

The Trainer owns episode semantics (criterion, records, solved/reset
handling, callbacks); a strategy owns how N trials' *agents* advance each
decision point.  Two implementations:

:class:`GenericLockstepStrategy`
    Drives any :class:`~repro.training.protocols.AgentProtocol` agent
    through its own per-agent ``act``/``observe`` hooks while the
    environment stepping is vectorized.  Because every trial's arithmetic
    is executed by the agent's own (scalar) code in the serial call order,
    results are bit-for-bit identical to the serial driver for *every*
    design — including the DQN baseline, the FPGA fixed-point model and
    the unregularized OS-ELM variants whose chaotic P update rules the
    batched strategy out.
:class:`BatchedELMStrategy`
    The historical ``train_agents_lockstep`` fast path: stacked hidden
    layers, one batched epsilon-greedy sweep and a batched Sherman-Morrison
    sequential update per step.  Requires the batch to share layer sizes
    and every agent to pass :func:`supports_lockstep`.

``resolve_strategy`` implements the Trainer's ``"auto"`` choice: batched
when the whole batch qualifies, generic otherwise.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.core.agents import ELMQAgent, _ELMFamilyAgent
from repro.core.elm import ELM
from repro.core.os_elm import OSELM


def supports_lockstep(agent: object) -> bool:
    """Whether an agent can join a *batched* lock-step batch.

    True for the ELM design and the L2-regularized OS-ELM designs.  False
    for DQN (different update rule), the FPGA design (fixed-point core with
    its own state), and the *unregularized* OS-ELM variants: without the
    ridge term the recursive inverse-Gram update is numerically chaotic, so
    the 1-ULP differences between batched and serial BLAS paths amplify
    into visibly different trajectories, breaking the serial-replay
    guarantee.  Unsupported designs still train lock-step through
    :class:`GenericLockstepStrategy` (per-agent math, vectorized stepping).
    """
    if not isinstance(agent, _ELMFamilyAgent) or type(agent.model) not in (ELM, OSELM):
        return False
    if isinstance(agent.model, OSELM) and agent.model.regularization.l2_delta <= 0:
        return False
    return True


def _batch_is_layer_compatible(agents: Sequence[Any]) -> bool:
    first = agents[0].config
    first_activation = agents[0].model.activation.name
    for agent in agents[1:]:
        cfg = agent.config
        if (cfg.input_size, cfg.n_hidden, cfg.n_actions, cfg.n_states) != (
                first.input_size, first.n_hidden, first.n_actions, first.n_states):
            return False
        if agent.model.activation.name != first_activation:
            return False
    return True


def resolve_strategy(strategy: Any, agents: Sequence[Any]) -> "LockstepStrategy":
    """Materialize the ``strategy=`` argument of ``Trainer.fit_lockstep``."""
    if not isinstance(strategy, str):
        return strategy
    if strategy == "auto":
        if all(supports_lockstep(agent) for agent in agents) \
                and _batch_is_layer_compatible(agents):
            return BatchedELMStrategy()
        return GenericLockstepStrategy()
    if strategy == "batched":
        return BatchedELMStrategy()
    if strategy == "generic":
        return GenericLockstepStrategy()
    raise ValueError(f"unknown strategy {strategy!r}; "
                     "use 'auto', 'batched', 'generic' or an instance")


class LockstepStrategy:
    """Interface the lock-step driver calls into (see module docstring)."""

    def bind(self, trials: List[Any], venv: Any) -> None:
        """Attach to a batch before training starts."""
        raise NotImplementedError

    def start(self, states: np.ndarray) -> None:
        """Initial observations are available (right after ``venv.reset``)."""

    def select_actions(self, states: np.ndarray, actions: np.ndarray,
                       active_indices: List[int]):
        """Fill ``actions`` (int64, one per sub-env) for the active trials.

        Returns the per-trial raw actions handed to ``observe`` — the
        object each agent's own ``act`` produced, so serial call semantics
        are preserved exactly.
        """
        raise NotImplementedError

    def post_env_step(self, step: Any) -> None:
        """The vector env advanced; next-state derived tensors go here."""

    def observe(self, i: int, state: np.ndarray, action: Any, reward: float,
                next_state: np.ndarray, done: bool) -> None:
        """Trial ``i`` observed one transition (called in trial order)."""
        raise NotImplementedError

    def flush_updates(self, actions: np.ndarray) -> None:
        """All observes of this step are in; run any batched update phase."""

    def end_episode(self, i: int) -> None:
        """Trial ``i`` finished an episode (target syncs live here)."""
        raise NotImplementedError

    def prepare_record(self, i: int) -> None:
        """Make trial ``i``'s agent-side model current (lipschitz recording)."""

    def after_weight_reset(self, i: int) -> None:
        """The stall-reset rule re-initialised trial ``i``'s weights."""

    def end_step(self) -> None:
        """Bottom of the step loop (buffer rotation)."""

    def finalize(self) -> None:
        """Training over: flush state back to the agents, attribute timing."""


class GenericLockstepStrategy(LockstepStrategy):
    """Per-agent hooks over a vectorized env: every protocol agent trains."""

    def bind(self, trials: List[Any], venv: Any) -> None:
        self.trials = trials
        self.raw_actions: List[Any] = [0] * len(trials)

    def select_actions(self, states: np.ndarray, actions: np.ndarray,
                       active_indices: List[int]):
        raw = self.raw_actions
        for i in active_indices:
            action = self.trials[i].agent.act(states[i])
            raw[i] = action
            actions[i] = action
        return raw

    def observe(self, i: int, state: np.ndarray, action: Any, reward: float,
                next_state: np.ndarray, done: bool) -> None:
        self.trials[i].agent.observe(state, action, reward, next_state, done)

    def end_episode(self, i: int) -> None:
        trial = self.trials[i]
        trial.agent.end_episode(trial.episode)


class BatchedELMStrategy(LockstepStrategy):
    """Stacked-model fast path for ELM / L2-regularized OS-ELM batches.

    Each step performs one batched epsilon-greedy sweep (stacked
    ``(N, n_actions, n_in) @ (N, n_in, H)`` matmuls), and one batched
    OS-ELM sequential update (targets, Sherman-Morrison ``P`` update and
    ``beta`` update stacked over the agents whose random update gate fired).
    The RNG draw order per trial is exactly the serial loop's, so trials
    replay the serial driver bit-for-bit.

    Timing attribution: operation *counts* in each result's breakdown are
    exact; measured *seconds* of the batched phases are apportioned across
    trials by their share of the operation counts.
    """

    def bind(self, trials: List[Any], venv: Any) -> None:
        agents = [trial.agent for trial in trials]
        for agent in agents:
            if not supports_lockstep(agent):
                raise TypeError(
                    f"{type(agent).__name__} (model "
                    f"{type(getattr(agent, 'model', None)).__name__}) cannot join a "
                    "batched lock-step batch; use the generic strategy instead")
        if not _batch_is_layer_compatible(agents):
            raise ValueError(
                "all agents in a batched lock-step batch must share layer sizes "
                "and activation")
        obs_dim = int(np.prod(venv.single_observation_space.shape))
        shared = agents[0].config
        if obs_dim != shared.n_states:
            raise ValueError(
                f"env observations have {obs_dim} dims but agents expect "
                f"{shared.n_states}")

        self.trials = trials
        self.agents = agents
        n_trials = len(agents)
        n_in, n_hidden = shared.input_size, shared.n_hidden
        n_states, n_actions = shared.n_states, shared.n_actions
        self.n_states, self.n_actions, self.n_hidden = n_states, n_actions, n_hidden
        activation = agents[0].model.activation
        self.activation = activation

        # ---------------------------------------------------------- stacked model state
        self.alpha = np.stack([agent.model.alpha for agent in agents])   # (N, n_in, H)
        self.bias = np.stack([agent.model.bias for agent in agents])     # (N, H)
        self.beta = np.zeros((n_trials, n_hidden, 1))                    # (N, H, 1)
        self.p_stack = np.zeros((n_trials, n_hidden, n_hidden))          # (N, H, H)
        self.target_beta = np.zeros((n_trials, n_hidden, 1))             # (N, H, 1)
        self.has_beta = np.zeros(n_trials, dtype=bool)
        self.any_beta = False              #: event-maintained mirror of has_beta.any()

        self.gamma = np.array([agent.config.gamma for agent in agents])
        self.clip_targets = np.array([agent.config.clip_targets for agent in agents])
        self.clip_low = np.array([agent.config.clip_low for agent in agents])
        self.clip_high = np.array([agent.config.clip_high for agent in agents])

        # Network-input buffer for the batched action sweep: the action block
        # is constant, only the state slice changes each step.
        self.sweep_inputs = np.empty((n_trials, n_actions, n_in))
        if shared.one_hot_actions:
            self.sweep_inputs[:, :, n_states:] = np.eye(n_actions)
        else:
            self.sweep_inputs[:, :, n_states] = np.arange(n_actions, dtype=float)
        # The hidden tensor of each step is computed once and reused three
        # times (action sweep, target bootstrap, Sherman-Morrison input row);
        # two buffers ping-pong between "current" and "next" states.
        self.hidden_a = np.empty((n_trials, n_actions, n_hidden))
        self.hidden_b = np.empty((n_trials, n_actions, n_hidden))
        self.q_buf = np.empty((n_trials, n_actions, 1))
        self.q_zeros = np.zeros((n_trials, n_actions))
        self.relu = activation.name == "relu"
        self.uniform_clip = bool(self.clip_targets.all()) \
            and np.unique(self.clip_low).size == 1 \
            and np.unique(self.clip_high).size == 1
        self.clip_lo_scalar = float(self.clip_low[0])
        self.clip_hi_scalar = float(self.clip_high[0])

        # The per-step epsilon-greedy and update-gate decisions are inlined
        # from EpsilonGreedyPolicy.select / RandomUpdateGate.should_update:
        # same RNG objects, same draw order, so trials stay bit-identical to
        # the serial loop while skipping per-call validation overhead.
        self.policies = [agent.policy for agent in agents]
        self.gates = [getattr(agent, "update_gate", None) for agent in agents]

        # ---------------------------------------------------------- per-trial extras
        #: Whether the trial has entered the batched sequential-update phase.
        self.seq_phase = [False] * n_trials
        #: ELM agents retrain in-place on every buffer refill; their observe
        #: path stays on the agent object and only acting is batched.
        self.delegate_observe = [isinstance(agent, ELMQAgent) for agent in agents]
        self.acts_init = [0] * n_trials
        self.acts_seq = [0] * n_trials
        self.boots = [0] * n_trials
        self.sequps = [0] * n_trials
        self.n_applied_updates = [0] * n_trials

        self.batched_updates: List[int] = []
        self.update_rewards: List[float] = []
        self.update_dones: List[bool] = []
        self.t_act = self.t_boot = self.t_update = 0.0
        self.hidden_cur: Optional[np.ndarray] = None
        self.hidden_next: Optional[np.ndarray] = None
        self.spare: Optional[np.ndarray] = None

    # ---------------------------------------------------------------- helpers
    def _compute_hidden(self, out: np.ndarray) -> np.ndarray:
        """Hidden layers of all trials for the states currently in sweep_inputs."""
        np.matmul(self.sweep_inputs, self.alpha, out=out)
        out += self.bias[:, None, :]
        if self.relu:
            np.maximum(out, 0.0, out=out)
        else:
            out[:] = self.activation.forward(out)
        return out

    def _sync_from_model(self, i: int) -> None:
        """Copy a freshly initial-trained model's (beta, P, theta_2) into the stacks."""
        model = self.agents[i].model
        self.beta[i] = model.beta
        if isinstance(model, OSELM) and model._recursive is not None:
            self.p_stack[i] = model._recursive.p
        if self.agents[i]._target_beta is not None:
            self.target_beta[i] = self.agents[i]._target_beta
        self.has_beta[i] = True
        self.any_beta = True

    def _flush_to_model(self, i: int) -> None:
        """Write the stacked (beta, P, theta_2) back into the trial's model."""
        if self.delegate_observe[i] or not self.seq_phase[i]:
            return
        model = self.agents[i].model
        model.beta = self.beta[i].copy()
        if isinstance(model, OSELM) and model._recursive is not None:
            model._recursive.beta = model.beta
            model._recursive.p = self.p_stack[i].copy()
            model._recursive.updates = self.n_applied_updates[i]
        self.agents[i]._target_beta = self.target_beta[i].copy()

    # ---------------------------------------------------------------- driver hooks
    def start(self, states: np.ndarray) -> None:
        self.sweep_inputs[:, :, :self.n_states] = states[:, None, :]
        self.hidden_cur = self._compute_hidden(self.hidden_a)
        self.spare = self.hidden_b

    def select_actions(self, states: np.ndarray, actions: np.ndarray,
                       active_indices: List[int]):
        t0 = time.perf_counter()
        if self.any_beta:
            q_matrix = np.matmul(self.hidden_cur, self.beta, out=self.q_buf)[:, :, 0]
        else:
            q_matrix = self.q_zeros
        self.t_act += time.perf_counter() - t0
        n_actions = self.n_actions
        for i in active_indices:
            policy = self.policies[i]
            if policy._rng.random() >= policy.greedy_probability:
                policy.random_selections += 1
                actions[i] = policy._rng.integers(n_actions)
            else:
                policy.greedy_selections += 1
                row = q_matrix[i]
                if n_actions == 2:
                    actions[i] = 0 if row[0] >= row[1] else 1
                else:
                    actions[i] = np.argmax(row)
            if self.agents[i].initial_training_done:
                self.acts_seq[i] += 1
            else:
                self.acts_init[i] += 1
        return actions

    def post_env_step(self, step: Any) -> None:
        t0 = time.perf_counter()
        self.sweep_inputs[:, :, :self.n_states] = step.observations[:, None, :]
        self.hidden_next = self._compute_hidden(self.spare)
        self.t_act += time.perf_counter() - t0

    def observe(self, i: int, state: np.ndarray, action: Any, reward: float,
                next_state: np.ndarray, done: bool) -> None:
        agent = self.agents[i]
        if self.delegate_observe[i] or not self.seq_phase[i]:
            agent.observe(state, action, reward, next_state, done)
            if self.delegate_observe[i]:
                model_beta = agent.model.beta
                if model_beta is not None:
                    self.beta[i] = model_beta
                    self.has_beta[i] = True
                    self.any_beta = True
            elif agent.initial_training_done:
                self.seq_phase[i] = True
                self._sync_from_model(i)
        else:
            agent.global_step += 1
            gate = self.gates[i]
            if gate._rng.random() < gate.update_probability:
                gate.accepted += 1
                self.batched_updates.append(i)
                self.update_rewards.append(reward)
                self.update_dones.append(done)
            else:
                gate.rejected += 1

    def flush_updates(self, actions: np.ndarray) -> None:
        if not self.batched_updates:
            return
        batched_updates = self.batched_updates
        update_rewards = self.update_rewards
        update_dones = self.update_dones
        idx = np.asarray(batched_updates)
        n_actions, n_hidden = self.n_actions, self.n_hidden
        # Clipped targets bootstrapped from the stacked theta_2 snapshots.
        # Next-state hidden rows are the slices just computed for the next
        # action sweep, except for episode ends, whose bootstrap state is
        # the terminal observation rather than the auto-reset one.
        t0 = time.perf_counter()
        boot_hidden = np.empty((idx.size, n_actions, n_hidden))
        for pos, i in enumerate(batched_updates):
            if update_dones[pos]:
                # The target drops the bootstrap on terminal transitions
                # (q_learning_target's (1 - d_t) factor), so the terminal
                # state's hidden rows are never needed — zero-fill rather
                # than evaluate them.
                boot_hidden[pos] = 0.0
            else:
                boot_hidden[pos] = self.hidden_next[i]
        max_next = (boot_hidden @ self.target_beta[idx])[:, :, 0].max(axis=1)
        not_done = 1.0 - np.asarray(update_dones, dtype=float)
        targets = np.asarray(update_rewards) + self.gamma[idx] * not_done * max_next
        if self.uniform_clip:
            np.maximum(targets, self.clip_lo_scalar, out=targets)
            np.minimum(targets, self.clip_hi_scalar, out=targets)
        else:
            clip_mask = self.clip_targets[idx]
            targets[clip_mask] = np.clip(targets[clip_mask],
                                         self.clip_low[idx][clip_mask],
                                         self.clip_high[idx][clip_mask])
        self.t_boot += time.perf_counter() - t0
        # Sherman-Morrison rank-1 update of each gated trial's (P, beta),
        # in place through views of the stacks (copying P in and out via
        # fancy indexing would cost O(H^2) per update).  The input row is
        # the chosen-action slice of the hidden tensor the action sweep
        # already evaluated; the operation sequence per trial is exactly
        # the serial sherman_morrison_update / beta_update pair.
        t0 = time.perf_counter()
        h = self.hidden_cur[idx, actions[idx]]                           # (U, H)
        for pos, i in enumerate(batched_updates):
            h_row = h[pos]
            p_i = self.p_stack[i]
            ph = p_i @ h_row
            denom = 1.0 + float(h_row @ ph)
            if denom <= 0:
                # The serial path raises LinAlgError here and the agent
                # skips the update (plain OS-ELM's instability).
                self.agents[i].skipped_updates += 1
                continue
            np.subtract(p_i, np.outer(ph, ph) / denom, out=p_i)
            beta_col = self.beta[i, :, 0]
            residual = targets[pos] - float(h_row @ beta_col)
            beta_col += p_i @ (h_row * residual)
            self.n_applied_updates[i] += 1
        for i in idx:
            self.boots[i] += 1
            self.sequps[i] += 1
        self.t_update += time.perf_counter() - t0
        self.batched_updates = []
        self.update_rewards = []
        self.update_dones = []

    def end_episode(self, i: int) -> None:
        trial = self.trials[i]
        agent = self.agents[i]
        if self.seq_phase[i] and not self.delegate_observe[i]:
            agent.episodes_completed += 1
            if agent.episodes_completed % agent.config.target_update_interval == 0:
                self.target_beta[i] = self.beta[i]
        else:
            agent.end_episode(trial.episode)

    def prepare_record(self, i: int) -> None:
        self._flush_to_model(i)

    def after_weight_reset(self, i: int) -> None:
        """Mirror a stall-triggered weight reset (fresh alpha, cleared state)."""
        model = self.agents[i].model
        self.alpha[i] = model.alpha
        self.bias[i] = model.bias
        self.beta[i] = 0.0
        self.p_stack[i] = 0.0
        self.target_beta[i] = 0.0
        self.has_beta[i] = False
        self.any_beta = bool(self.has_beta.any())
        self.seq_phase[i] = False
        self.n_applied_updates[i] = 0
        # The trial's alpha changed, so its next-step hidden rows (already
        # computed with the old weights) must be redone.
        pre = self.sweep_inputs[i] @ self.alpha[i] + self.bias[i]
        self.hidden_next[i] = (np.maximum(pre, 0.0) if self.relu
                               else self.activation.forward(pre))

    def end_step(self) -> None:
        self.hidden_cur, self.spare = self.hidden_next, self.hidden_cur

    def finalize(self) -> None:
        n_actions = self.n_actions
        total_acts = sum(ai + asq for ai, asq in zip(self.acts_init, self.acts_seq)) or 1
        total_boots = sum(self.boots) or 1
        total_sequps = sum(self.sequps) or 1
        for i, agent in enumerate(self.agents):
            self._flush_to_model(i)
            acts_init, acts_seq = self.acts_init[i], self.acts_seq[i]
            act_seconds = self.t_act * (acts_init + acts_seq) / total_acts
            act_total = acts_init + acts_seq or 1
            if acts_init:
                agent._record("predict_init", act_seconds * acts_init / act_total,
                              count=acts_init * n_actions)
            if acts_seq:
                agent._record("predict_seq", act_seconds * acts_seq / act_total,
                              count=acts_seq * n_actions)
            if self.boots[i]:
                agent._record("predict_seq", self.t_boot * self.boots[i] / total_boots,
                              count=self.boots[i] * n_actions)
            if self.sequps[i]:
                agent._record("seq_train", self.t_update * self.sequps[i] / total_sequps,
                              count=self.sequps[i])


__all__ = [
    "BatchedELMStrategy", "GenericLockstepStrategy", "LockstepStrategy",
    "resolve_strategy", "supports_lockstep",
]
