"""Typed interfaces between the Trainer and the things it drives.

``AgentProtocol`` is the contract every trainable agent implements — the
ELM family (:class:`~repro.core.agents.ELMQAgent` /
:class:`~repro.core.agents.OSELMQAgent`), the DQN baseline
(:class:`~repro.baselines.dqn.DQNAgent`) and the FPGA-simulated design all
satisfy it, which is what lets one :class:`~repro.training.trainer.Trainer`
loop serve every design in the paper.  The protocol is structural
(``typing.Protocol``): nothing needs to inherit from it, and
``isinstance(agent, AgentProtocol)`` checks conformance at runtime.

``BatchableAgentProtocol`` adds the batched hooks
(:meth:`~BatchableAgentProtocol.act_batch`) that vectorized drivers may
exploit; agents without them still train lock-step through the per-agent
hooks.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.utils.timer import TimeBreakdown


@runtime_checkable
class AgentProtocol(Protocol):
    """The hooks the Trainer's canonical episode/step loop drives.

    Lifecycle per trial::

        begin_episode -> (act -> observe)* -> end_episode   (repeated)

    plus ``register_progress`` after each episode (the stall-reset rule;
    agents without a reset rule implement it as a no-op) and
    ``reset_weights`` when that rule fires.
    """

    #: Display name used in experiment tables.
    name: str
    #: Per-operation measured seconds + counts (the Figure 5/6 attribution).
    breakdown: TimeBreakdown
    #: Environment steps observed so far.
    global_step: int
    #: Episodes finished so far.
    episodes_completed: int

    def begin_episode(self, episode_index: int) -> None:
        """Called before each episode starts (1-indexed)."""

    def act(self, state: np.ndarray, *, explore: bool = True) -> int:
        """Choose an action for one state (epsilon-greedy when exploring)."""

    def observe(self, state: np.ndarray, action: int, reward: float,
                next_state: np.ndarray, done: bool) -> None:
        """Receive one (possibly frame-skipped) transition and learn from it."""

    def end_episode(self, episode_index: int) -> None:
        """Called after each episode finishes (target syncs live here)."""

    def reset_weights(self) -> None:
        """Re-initialise all trainable state (the paper's 300-episode rule)."""


@runtime_checkable
class BatchableAgentProtocol(AgentProtocol, Protocol):
    """An agent whose forward pass vectorizes over a batch of states."""

    def act_batch(self, states: np.ndarray, *, explore: bool = True) -> np.ndarray:
        """One action per row of a ``(B, n_states)`` batch."""


__all__ = ["AgentProtocol", "BatchableAgentProtocol"]
