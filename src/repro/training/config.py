"""The training protocol configuration shared by every Trainer driver.

Historically this lived in ``repro.rl.runner`` (which still re-exports it);
it moved here when the serial, lock-step and DQN loops were unified under
:class:`~repro.training.trainer.Trainer` so that the protocol's input
language lives next to the loop that interprets it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class TrainingConfig:
    """Protocol parameters for one training run (paper defaults).

    ``action_repeat`` is the frame-skip factor: the agent picks an action
    once per *decision point* and the environment advances up to that many
    steps with it (stopping early at episode end), the agent observing one
    aggregate transition.  The default of 1 is the paper's per-step protocol
    and is bit-for-bit identical to the historical loops; values > 1 pair
    with ``SubprocVectorEnv(steps_per_message=k)`` /
    :class:`~repro.parallel.async_env.AsyncVectorEnv` so heavyweight envs
    amortize one pipe round-trip over k physics steps inside a real
    training loop.
    """

    env_id: str = "CartPole-v0"
    max_episodes: int = 50_000            #: the paper's "impossible" cutoff
    max_steps_per_episode: Optional[int] = None   #: None -> use the env's own limit
    solved_threshold: float = 195.0
    solved_window: int = 100
    reward_shaping: bool = True           #: shape rewards into {-1, 0, +1}
    success_steps: int = 195              #: survival length counted as success by the shaper
    stop_when_solved: bool = True
    record_lipschitz: bool = False        #: record the Lipschitz bound each episode (ablation A1)
    action_repeat: int = 1                #: env steps per agent decision (frame skip)
    seed: Optional[int] = None
    #: Extra env-constructor kwargs as a sorted (key, value) tuple — hashable
    #: and picklable, set from ``ExperimentSpec.env_overrides``.  A dict is
    #: accepted and normalized.  The empty default is excluded from trial
    #: descriptors so pre-existing artifact keys are unchanged.
    env_params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        params = self.env_params
        if isinstance(params, dict):
            params = params.items()
        object.__setattr__(self, "env_params",
                           tuple(sorted((str(key), value) for key, value in params)))
        if self.max_episodes <= 0:
            raise ValueError("max_episodes must be positive")
        if self.solved_window <= 0:
            raise ValueError("solved_window must be positive")
        if self.solved_threshold <= 0:
            raise ValueError("solved_threshold must be positive")
        if self.success_steps <= 0:
            raise ValueError("success_steps must be positive")
        if self.action_repeat <= 0:
            raise ValueError("action_repeat must be positive")


__all__ = ["TrainingConfig"]
