"""The Trainer's callback lifecycle and its built-in callbacks.

A :class:`Callback` observes (and lightly steers) the canonical training
loop through six typed hooks::

    on_train_start(run)                  once, before any episode
    on_episode_start(trial)              per trial, before each episode
    on_step(trial, event)                per decision point
    on_episode_end(trial, record)        per finished episode
    on_checkpoint(trial)                 after a mid-trial state save
    on_train_end(run, results)           once, with the final results

The same hooks fire identically whether the Trainer is running one serial
trial, a lock-step batch of ELM-family agents, or a lock-step batch of
DQN/FPGA agents — callbacks are how progress streaming, metric recording
and checkpointing stay loop-agnostic.

Built-ins
---------
:class:`MetricsRecorder`
    Assembles the per-trial :class:`~repro.training.records.TrainingCurve`
    (the metric-recording role ``repro.rl.recording`` used to hard-code into
    each loop).  The Trainer installs one automatically when absent.
:class:`ProgressCallback`
    Streams episode progress (episode index, steps, moving average) through
    the structured logger every N episodes — the ``repro run --paper``
    progress feed.
:class:`CheckpointCallback`
    Periodically persists the full mid-trial training state (agent, env,
    RNGs, curve) into an :class:`~repro.api.store.ArtifactStore`, making an
    interrupted run resumable *mid-trial* — the resumed trajectory is
    bit-for-bit the uninterrupted one.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.training.records import EpisodeRecord, TrainingCurve, TrainingResult
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.training.trainer import TrainingRun, TrialState

_LOGGER = get_logger("repro.training.callbacks")


@dataclass(frozen=True)
class StepEvent:
    """One decision point of one trial, as seen by ``on_step``."""

    state: np.ndarray             #: observation the agent acted on
    action: int                   #: the chosen action
    reward: float                 #: (shaped) reward the agent observed
    next_state: np.ndarray        #: successor observation (terminal one at episode end)
    done: bool                    #: episode ended on this transition
    frames: int = 1               #: env steps this decision covered (action repeat)


class Callback:
    """Base class: override any subset of the lifecycle hooks."""

    def on_train_start(self, run: "TrainingRun") -> None:
        """Called once before the first episode of any trial."""

    def on_episode_start(self, trial: "TrialState") -> None:
        """Called before ``trial`` starts an episode (``trial.episode`` is set)."""

    def on_step(self, trial: "TrialState", event: StepEvent) -> None:
        """Called after each decision point of ``trial``."""

    def on_episode_end(self, trial: "TrialState", record: EpisodeRecord) -> None:
        """Called after each finished episode with its curve record."""

    def on_checkpoint(self, trial: "TrialState") -> None:
        """Called after a mid-trial checkpoint of ``trial`` was persisted."""

    def on_train_end(self, run: "TrainingRun",
                     results: List[TrainingResult]) -> None:
        """Called once after every trial finished, with the final results."""


class CallbackList:
    """Dispatch helper: fans one hook invocation out to many callbacks.

    ``wants_steps`` is precomputed so the hot per-step path costs nothing
    when no installed callback overrides :meth:`Callback.on_step` — the
    default configuration keeps the trainer's inner loop callback-free.
    """

    def __init__(self, callbacks: Sequence[Callback] = ()) -> None:
        self.callbacks: List[Callback] = list(callbacks)
        for callback in self.callbacks:
            if not isinstance(callback, Callback):
                raise TypeError(
                    f"callbacks must subclass Callback, got {type(callback).__name__}")
        self.wants_steps = any(type(cb).on_step is not Callback.on_step
                               for cb in self.callbacks)

    def __iter__(self):
        return iter(self.callbacks)

    def __len__(self) -> int:
        return len(self.callbacks)

    def first_of(self, cls: type) -> Optional[Callback]:
        for callback in self.callbacks:
            if isinstance(callback, cls):
                return callback
        return None

    # ------------------------------------------------------------------ hooks
    def train_start(self, run: "TrainingRun") -> None:
        for callback in self.callbacks:
            callback.on_train_start(run)

    def episode_start(self, trial: "TrialState") -> None:
        for callback in self.callbacks:
            callback.on_episode_start(trial)

    def step(self, trial: "TrialState", event: StepEvent) -> None:
        for callback in self.callbacks:
            callback.on_step(trial, event)

    def episode_end(self, trial: "TrialState", record: EpisodeRecord) -> None:
        for callback in self.callbacks:
            callback.on_episode_end(trial, record)

    def checkpoint(self, trial: "TrialState") -> None:
        for callback in self.callbacks:
            callback.on_checkpoint(trial)

    def train_end(self, run: "TrainingRun", results: List[TrainingResult]) -> None:
        for callback in self.callbacks:
            callback.on_train_end(run, results)


class MetricsRecorder(Callback):
    """Collects each trial's :class:`TrainingCurve` (one per trial index)."""

    def __init__(self) -> None:
        self.curves: dict = {}

    def on_train_start(self, run: "TrainingRun") -> None:
        for trial in run.trials:
            # setdefault: a resumed serial trial pre-seeds its restored curve.
            self.curves.setdefault(trial.index, TrainingCurve())

    def on_episode_end(self, trial: "TrialState", record: EpisodeRecord) -> None:
        self.curves[trial.index].append(record)

    def curve(self, index: int) -> TrainingCurve:
        return self.curves[index]


class ProgressCallback(Callback):
    """Stream per-trial training progress every ``every`` episodes.

    Messages go through the structured logger by default; pass
    ``stream=sys.stderr`` (or any writable) for plain-text streaming — the
    form ``repro run --progress-every N`` uses so progress survives
    ``--quiet`` table suppression.
    """

    def __init__(self, every: int = 100, *, stream: Optional[Any] = None) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.every = every
        self.stream = stream

    def _emit(self, trial: "TrialState", record: EpisodeRecord,
              suffix: str = "") -> None:
        if self.stream is not None:
            name = getattr(trial.agent, "name", "agent")
            self.stream.write(
                f"[{name} trial {trial.index}] episode {record.episode}: "
                f"{record.steps} steps, avg {record.moving_average:.1f}{suffix}\n")
            self.stream.flush()
        else:
            _LOGGER.info("training progress", trial=trial.index,
                         design=getattr(trial.agent, "name", "agent"),
                         episode=record.episode, steps=record.steps,
                         moving_average=round(record.moving_average, 1))

    def on_episode_end(self, trial: "TrialState", record: EpisodeRecord) -> None:
        if record.episode % self.every == 0:
            self._emit(trial, record)

    def on_train_end(self, run: "TrainingRun",
                     results: List[TrainingResult]) -> None:
        if self.stream is None:
            return
        for result in results:
            status = (f"solved in {result.episodes_to_solve}" if result.solved
                      else f"unsolved after {result.episodes}")
            self.stream.write(f"[{result.design}] done: {status} episodes\n")
        self.stream.flush()


def progress_to_stderr(every: int = 100) -> ProgressCallback:
    """A ProgressCallback writing plain lines to stderr (the CLI's choice)."""
    return ProgressCallback(every, stream=sys.stderr)


class CheckpointCallback(Callback):
    """Periodic mid-trial state checkpointing into an artifact store.

    Serial-driver integration: every ``every`` finished episodes the Trainer
    captures its full state (agent, environment, criterion, curve — all RNG
    streams included) and hands the pickled blob to :meth:`save`; at fit
    start it calls :meth:`load` and, when a blob exists, resumes from it
    instead of starting fresh.  Because the capture happens at an episode
    boundary and includes every RNG, the resumed run replays the
    uninterrupted run bit-for-bit.

    ``store`` is duck-typed (``save_trial_state`` / ``load_trial_state`` /
    ``clear_trial_state``) so this module stays import-cycle-free; pass an
    :class:`~repro.api.store.ArtifactStore` and the
    :class:`~repro.parallel.sweep.SweepTask` identifying the trial.
    """

    def __init__(self, store: Any, task: Any, *, every: int = 100) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.store = store
        self.task = task
        self.every = every
        self._episodes_since = 0
        self.saves = 0

    # ---- trainer integration --------------------------------------------
    def due_after_episode(self) -> bool:
        """Advance the episode counter; True when a checkpoint is due."""
        self._episodes_since += 1
        if self._episodes_since >= self.every:
            self._episodes_since = 0
            return True
        return False

    def load(self) -> Optional[bytes]:
        return self.store.load_trial_state(self.task)

    def save(self, blob: bytes) -> None:
        self.store.save_trial_state(self.task, blob)
        self.saves += 1

    def clear(self) -> None:
        self.store.clear_trial_state(self.task)


__all__ = [
    "Callback", "CallbackList", "CheckpointCallback", "MetricsRecorder",
    "ProgressCallback", "StepEvent", "progress_to_stderr",
]
