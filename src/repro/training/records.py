"""Training-curve and training-result records (the data behind Figure 4/5).

Home of the metric containers the :class:`~repro.training.trainer.Trainer`
emits (historically ``repro.rl.recording``, which now re-exports from here).
The curve itself is assembled by the built-in
:class:`~repro.training.callbacks.MetricsRecorder` callback; these classes
are the pure data layer shared by the trainer, the sweep engine, the
artifact store and the reporting adapters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.utils.timer import TimeBreakdown


@dataclass
class EpisodeRecord:
    """One row of the training curve."""

    episode: int
    steps: int                    #: steps the pole stayed up (the Y-axis of Figure 4)
    shaped_return: float          #: sum of shaped rewards seen by the agent
    moving_average: float         #: 100-episode moving average of ``steps``
    lipschitz_bound: Optional[float] = None
    beta_norm: Optional[float] = None


@dataclass
class TrainingCurve:
    """The full per-episode history of one training run."""

    records: List[EpisodeRecord] = field(default_factory=list)

    def append(self, record: EpisodeRecord) -> None:
        self.records.append(record)

    @property
    def episodes(self) -> np.ndarray:
        return np.array([r.episode for r in self.records], dtype=int)

    @property
    def steps(self) -> np.ndarray:
        return np.array([r.steps for r in self.records], dtype=float)

    @property
    def moving_average(self) -> np.ndarray:
        return np.array([r.moving_average for r in self.records], dtype=float)

    @property
    def lipschitz_bounds(self) -> np.ndarray:
        return np.array([r.lipschitz_bound if r.lipschitz_bound is not None else np.nan
                         for r in self.records], dtype=float)

    def __len__(self) -> int:
        return len(self.records)

    def final_average(self, window: int = 100) -> float:
        """Average steps over the last ``window`` episodes (0 when empty)."""
        if not self.records:
            return 0.0
        tail = self.steps[-window:]
        return float(tail.mean())

    def as_dict(self) -> Dict[str, np.ndarray]:
        return {
            "episodes": self.episodes,
            "steps": self.steps,
            "moving_average": self.moving_average,
        }


@dataclass
class TrainingResult:
    """Outcome of one trained trial (one :meth:`Trainer.fit` lane)."""

    design: str
    n_hidden: int
    solved: bool
    episodes: int                              #: episodes actually run
    episodes_to_solve: Optional[int]           #: None when the run failed / was cut off
    wall_time_seconds: float                   #: total wall-clock time of the run
    curve: TrainingCurve
    breakdown: TimeBreakdown                   #: per-operation measured time + counts
    weight_resets: int = 0
    seed: Optional[int] = None

    @property
    def completed(self) -> bool:
        """Alias matching the paper's phrasing ("acquire correct behaviors")."""
        return self.solved

    def summary(self) -> Dict[str, object]:
        """Flat dictionary used by the experiment reporting tables."""
        return {
            "design": self.design,
            "n_hidden": self.n_hidden,
            "solved": self.solved,
            "episodes": self.episodes,
            "episodes_to_solve": self.episodes_to_solve,
            "wall_time_seconds": self.wall_time_seconds,
            "final_average_steps": self.curve.final_average(),
            "weight_resets": self.weight_resets,
            "operation_counts": dict(self.breakdown.counts),
            "operation_seconds": dict(self.breakdown.seconds),
        }


__all__ = ["EpisodeRecord", "TrainingCurve", "TrainingResult"]
