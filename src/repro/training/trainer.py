"""The one canonical training loop behind every design in the paper.

``Trainer`` drives Algorithm 1's outer loops (episodes x steps) for any
agent implementing :class:`~repro.training.protocols.AgentProtocol`, with:

* optional reward shaping so the clipped targets stay in [-1, 1],
* the 100-episode moving-average solved criterion,
* the 300-episode stall-reset rule (via ``register_progress``),
* the 50,000-episode "impossible" cutoff,
* a typed :class:`~repro.training.callbacks.Callback` lifecycle
  (progress streaming, metric recording, mid-trial checkpointing),
* ``action_repeat`` (frame-skip) stepping that pairs with
  ``SubprocVectorEnv(steps_per_message=k)`` / ``AsyncVectorEnv``.

Two drivers share that one set of episode semantics:

:meth:`Trainer.fit`
    One agent against one scalar :class:`~repro.envs.core.Env` — the
    historical ``repro.rl.runner.train_agent`` loop, reproduced
    bit-for-bit (that function is now a thin wrapper over this method).
:meth:`Trainer.fit_lockstep`
    N independent trials advanced in lock-step through one vector env,
    delegating the per-step math to a
    :mod:`~repro.training.strategies` object: the batched ELM/OS-ELM
    strategy (stacked matmuls + batched Sherman-Morrison, the historical
    ``train_agents_lockstep``) or the generic strategy that drives *any*
    protocol agent — which is what finally lets the DQN baseline and the
    FPGA fixed-point design train under the lock-step backend.  Per-trial
    results are bit-for-bit those of the serial driver on fixed seeds.

Every per-episode decision — criterion update, record construction, solved
handling, the stall-reset rule, callback firing — lives in exactly one
place (:meth:`Trainer._finish_episode`), so the three historical loops can
no longer drift apart.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Union

import numpy as np

from repro.core.clipping import shaped_cartpole_reward
from repro.envs.core import Env
from repro.envs.registry import make as make_env
from repro.training.callbacks import (
    Callback,
    CallbackList,
    CheckpointCallback,
    MetricsRecorder,
    StepEvent,
)
from repro.telemetry.tracing import span
from repro.training.config import TrainingConfig
from repro.training.records import EpisodeRecord, TrainingCurve, TrainingResult
from repro.utils.logging import get_logger
from repro.utils.metrics import SolvedCriterion

_LOGGER = get_logger("repro.training.trainer")

#: Format tag inside pickled mid-trial checkpoints (bumped on layout change).
CHECKPOINT_STATE_VERSION = 1


class TrialState:
    """Canonical per-trial bookkeeping, shared by both drivers."""

    __slots__ = ("index", "agent", "config", "criterion", "episode", "steps",
                 "shaped_return", "active", "solved", "episodes_to_solve")

    def __init__(self, index: int, agent: Any, config: TrainingConfig) -> None:
        self.index = index
        self.agent = agent
        self.config = config
        self.criterion = SolvedCriterion(config.solved_threshold,
                                         config.solved_window,
                                         config.max_episodes)
        self.episode = 1
        self.steps = 0
        self.shaped_return = 0.0
        self.active = True
        self.solved = False
        self.episodes_to_solve: Optional[int] = None


@dataclass
class TrainingRun:
    """What ``on_train_start`` / ``on_train_end`` see: the whole fit call."""

    mode: str                               #: "serial" or "lockstep"
    trials: List[TrialState] = field(default_factory=list)
    strategy: Optional[str] = None          #: lock-step strategy name, if any
    resumed: bool = False                   #: serial driver restored a checkpoint


def resolve_env(env: Union[str, Env, None], config: TrainingConfig) -> Env:
    """Build (or pass through) the scalar env one serial trial runs in."""
    if env is None:
        env = config.env_id
    if isinstance(env, str):
        kwargs = dict(config.env_params)
        if config.max_steps_per_episode is not None:
            kwargs["max_episode_steps"] = config.max_steps_per_episode
        return make_env(env, seed=config.seed, **kwargs)
    return env


class Trainer:
    """Drive the canonical episode/step loop over one or many trials.

    Parameters
    ----------
    callbacks:
        :class:`~repro.training.callbacks.Callback` instances observing the
        run.  A :class:`MetricsRecorder` is appended automatically when none
        is present (the trainer needs the curves it collects); a
        :class:`CheckpointCallback` additionally enables mid-trial
        checkpoint/resume on the serial driver.
    """

    def __init__(self, *, callbacks: Sequence[Callback] = ()) -> None:
        self.callbacks = CallbackList(callbacks)
        recorder = self.callbacks.first_of(MetricsRecorder)
        if recorder is None:
            recorder = MetricsRecorder()
            self.callbacks.callbacks.append(recorder)
        self.recorder: MetricsRecorder = recorder

    # ------------------------------------------------------------------ shared episode semantics
    def _shaped_reward(self, trial: TrialState, terminated: bool,
                       truncated: bool, raw_reward: float) -> float:
        if trial.config.reward_shaping:
            return shaped_cartpole_reward(terminated, truncated, trial.steps,
                                          success_steps=trial.config.success_steps)
        return float(raw_reward)

    def _finish_episode(self, trial: TrialState, *,
                        prepare_record=None) -> tuple:
        """Criterion update + record + solved/reset handling for one episode.

        Returns ``(now_solved, stop, reset_occurred)``: whether the solved
        criterion fired this episode, whether the trial should stop, and
        whether the stall-reset rule re-initialised the agent's weights.
        """
        agent = trial.agent
        config = trial.config
        now_solved = trial.criterion.update(trial.steps)
        record = EpisodeRecord(
            episode=trial.episode,
            steps=trial.steps,
            shaped_return=trial.shaped_return,
            moving_average=trial.criterion.average,
        )
        if config.record_lipschitz and hasattr(agent, "lipschitz_upper_bound"):
            if prepare_record is not None:
                prepare_record(trial.index)
            record.lipschitz_bound = agent.lipschitz_upper_bound()
            if hasattr(agent, "beta_norm"):
                record.beta_norm = agent.beta_norm()
        self.callbacks.episode_end(trial, record)

        stop = False
        if now_solved and trial.episodes_to_solve is None:
            trial.episodes_to_solve = trial.episode
            trial.solved = True
            _LOGGER.info("task solved", design=getattr(agent, "name", "agent"),
                         episode=trial.episode)
            if config.stop_when_solved:
                return now_solved, True, False
        reset_occurred = False
        if hasattr(agent, "register_progress"):
            resets_before = getattr(agent, "weight_resets", 0)
            agent.register_progress(now_solved)
            reset_occurred = getattr(agent, "weight_resets", 0) != resets_before
        if trial.episode >= config.max_episodes:
            stop = True
        return now_solved, stop, reset_occurred

    def _result(self, trial: TrialState, n_hidden: int,
                wall_time: float) -> TrainingResult:
        agent = trial.agent
        curve = self.recorder.curve(trial.index)
        return TrainingResult(
            design=getattr(agent, "name", "agent"),
            n_hidden=int(n_hidden),
            solved=trial.solved,
            episodes=len(curve),
            episodes_to_solve=trial.episodes_to_solve,
            wall_time_seconds=wall_time,
            curve=curve,
            breakdown=agent.breakdown,
            weight_resets=getattr(agent, "weight_resets", 0),
            seed=trial.config.seed,
        )

    # ------------------------------------------------------------------ serial driver
    def fit(self, agent: Any, env: Union[str, Env, None] = None, *,
            config: TrainingConfig = TrainingConfig(),
            n_hidden: Optional[int] = None) -> TrainingResult:
        """Train one agent until solved or the episode budget is exhausted.

        Parameters
        ----------
        agent:
            Any :class:`~repro.training.protocols.AgentProtocol` agent.
        env:
            Environment instance, registered id, or ``None`` to build
            ``config.env_id``.
        config:
            Protocol parameters.
        n_hidden:
            Recorded in the result for reporting; inferred from the agent's
            config when omitted.
        """
        environment = resolve_env(env, config)
        if n_hidden is None:
            n_hidden = getattr(getattr(agent, "config", None), "n_hidden", 0)
        trial = TrialState(0, agent, config)
        self.recorder.curves[trial.index] = TrainingCurve()
        checkpoint = self.callbacks.first_of(CheckpointCallback)
        elapsed_before = 0.0
        resumed = False
        if checkpoint is not None:
            restored = self._load_checkpoint(checkpoint, config)
            if restored is not None:
                trial, environment, elapsed_before = restored
                agent = trial.agent
                resumed = True
                _LOGGER.info("resumed mid-trial", design=getattr(agent, "name", "agent"),
                             episode=trial.episode)
        run = TrainingRun(mode="serial", trials=[trial], resumed=resumed)
        self.callbacks.train_start(run)
        emit_steps = self.callbacks.wants_steps
        repeat = config.action_repeat
        start_wall = time.perf_counter()

        stop = trial.solved and config.stop_when_solved
        while not stop and trial.episode <= config.max_episodes:
            with span("trial.episode"):
                agent.begin_episode(trial.episode)
                self.callbacks.episode_start(trial)
                state, _ = environment.reset()
                trial.steps = 0
                trial.shaped_return = 0.0
                done = False
                while not done:
                    action = agent.act(state)
                    frames = 0
                    raw_reward = 0.0
                    for _ in range(repeat):
                        result = environment.step(action)
                        trial.steps += 1
                        frames += 1
                        raw_reward += result.reward
                        if result.done:
                            break
                    reward = self._shaped_reward(trial, result.terminated,
                                                 result.truncated, raw_reward)
                    trial.shaped_return += reward
                    agent.observe(state, action, reward, result.observation,
                                  result.done)
                    if emit_steps:
                        self.callbacks.step(trial, StepEvent(
                            state=state, action=action, reward=reward,
                            next_state=result.observation, done=result.done,
                            frames=frames))
                    state = result.observation
                    done = result.done
                agent.end_episode(trial.episode)
                _, stop, _ = self._finish_episode(trial)
                if checkpoint is not None and checkpoint.due_after_episode() and not stop:
                    self._save_checkpoint(checkpoint, trial, environment,
                                          elapsed_before + time.perf_counter() - start_wall)
                    self.callbacks.checkpoint(trial)
                trial.episode += 1
        trial.episode -= 1          # back to the last episode actually run

        wall_time = elapsed_before + time.perf_counter() - start_wall
        if checkpoint is not None:
            checkpoint.clear()      # the finished artifact supersedes mid-trial state
        result = self._result(trial, n_hidden, wall_time)
        self.callbacks.train_end(run, [result])
        return result

    # ------------------------------------------------------------------ serial checkpointing
    def _save_checkpoint(self, checkpoint: CheckpointCallback, trial: TrialState,
                         environment: Env, elapsed: float) -> None:
        payload = {
            "version": CHECKPOINT_STATE_VERSION,
            "agent": trial.agent,
            "environment": environment,
            "episode": trial.episode,           # last completed episode
            "criterion": trial.criterion,
            "curve": self.recorder.curve(trial.index),
            "solved": trial.solved,
            "episodes_to_solve": trial.episodes_to_solve,
            "elapsed_seconds": elapsed,
        }
        checkpoint.save(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    def _load_checkpoint(self, checkpoint: CheckpointCallback,
                         config: TrainingConfig):
        blob = checkpoint.load()
        if blob is None:
            return None
        try:
            payload = pickle.loads(blob)
            if payload.get("version") != CHECKPOINT_STATE_VERSION:
                return None
        except Exception:           # corrupt blob reads as "no checkpoint"
            _LOGGER.warning("ignoring unreadable mid-trial checkpoint")
            return None
        # Rebuild the trial around the *restored* protocol state.  The config
        # is the caller's (it defines the budget); everything mutable comes
        # from the snapshot.
        trial = TrialState(0, payload["agent"], config)
        return self._restore_trial(trial, payload), payload["environment"], \
            payload["elapsed_seconds"]

    def _restore_trial(self, trial: TrialState, payload: dict) -> TrialState:
        trial.criterion = payload["criterion"]
        trial.episode = payload["episode"] + 1     # resume at the next episode
        trial.solved = payload["solved"]
        trial.episodes_to_solve = payload["episodes_to_solve"]
        self.recorder.curves[trial.index] = payload["curve"]
        return trial

    # ------------------------------------------------------------------ lock-step driver
    def fit_lockstep(self, agents: Sequence[Any],
                     configs: Sequence[TrainingConfig], *,
                     venv: Optional[Any] = None,
                     strategy: Union[str, Any] = "auto") -> List[TrainingResult]:
        """Train N independent trials in lock-step; one result per trial.

        Parameters
        ----------
        agents, configs:
            One protocol agent and one :class:`TrainingConfig` per trial.
            ``env_id`` (and ``action_repeat``) must match across the batch —
            one vector env drives every trial; budgets, thresholds and seeds
            may differ per trial.
        venv:
            Pre-built vector env (one sub-env per trial, in trial order).
            Built from the configs when omitted: a
            :class:`~repro.parallel.vector_env.SyncVectorEnv` normally, or a
            ``SubprocVectorEnv(steps_per_message=action_repeat)`` when the
            batch uses frame skip.
        strategy:
            ``"auto"`` picks the batched ELM/OS-ELM strategy when every
            agent qualifies (see
            :func:`~repro.parallel.lockstep.supports_lockstep`) and the
            generic per-agent strategy otherwise; ``"batched"`` /
            ``"generic"`` force one; or pass a strategy instance.
        """
        from repro.training import strategies as _strategies

        if not agents:
            raise ValueError("fit_lockstep needs at least one agent")
        if len(agents) != len(configs):
            raise ValueError(f"got {len(agents)} agents but {len(configs)} configs")
        env_ids = {config.env_id for config in configs}
        if len(env_ids) != 1:
            raise ValueError(
                f"all trials in a lock-step batch must share env_id, got {env_ids}")
        repeats = {config.action_repeat for config in configs}
        if len(repeats) != 1:
            raise ValueError(
                f"all trials in a lock-step batch must share action_repeat, got {repeats}")
        repeat = repeats.pop()

        strat = _strategies.resolve_strategy(strategy, agents)
        trials = [TrialState(i, agent, config)
                  for i, (agent, config) in enumerate(zip(agents, configs))]
        owns_venv = venv is None
        if venv is None:
            venv = _build_vector_env(configs, action_repeat=repeat)
        if venv.num_envs != len(trials):
            raise ValueError(
                f"vector env has {venv.num_envs} sub-envs for {len(trials)} trials")
        if repeat > 1 and getattr(venv, "steps_per_message", 1) != repeat:
            raise ValueError(
                "action_repeat > 1 on the lock-step driver needs a vector env "
                "with matching frame skip (SubprocVectorEnv/AsyncVectorEnv "
                f"steps_per_message={repeat}); got "
                f"{type(venv).__name__}(steps_per_message="
                f"{getattr(venv, 'steps_per_message', 1)})")

        try:
            with span("trainer.fit_lockstep"):
                return self._run_lockstep(trials, venv, strat, repeat)
        finally:
            if owns_venv:
                venv.close()

    def _run_lockstep(self, trials: List[TrialState], venv: Any, strat: Any,
                      repeat: int) -> List[TrainingResult]:
        run = TrainingRun(mode="lockstep", trials=trials,
                          strategy=type(strat).__name__)
        for trial in trials:
            self.recorder.curves[trial.index] = TrainingCurve()
        self.callbacks.train_start(run)
        emit_steps = self.callbacks.wants_steps
        n_trials = len(trials)
        strat.bind(trials, venv)

        start_wall = time.perf_counter()
        for trial in trials:
            trial.agent.begin_episode(trial.episode)
            self.callbacks.episode_start(trial)
        states, _ = venv.reset()
        strat.start(states)
        actions = np.zeros(n_trials, dtype=np.int64)
        active_indices = list(range(n_trials))

        while active_indices:
            raw_actions = strat.select_actions(states, actions, active_indices)
            step = venv.step(actions)
            strat.post_env_step(step)

            finished: List[int] = []
            terminated_flags = step.terminated.tolist()
            truncated_flags = step.truncated.tolist()
            for i in active_indices:
                trial = trials[i]
                term, trunc = terminated_flags[i], truncated_flags[i]
                done = term or trunc
                info = step.infos[i]
                trial.steps += info.get("frames", 1) if repeat > 1 else 1
                next_obs = (info["final_observation"] if done
                            else step.observations[i])
                reward = self._shaped_reward(trial, term, trunc,
                                             float(step.rewards[i]))
                trial.shaped_return += reward
                strat.observe(i, states[i], raw_actions[i], reward, next_obs, done)
                if emit_steps:
                    self.callbacks.step(trial, StepEvent(
                        state=states[i], action=raw_actions[i], reward=reward,
                        next_state=next_obs, done=done,
                        frames=info.get("frames", 1)))
                if done:
                    finished.append(i)
            strat.flush_updates(actions)

            for i in finished:
                trial = trials[i]
                strat.end_episode(i)
                _, stop, reset_occurred = self._finish_episode(
                    trial, prepare_record=strat.prepare_record)
                if reset_occurred:
                    strat.after_weight_reset(i)
                if stop:
                    trial.active = False
                    continue
                trial.episode += 1
                trial.steps = 0
                trial.shaped_return = 0.0
                trial.agent.begin_episode(trial.episode)
                self.callbacks.episode_start(trial)
            if finished:
                active_indices = [i for i in active_indices if trials[i].active]
            states = step.observations
            strat.end_step()

        wall_time = time.perf_counter() - start_wall
        strat.finalize()
        results = [self._result(trial, getattr(getattr(trial.agent, "config", None),
                                               "n_hidden", 0), wall_time)
                   for trial in trials]
        self.callbacks.train_end(run, results)
        return results


def _build_vector_env(configs: Sequence[TrainingConfig], *,
                      action_repeat: int = 1) -> Any:
    """One sub-env per trial config, frame-skip-aware."""
    from repro.parallel.vector_env import EnvFactory, SyncVectorEnv

    env_fns = []
    for config in configs:
        kwargs = dict(config.env_params)
        if config.max_steps_per_episode is not None:
            kwargs["max_episode_steps"] = config.max_steps_per_episode
        env_fns.append(EnvFactory(config.env_id, seed=config.seed,
                                  kwargs=tuple(sorted(kwargs.items()))))
    if action_repeat > 1:
        from repro.parallel.subproc import SubprocVectorEnv

        return SubprocVectorEnv(env_fns, steps_per_message=action_repeat)
    # The trainer emits guaranteed-valid int64 actions every step, so the
    # per-step validation of the batched path is pure overhead here.
    return SyncVectorEnv(env_fns, validate=False)


__all__ = ["CHECKPOINT_STATE_VERSION", "Trainer", "TrainingRun", "TrialState",
           "resolve_env"]
