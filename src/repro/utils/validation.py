"""Argument-validation helpers shared by the public API surface."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.exceptions import ShapeError


def check_array(value: object, *, name: str = "array", dtype: Union[type, np.dtype] = np.float64,
                allow_nan: bool = False) -> np.ndarray:
    """Coerce ``value`` to an ndarray of ``dtype`` and reject NaN/Inf unless allowed."""
    arr = np.asarray(value, dtype=dtype)
    if not allow_nan and arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or Inf values")
    return arr


def ensure_2d(value: object, *, name: str = "array", n_features: Optional[int] = None,
              dtype: Union[type, np.dtype] = np.float64) -> np.ndarray:
    """Coerce ``value`` to a 2-D float array of shape ``(batch, n_features)``.

    1-D inputs are promoted to a single-row batch (the paper fixes the OS-ELM
    batch size at 1, so single samples are the common case).
    """
    arr = check_array(value, name=name, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 1-D or 2-D, got shape {arr.shape}")
    if n_features is not None and arr.shape[1] != n_features:
        raise ShapeError(
            f"{name} must have {n_features} features, got {arr.shape[1]} (shape {arr.shape})"
        )
    return arr


def check_positive(value: float, *, name: str = "value", strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative when ``strict=False``)."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, *, name: str = "probability") -> float:
    """Validate that a scalar lies in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(value: float, low: float, high: float, *, name: str = "value",
                   inclusive: Tuple[bool, bool] = (True, True)) -> float:
    """Validate that a scalar lies in the interval [low, high] (or open variants)."""
    value = float(value)
    low_ok = value >= low if inclusive[0] else value > low
    high_ok = value <= high if inclusive[1] else value < high
    if not (low_ok and high_ok):
        brackets = ("[" if inclusive[0] else "(", "]" if inclusive[1] else ")")
        raise ValueError(f"{name} must be in {brackets[0]}{low}, {high}{brackets[1]}, got {value}")
    return value


def check_choice(value: str, choices: Sequence[str], *, name: str = "value") -> str:
    """Validate that ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {sorted(choices)}, got {value!r}")
    return value
