"""Streaming metrics used by the training loops and experiment harnesses."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

import numpy as np


class MovingAverage:
    """Simple moving average over the most recent ``window`` values.

    The paper's training curves (Figure 4) plot the moving average of the
    episode return over the last 100 episodes; the CartPole-v0 "solved"
    criterion also uses a 100-episode moving average.
    """

    def __init__(self, window: int = 100) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = int(window)
        self._values: Deque[float] = deque(maxlen=self.window)
        self._sum = 0.0

    def add(self, value: float) -> float:
        """Add a value and return the updated average."""
        value = float(value)
        if len(self._values) == self.window:
            self._sum -= self._values[0]
        self._values.append(value)
        self._sum += value
        return self.value

    @property
    def value(self) -> float:
        """Current average (0.0 when empty)."""
        if not self._values:
            return 0.0
        return self._sum / len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def full(self) -> bool:
        """Whether the window has been filled."""
        return len(self._values) == self.window

    def reset(self) -> None:
        self._values.clear()
        self._sum = 0.0


class ExponentialMovingAverage:
    """Exponentially weighted moving average with smoothing factor ``alpha``."""

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value: Optional[float] = None

    def add(self, value: float) -> float:
        value = float(value)
        if self._value is None:
            self._value = value
        else:
            self._value = self.alpha * value + (1.0 - self.alpha) * self._value
        return self._value

    @property
    def value(self) -> float:
        return 0.0 if self._value is None else self._value

    def reset(self) -> None:
        self._value = None


class RunningStats:
    """Welford online mean/variance, numerically stable for long streams."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0


class SolvedCriterion:
    """Decide when a reinforcement-learning task is "solved".

    CartPole-v0 is conventionally solved when the average episode return over
    ``window`` consecutive episodes reaches ``threshold`` (195.0 over 100
    episodes).  The paper additionally terminates a run as *impossible* after
    ``max_episodes`` (50,000) episodes without success, and resets
    ELM/OS-ELM weights after ``reset_after`` (300) stalled episodes.
    """

    def __init__(self, threshold: float = 195.0, window: int = 100,
                 max_episodes: int = 50_000) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if max_episodes <= 0:
            raise ValueError("max_episodes must be positive")
        self.threshold = float(threshold)
        self.window = int(window)
        self.max_episodes = int(max_episodes)
        self._avg = MovingAverage(window)
        self.episodes = 0
        self.history: List[float] = []

    def update(self, episode_return: float) -> bool:
        """Record one episode's return and report whether the task is now solved."""
        self.episodes += 1
        self.history.append(float(episode_return))
        avg = self._avg.add(episode_return)
        return self._avg.full and avg >= self.threshold

    @property
    def solved(self) -> bool:
        return self._avg.full and self._avg.value >= self.threshold

    @property
    def exhausted(self) -> bool:
        """Whether the run exceeded the paper's 50,000-episode cutoff."""
        return self.episodes >= self.max_episodes

    @property
    def average(self) -> float:
        return self._avg.value

    def reset(self) -> None:
        self._avg.reset()
        self.episodes = 0
        self.history.clear()
