"""Deterministic retry with capped exponential backoff.

Every network-facing edge of the repo — the worker's broker connection,
``fetch_fleet_stats``, ``request_drain``, :class:`~repro.serving.client.
PolicyClient`, :class:`~repro.serving.WeightPushCallback` — retries
transient failures through one shared :class:`RetryPolicy`, so the fleet's
recovery behaviour is a handful of numbers instead of five bespoke loops.

The backoff is **deterministic on purpose**: no jitter, no wall-clock
randomness.  The chaos harness (:mod:`repro.chaos`) asserts bit-identical
sweep output under injected faults, and a reproducible retry schedule is
what makes "the worker reconnected on attempt 3 after 0.2 + 0.4 s" a
statement a test can pin rather than a log line a human squints at.  (Many
concurrent clients hammering one broker would normally want jitter; here
the fleet is tens of workers, the broker accepts connections in a
dedicated thread, and determinism is a feature the whole repo is built
around.)

Usage::

    policy = RetryPolicy(max_attempts=5, base_delay=0.2, max_delay=2.0)
    sock = policy.call(lambda: socket.create_connection(address))

or, for loops that interleave retries with other work, the stateful
:meth:`RetryPolicy.clock`::

    attempt = policy.clock()
    while True:
        try:
            reconnect()
            break
        except ConnectionError as error:
            attempt.failed(error)        # sleeps, or raises RetryError
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

_T = TypeVar("_T")

#: Exception types retried by default: every transport failure the
#: distributed stack raises funnels into ``ConnectionError`` or ``OSError``
#: (``ProtocolError`` subclasses ``ConnectionError``; ``socket.timeout`` is
#: an ``OSError``).
DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (ConnectionError, OSError)


class RetryError(ConnectionError):
    """A retry policy ran out of attempts (or overran its deadline).

    Subclasses :class:`ConnectionError` so callers that already handle
    connection failures — the worker CLI, ``FleetStatusError`` wrappers —
    treat an exhausted retry exactly like the final failure it wraps.  The
    last underlying exception is chained as ``__cause__`` and kept on
    :attr:`last_error`.
    """

    def __init__(self, message: str, *, attempts: int,
                 elapsed: float, last_error: Optional[BaseException]) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.elapsed = elapsed
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: how often, how fast, and for how long.

    Parameters
    ----------
    max_attempts:
        Total tries including the first one; ``1`` means "never retry".
    base_delay:
        Seconds slept before the second attempt.
    multiplier:
        Growth factor per retry (``base_delay * multiplier ** n``).
    max_delay:
        Per-sleep ceiling — the schedule is exponential until it hits this
        cap, then flat.
    deadline:
        Optional overall budget in seconds, measured from the first
        attempt.  A retry whose *upcoming* sleep would overrun the deadline
        is not taken; :class:`RetryError` is raised instead.  This bounds a
        worker's patience through a broker restart without letting a
        generous attempt count wait forever.
    """

    max_attempts: int = 5
    base_delay: float = 0.2
    multiplier: float = 2.0
    max_delay: float = 5.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay "
                             f"({self.max_delay} < {self.base_delay})")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    # ------------------------------------------------------------------ schedule
    def delay_for(self, retry_index: int) -> float:
        """Seconds slept before retry ``retry_index`` (0-based).

        Computed with an explicit cap on the exponent so a huge attempt
        count cannot overflow ``multiplier ** n`` into ``inf``.
        """
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        delay = self.base_delay
        for _ in range(retry_index):
            delay *= self.multiplier
            if delay >= self.max_delay:
                return self.max_delay
        return min(delay, self.max_delay)

    def delays(self) -> Tuple[float, ...]:
        """The full deterministic sleep schedule (``max_attempts - 1`` entries)."""
        return tuple(self.delay_for(i) for i in range(self.max_attempts - 1))

    # ------------------------------------------------------------------ drivers
    def clock(self, *, sleep: Callable[[float], None] = time.sleep,
              now: Callable[[], float] = time.monotonic) -> "RetryClock":
        """A stateful attempt tracker for hand-written retry loops."""
        return RetryClock(self, sleep=sleep, now=now)

    def call(self, fn: Callable[[], _T], *,
             retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON,
             on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
             sleep: Callable[[float], None] = time.sleep,
             now: Callable[[], float] = time.monotonic) -> _T:
        """Call ``fn`` until it succeeds or the policy is exhausted.

        ``on_retry(attempt, delay, error)`` fires before each backoff sleep
        (attempt is the 1-based attempt that just failed).  Exceptions not
        listed in ``retry_on`` propagate immediately, attempt budget or not.
        """
        attempt = self.clock(sleep=sleep, now=now)
        while True:
            try:
                return fn()
            except retry_on as error:       # noqa: PERF203 - the whole point
                attempt.failed(error, on_retry=on_retry)


class RetryClock:
    """Mutable companion of one :class:`RetryPolicy` run.

    :meth:`failed` records one failed attempt: it either sleeps the
    schedule's next delay and returns it, or raises :class:`RetryError`
    when the attempt budget / deadline is spent.  Success is implicit —
    the caller just stops calling.
    """

    def __init__(self, policy: RetryPolicy, *,
                 sleep: Callable[[float], None] = time.sleep,
                 now: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy
        self.attempts = 0
        self._sleep = sleep
        self._now = now
        self._started = now()

    @property
    def elapsed(self) -> float:
        return self._now() - self._started

    def failed(self, error: Optional[BaseException] = None, *,
               on_retry: Optional[Callable[[int, float, BaseException], None]]
               = None) -> float:
        """One attempt failed; sleep the backoff or raise :class:`RetryError`."""
        self.attempts += 1
        policy = self.policy
        if self.attempts >= policy.max_attempts:
            raise RetryError(
                f"gave up after {self.attempts} attempt(s) over "
                f"{self.elapsed:.1f}s: {error}",
                attempts=self.attempts, elapsed=self.elapsed,
                last_error=error) from error
        delay = policy.delay_for(self.attempts - 1)
        if (policy.deadline is not None
                and self.elapsed + delay > policy.deadline):
            raise RetryError(
                f"retry deadline of {policy.deadline:g}s would be overrun "
                f"after {self.attempts} attempt(s): {error}",
                attempts=self.attempts, elapsed=self.elapsed,
                last_error=error) from error
        if on_retry is not None and error is not None:
            on_retry(self.attempts, delay, error)
        if delay > 0:
            self._sleep(delay)
        return delay


__all__ = ["DEFAULT_RETRY_ON", "RetryClock", "RetryError", "RetryPolicy"]
