"""Exception hierarchy shared across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape or dimensionality."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring prior training was called before training.

    Raised, for example, when ``OSELM.predict`` or ``OSELM.partial_fit`` is
    called before the initial training phase (Equation 7/8 of the paper) has
    been completed.
    """


class ConfigurationError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent with other settings."""


class ResourceExhaustedError(ReproError, RuntimeError):
    """An FPGA design does not fit in the target device.

    Mirrors the paper's Table 3 entry for 256 hidden units, which exceeds the
    BRAM capacity of the xc7z020 and therefore cannot be implemented.
    """

    def __init__(self, message: str, *, resource: str = "", required: float = 0.0,
                 available: float = 0.0) -> None:
        super().__init__(message)
        self.resource = resource
        self.required = required
        self.available = available


class FixedPointOverflowError(ReproError, OverflowError):
    """A fixed-point value exceeded the representable range under ``error`` policy."""
