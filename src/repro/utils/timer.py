"""Wall-clock timing and per-operation time breakdowns.

Figure 5 and Figure 6 of the paper report the *breakdown* of execution time
into the operations ``seq_train``, ``predict_seq``, ``init_train``,
``predict_init``, ``train_DQN``, ``predict_1`` and ``predict_32``.
:class:`TimeBreakdown` is the accumulator used by every agent in this library
to attribute time (measured or modelled) to those operation labels.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional


class Timer:
    """A simple start/stop wall-clock timer based on ``perf_counter``."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer is already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a running :class:`Timer`."""
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        if timer.running:
            timer.stop()


@dataclass
class TimeBreakdown:
    """Accumulates seconds (and call counts) attributed to named operations."""

    seconds: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, operation: str, seconds: float, count: int = 1) -> None:
        """Attribute ``seconds`` of time (and ``count`` invocations) to ``operation``."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self.seconds[operation] = self.seconds.get(operation, 0.0) + float(seconds)
        self.counts[operation] = self.counts.get(operation, 0) + int(count)

    @contextmanager
    def measure(self, operation: str) -> Iterator[None]:
        """Measure a wall-clock block and attribute it to ``operation``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(operation, time.perf_counter() - start)

    def total(self) -> float:
        """Total seconds across all operations."""
        return float(sum(self.seconds.values()))

    def fraction(self, operation: str) -> float:
        """Fraction of the total attributed to ``operation`` (0 if empty)."""
        total = self.total()
        if total <= 0:
            return 0.0
        return self.seconds.get(operation, 0.0) / total

    def merge(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Return a new breakdown with this one's and ``other``'s entries summed."""
        merged = TimeBreakdown(dict(self.seconds), dict(self.counts))
        for op, sec in other.seconds.items():
            merged.add(op, sec, other.counts.get(op, 0))
        return merged

    def scaled(self, factor: float) -> "TimeBreakdown":
        """Return a copy with every accumulated time multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return TimeBreakdown(
            {op: sec * factor for op, sec in self.seconds.items()},
            dict(self.counts),
        )

    def as_dict(self) -> Mapping[str, float]:
        return dict(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{op}={sec:.4f}s" for op, sec in sorted(self.seconds.items()))
        return f"TimeBreakdown({parts}, total={self.total():.4f}s)"


#: Canonical operation labels used by the paper's Figures 5 and 6.
OPERATION_LABELS = (
    "init_train",
    "predict_init",
    "seq_train",
    "predict_seq",
    "train_DQN",
    "predict_1",
    "predict_32",
)
