"""Model / experiment-result serialization helpers (JSON + ``.npz``)."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

PathLike = Union[str, os.PathLike]


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands NumPy scalars and arrays."""

    def default(self, o: Any) -> Any:  # noqa: D102 - inherited
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        return super().default(o)


def save_json(path: PathLike, data: Mapping[str, Any], *, indent: int = 2) -> Path:
    """Serialize ``data`` to JSON, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=indent, cls=_NumpyJSONEncoder, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Load a JSON document produced by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_arrays(path: PathLike, arrays: Mapping[str, np.ndarray]) -> Path:
    """Save named arrays to a compressed ``.npz`` archive."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in arrays.items()})
    return path


def load_arrays(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``.npz`` archive into a plain dict of arrays."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}
