"""Shared utilities: seeding, logging, timing, metrics, serialization.

These helpers are deliberately dependency-free (NumPy only) so that every
other subpackage — the OS-ELM core, the environments, the FPGA models — can
use them without import cycles.
"""

from repro.utils.exceptions import (
    ConfigurationError,
    NotFittedError,
    ReproError,
    ShapeError,
)
from repro.utils.logging import (
    Logger,
    get_logger,
    set_global_format,
    set_global_level,
)
from repro.utils.metrics import (
    ExponentialMovingAverage,
    MovingAverage,
    RunningStats,
    SolvedCriterion,
)
from repro.utils.seeding import SeedSequenceFactory, derive_rng, np_random
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json
from repro.utils.timer import TimeBreakdown, Timer, timed
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive,
    check_probability,
    ensure_2d,
)

__all__ = [
    "ConfigurationError",
    "NotFittedError",
    "ReproError",
    "ShapeError",
    "Logger",
    "get_logger",
    "set_global_format",
    "set_global_level",
    "ExponentialMovingAverage",
    "MovingAverage",
    "RunningStats",
    "SolvedCriterion",
    "SeedSequenceFactory",
    "derive_rng",
    "np_random",
    "load_arrays",
    "load_json",
    "save_arrays",
    "save_json",
    "TimeBreakdown",
    "Timer",
    "timed",
    "check_array",
    "check_in_range",
    "check_positive",
    "check_probability",
    "ensure_2d",
]
