"""Deterministic random-number management.

The paper's algorithms are sensitive to the random input weights ``alpha``
(ELM / OS-ELM never update them), to epsilon-greedy exploration and to the
random-update gate.  Every stochastic component in this library therefore
takes an explicit ``numpy.random.Generator`` so experiments are reproducible
bit-for-bit given a seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def spawn_seeds(root_seed: Optional[int], n: int) -> List[int]:
    """Derive ``n`` independent integer seeds from one root seed.

    Built on :class:`numpy.random.SeedSequence.spawn`, so the derived seeds
    are reproducible (same root, same ``n`` prefix -> same seeds), pairwise
    non-overlapping in the underlying bit-generator streams, and stable
    across processes.  This is the primitive behind parallel sweeps: every
    (design, env, trial) worker receives its own seed derived from the
    sweep's root seed instead of ad-hoc arithmetic like ``root + 1000*trial``.

    Parameters
    ----------
    root_seed:
        Root entropy.  ``None`` draws fresh OS entropy (the returned seeds
        are then non-deterministic but still pairwise independent).
    n:
        How many child seeds to derive.

    Returns
    -------
    A list of ``n`` non-negative Python ints, each below ``2**63``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if root_seed is not None and root_seed < 0:
        raise ValueError(f"root_seed must be non-negative, got {root_seed}")
    root = np.random.SeedSequence(root_seed)
    return [int(child.generate_state(1, np.uint64)[0]) & (2**63 - 1)
            for child in root.spawn(n)]


def stable_hash(key: str) -> int:
    """32-bit FNV-1a hash of a string, independent of ``PYTHONHASHSEED``.

    Python's built-in ``hash`` of a string is randomized per process, so it
    must never feed a seed derivation (the same experiment would train on
    different trajectories run-to-run).  Every string-keyed seed in this
    library goes through this function instead.
    """
    acc = 0x811C9DC5
    for byte in key.encode("utf-8"):
        acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
    return acc


def stable_digest(text: str, *, length: int = 16) -> str:
    """Hex digest of a string, stable across processes and Python versions.

    The wide (SHA-256-based) companion of :func:`stable_hash`: where
    ``stable_hash`` folds a string into 32 bits for seed arithmetic, this
    returns a ``length``-character hex string suitable for content-addressing
    artifacts on disk (the experiment store keys every trial and spec by it).
    """
    if length <= 0 or length > 64:
        raise ValueError(f"length must be in [1, 64], got {length}")
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


def np_random(seed: SeedLike = None) -> Tuple[np.random.Generator, int]:
    """Create a :class:`numpy.random.Generator` from a flexible seed spec.

    Parameters
    ----------
    seed:
        ``None`` (entropy from the OS), an integer, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    (generator, seed_used):
        The generator plus the integer actually used to seed it (useful for
        logging / experiment records).  When an existing generator is passed
        the returned seed is ``-1`` because its entropy is not recoverable.
    """
    if isinstance(seed, np.random.Generator):
        return seed, -1
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy if isinstance(seed.entropy, int) else -1
        return np.random.default_rng(seed), int(entropy)
    if seed is None:
        seed_seq = np.random.SeedSequence()
        entropy = seed_seq.entropy
        used = int(entropy) % (2**63) if isinstance(entropy, int) else 0
        return np.random.default_rng(seed_seq), used
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be None, int, SeedSequence or Generator, got {type(seed)!r}")
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return np.random.default_rng(int(seed)), int(seed)


def derive_rng(rng: np.random.Generator, *keys: Union[int, str]) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a key path.

    Used to give each component (alpha initialisation, exploration, random
    update, environment dynamics) its own stream so that changing one
    component's consumption pattern does not perturb the others.
    """
    material = []
    for key in keys:
        if isinstance(key, str):
            material.extend(key.encode("utf-8"))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    spawn_key = rng.integers(0, 2**32 - 1, size=4, dtype=np.uint32).tolist()
    seq = np.random.SeedSequence(entropy=spawn_key, spawn_key=tuple(material) or (0,))
    return np.random.default_rng(seq)


class SeedSequenceFactory:
    """Spawn reproducible per-component / per-trial generators from one root seed.

    Example
    -------
    >>> factory = SeedSequenceFactory(1234)
    >>> env_rng = factory.generator("env", trial=0)
    >>> agent_rng = factory.generator("agent", trial=0)
    """

    def __init__(self, root_seed: Optional[int] = None) -> None:
        if root_seed is not None and root_seed < 0:
            raise ValueError("root_seed must be non-negative")
        self._root = np.random.SeedSequence(root_seed)
        self.root_seed = root_seed

    def _key_to_ints(self, *keys: Union[int, str]) -> Tuple[int, ...]:
        out = []
        for key in keys:
            if isinstance(key, str):
                out.append(stable_hash(key))
            else:
                out.append(int(key) & 0xFFFFFFFF)
        return tuple(out) if out else (0,)

    def sequence(self, *keys: Union[int, str], trial: int = 0) -> np.random.SeedSequence:
        """Return a child ``SeedSequence`` for a component + trial index."""
        spawn_key = self._key_to_ints(*keys) + (int(trial),)
        return np.random.SeedSequence(entropy=self._root.entropy, spawn_key=spawn_key)

    def generator(self, *keys: Union[int, str], trial: int = 0) -> np.random.Generator:
        """Return a generator seeded by :meth:`sequence`."""
        return np.random.default_rng(self.sequence(*keys, trial=trial))

    def trial_generators(self, component: str, n_trials: int) -> Iterator[np.random.Generator]:
        """Yield one independent generator per trial for a named component."""
        if n_trials < 0:
            raise ValueError("n_trials must be non-negative")
        for trial in range(n_trials):
            yield self.generator(component, trial=trial)
