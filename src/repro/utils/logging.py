"""Minimal structured logging.

The library avoids the stdlib ``logging`` global configuration so that it can
be embedded in experiment harnesses and benchmark runs without fighting over
handlers.  Loggers write to a stream (stderr by default) in one of two
formats:

``kv`` (default)
    the compact human format ``[level elapsed] name: message key=value``.
``json``
    one JSON document per line — ``{"ts": ..., "elapsed": ..., "level": ...,
    "logger": ..., "msg": ..., <fields>}`` — for fleet runs whose logs are
    collected and parsed by machines.  Select it with
    :func:`set_global_format` or ``REPRO_LOG_FORMAT=json`` in the
    environment (inherited by spawned sweep workers).

All loggers share one monotonic epoch (module import time), so ``elapsed``
values from loggers created at different points in a run land on the same
timeline; ``ts`` is the Unix wall-clock time of the record.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, Optional, TextIO

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}
_GLOBAL_LEVEL = "info"
_FORMATS = ("kv", "json")
_GLOBAL_FORMAT = (os.environ.get("REPRO_LOG_FORMAT", "kv").strip().lower()
                  or "kv")
if _GLOBAL_FORMAT not in _FORMATS:
    _GLOBAL_FORMAT = "kv"
_REGISTRY: Dict[str, "Logger"] = {}

#: Shared monotonic epoch: every logger's ``elapsed`` counts from the moment
#: this module was imported, not from each logger's construction, so records
#: from loggers created at different times correlate on one timeline.
_EPOCH = time.perf_counter()


def set_global_level(level: str) -> None:
    """Set the default level applied to loggers that have no explicit level."""
    global _GLOBAL_LEVEL
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {sorted(_LEVELS)}")
    _GLOBAL_LEVEL = level


def set_global_format(fmt: str) -> None:
    """Select the output format: ``"kv"`` (human) or ``"json"`` (per-line)."""
    global _GLOBAL_FORMAT
    if fmt not in _FORMATS:
        raise ValueError(f"unknown log format {fmt!r}; choose from {_FORMATS}")
    _GLOBAL_FORMAT = fmt


def get_global_format() -> str:
    return _GLOBAL_FORMAT


class Logger:
    """A tiny named logger with key=value or JSON structured output."""

    def __init__(self, name: str, level: Optional[str] = None,
                 stream: Optional[TextIO] = None) -> None:
        self.name = name
        self._level = level
        self._stream = stream

    @property
    def level(self) -> str:
        return self._level if self._level is not None else _GLOBAL_LEVEL

    @level.setter
    def level(self, value: str) -> None:
        if value not in _LEVELS:
            raise ValueError(f"unknown log level {value!r}")
        self._level = value

    def _emit(self, level: str, message: str, fields: Dict[str, Any]) -> None:
        if _LEVELS[level] < _LEVELS[self.level]:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        elapsed = time.perf_counter() - _EPOCH
        if _GLOBAL_FORMAT == "json":
            record: Dict[str, Any] = {
                "ts": round(time.time(), 6),
                "elapsed": round(elapsed, 6),
                "level": level,
                "logger": self.name,
                "msg": message,
            }
            for key, value in fields.items():
                record[key] = value if _json_safe(value) else str(value)
            stream.write(json.dumps(record) + "\n")
        else:
            suffix = ""
            if fields:
                suffix = " " + " ".join(f"{k}={_format_value(v)}"
                                        for k, v in fields.items())
            stream.write(
                f"[{level:>7s} {elapsed:9.3f}s] {self.name}: {message}{suffix}\n")

    def debug(self, message: str, **fields: Any) -> None:
        self._emit("debug", message, fields)

    def info(self, message: str, **fields: Any) -> None:
        self._emit("info", message, fields)

    def warning(self, message: str, **fields: Any) -> None:
        self._emit("warning", message, fields)

    def error(self, message: str, **fields: Any) -> None:
        self._emit("error", message, fields)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _json_safe(value: Any) -> bool:
    if isinstance(value, (str, int, float, bool)) or value is None:
        # NaN/Inf would serialize as non-JSON tokens; stringify those too.
        return not (isinstance(value, float)
                    and (value != value or value in (float("inf"),
                                                     float("-inf"))))
    return False


def get_logger(name: str) -> Logger:
    """Return (and cache) the logger registered under ``name``."""
    if name not in _REGISTRY:
        _REGISTRY[name] = Logger(name)
    return _REGISTRY[name]
