"""Minimal structured logging.

The library avoids the stdlib ``logging`` global configuration so that it can
be embedded in experiment harnesses and benchmark runs without fighting over
handlers.  Loggers write to a stream (stderr by default) with a compact
``[level] name: message key=value`` format.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}
_GLOBAL_LEVEL = "info"
_REGISTRY: Dict[str, "Logger"] = {}


def set_global_level(level: str) -> None:
    """Set the default level applied to loggers that have no explicit level."""
    global _GLOBAL_LEVEL
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {sorted(_LEVELS)}")
    _GLOBAL_LEVEL = level


class Logger:
    """A tiny named logger with key=value structured suffixes."""

    def __init__(self, name: str, level: Optional[str] = None,
                 stream: Optional[TextIO] = None) -> None:
        self.name = name
        self._level = level
        self._stream = stream
        self._start = time.perf_counter()

    @property
    def level(self) -> str:
        return self._level if self._level is not None else _GLOBAL_LEVEL

    @level.setter
    def level(self, value: str) -> None:
        if value not in _LEVELS:
            raise ValueError(f"unknown log level {value!r}")
        self._level = value

    def _emit(self, level: str, message: str, fields: Dict[str, Any]) -> None:
        if _LEVELS[level] < _LEVELS[self.level]:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        elapsed = time.perf_counter() - self._start
        suffix = ""
        if fields:
            suffix = " " + " ".join(f"{k}={_format_value(v)}" for k, v in fields.items())
        stream.write(f"[{level:>7s} {elapsed:9.3f}s] {self.name}: {message}{suffix}\n")

    def debug(self, message: str, **fields: Any) -> None:
        self._emit("debug", message, fields)

    def info(self, message: str, **fields: Any) -> None:
        self._emit("info", message, fields)

    def warning(self, message: str, **fields: Any) -> None:
        self._emit("warning", message, fields)

    def error(self, message: str, **fields: Any) -> None:
        self._emit("error", message, fields)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def get_logger(name: str) -> Logger:
    """Return (and cache) the logger registered under ``name``."""
    if name not in _REGISTRY:
        _REGISTRY[name] = Logger(name)
    return _REGISTRY[name]
