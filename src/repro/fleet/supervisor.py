"""The actuation half of the elastic fleet: own local worker processes.

:class:`WorkerSupervisor` spawns ``repro worker`` loops as local
subprocesses (the same spawn-context mechanics as
:func:`repro.distributed.coordinator.spawn_local_workers`) and retires
them.  Retirement is layered, gentlest first:

1. the autoscaler asks the *broker* to ``DRAIN`` the worker (see
   :mod:`repro.fleet.control`) — the worker finishes its lease batch,
   delivers every result, and exits on its own;
2. :meth:`WorkerSupervisor.signal` sends SIGTERM, which the 1.7+ worker's
   signal handler turns into the same finish-then-exit drain from the
   process side (also the path for workers on brokers without DRAIN);
3. :meth:`WorkerSupervisor.stop_all` escalates to ``kill()`` only for
   processes that ignored both within the timeout.

The supervisor never decides anything — policies do — and it only ever
touches processes it spawned, so external ``repro worker --connect``
fleets sharing the broker are invisible to it.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.fleet.supervisor")


class WorkerSupervisor:
    """Spawn, track, signal and reap local worker processes for one broker.

    Parameters
    ----------
    host, port:
        The broker address handed to every spawned worker.
    heartbeat_interval:
        Worker-side keep-alive cadence (see
        :class:`~repro.distributed.worker.WorkerOptions`).
    context:
        Multiprocessing start method; ``spawn`` for the same
        fork-with-threads reasons as ``spawn_local_workers``.
    id_prefix:
        Worker ids are ``{id_prefix}-{serial}``; the serial never repeats,
        so a retired id is never reused and broker-side drain accounting
        stays unambiguous.
    """

    def __init__(self, host: str, port: int, *,
                 heartbeat_interval: float = 2.0, context: str = "spawn",
                 id_prefix: str = "fleet") -> None:
        self.host = host
        self.port = int(port)
        self.heartbeat_interval = float(heartbeat_interval)
        self.id_prefix = id_prefix
        self._ctx = mp.get_context(context)
        self._serial = 0
        self._processes: Dict[str, mp.process.BaseProcess] = {}
        self._spawned_at: Dict[str, float] = {}

    # ------------------------------------------------------------------ spawn
    def scale_up(self, count: int) -> List[str]:
        """Start ``count`` worker processes; returns their worker ids."""
        from repro.distributed.coordinator import _local_worker_main

        spawned: List[str] = []
        for _ in range(max(0, int(count))):
            worker_id = f"{self.id_prefix}-{self._serial}"
            self._serial += 1
            process = self._ctx.Process(
                target=_local_worker_main,
                args=(self.host, self.port, worker_id,
                      self.heartbeat_interval),
                daemon=True, name=f"repro-{worker_id}")
            process.start()
            self._processes[worker_id] = process
            self._spawned_at[worker_id] = time.monotonic()
            spawned.append(worker_id)
        if spawned:
            _LOGGER.info("workers spawned", workers=spawned,
                         fleet=len(self._processes))
        return spawned

    # ------------------------------------------------------------------ query
    def owns(self, worker_id: str) -> bool:
        return worker_id in self._processes

    def owned_ids(self) -> List[str]:
        """Every tracked (spawned, not yet reaped) worker id."""
        return sorted(self._processes)

    def alive_ids(self) -> List[str]:
        return sorted(worker_id for worker_id, process
                      in self._processes.items() if process.is_alive())

    def alive_count(self) -> int:
        return len(self.alive_ids())

    # ------------------------------------------------------------------ retire
    def signal(self, worker_ids: Iterable[str]) -> List[str]:
        """SIGTERM the given owned workers (graceful drain on 1.7+ loops)."""
        signalled: List[str] = []
        for worker_id in worker_ids:
            process = self._processes.get(worker_id)
            if process is not None and process.is_alive():
                process.terminate()
                signalled.append(worker_id)
        return signalled

    def reap(self) -> List[Tuple[str, Optional[int], float]]:
        """Collect exited workers; ``(worker_id, exitcode, lifetime_s)`` each.

        Call every poll: it joins finished processes (no zombies) and its
        return value is the autoscaler's source for worker-lifetime
        metrics and ``worker_exit`` events.
        """
        reaped: List[Tuple[str, Optional[int], float]] = []
        for worker_id in list(self._processes):
            process = self._processes[worker_id]
            if process.is_alive():
                continue
            process.join(timeout=0.1)
            lifetime = time.monotonic() - self._spawned_at.pop(worker_id)
            del self._processes[worker_id]
            reaped.append((worker_id, process.exitcode, lifetime))
            _LOGGER.info("worker reaped", worker=worker_id,
                         exitcode=process.exitcode,
                         lifetime=f"{lifetime:.1f}s")
        return reaped

    def stop_all(self, *, timeout: float = 5.0, natural_grace: float = 2.0
                 ) -> List[Tuple[str, Optional[int], float]]:
        """Retire every remaining worker, gentlest first.

        Workers already on their way out — the broker replied ``SHUTDOWN``
        or ``DRAIN``, or they are still in spawn-context interpreter
        start-up and about to discover the sweep is over — get
        ``natural_grace`` seconds to exit on their own before any signal
        is sent: a SIGTERM racing start-up or teardown kills the process
        un-gracefully (exitcode ``-15``) even though no work is lost.
        Stragglers are then SIGTERMed (which the 1.7+ loop turns into a
        graceful drain) and killed only if they ignore that too.
        """
        grace_deadline = time.monotonic() + max(0.0, natural_grace)
        while self.alive_ids() and time.monotonic() < grace_deadline:
            time.sleep(0.05)
        self.signal(self.alive_ids())
        deadline = time.monotonic() + max(0.0, timeout)
        for process in self._processes.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for worker_id, process in self._processes.items():
            if process.is_alive():   # pragma: no cover - stuck worker
                _LOGGER.warning("worker ignored SIGTERM; killing",
                                worker=worker_id)
                process.kill()
                process.join(timeout=1.0)
        return self.reap()


__all__ = ["WorkerSupervisor"]
