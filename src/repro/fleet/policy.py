"""Scaling policies: the pure decision half of the elastic fleet.

A policy never touches sockets or processes.  Each autoscaler tick it is
handed a :class:`FleetObservation` (distilled from the broker's ``STATS``
snapshot) and answers with a :class:`ScalingDecision` — how many workers to
spawn and/or which worker ids to retire.  Keeping the decision logic pure
makes it unit-testable with a fake clock and swappable: anything with a
``decide(observation)`` method (see :class:`ScalingPolicy`) plugs into
:class:`~repro.fleet.autoscaler.FleetAutoscaler`, including a learned
controller trained against :mod:`repro.envs`' ``Autoscale-v0`` simulator,
which models exactly this queue.

The shipped :class:`ThresholdPolicy` is deliberately boring and fully
deterministic given the observation stream:

* **Scale up** when the backlog per live worker (``queued / alive``)
  reaches ``high_water`` — by ``scale_up_step`` workers, capped at
  ``max_workers``.
* **Scale down** when the backlog has fallen to ``low_water`` or less *and*
  a worker has been continuously idle (zero held leases) for
  ``idle_grace_seconds`` — the idle worker is retired, never a busy one,
  floored at ``min_workers``.
* **Hysteresis**: the gap between ``high_water`` and ``low_water`` plus a
  shared ``cooldown_seconds`` between scaling actions in either direction
  keeps the fleet from flapping on a bursty queue.
* ``min_workers`` is a safety floor topped up immediately (no cooldown):
  a fleet that crashed below the floor is refilled on the next tick.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

try:  # Protocol is 3.8+; keep the import defensive like the rest of repro.
    from typing import Protocol
except ImportError:  # pragma: no cover - ancient interpreters
    Protocol = object  # type: ignore[assignment]


@dataclass(frozen=True)
class WorkerView:
    """One worker row of the STATS snapshot, as a policy sees it."""

    worker_id: str
    connected: bool
    draining: bool
    leases: int
    completed: int


@dataclass(frozen=True)
class FleetObservation:
    """One tick's view of the sweep: queue depth plus per-worker state."""

    queued: int
    leased: int
    done: int
    total: int
    workers: Tuple[WorkerView, ...]

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "FleetObservation":
        """Distill a broker ``STATS`` snapshot into an observation."""
        tasks = snapshot.get("tasks", {}) if isinstance(snapshot, dict) else {}
        rows = snapshot.get("workers", {}) if isinstance(snapshot, dict) else {}
        workers = tuple(
            WorkerView(worker_id=str(worker_id),
                       connected=bool(info.get("connected")),
                       draining=bool(info.get("draining")),
                       leases=int(info.get("leases", 0)),
                       completed=int(info.get("completed", 0)))
            for worker_id, info in sorted(rows.items()))
        return cls(queued=int(tasks.get("queued", 0)),
                   leased=int(tasks.get("leased", 0)),
                   done=int(tasks.get("done", 0)),
                   total=int(tasks.get("total", 0)),
                   workers=workers)

    @property
    def alive(self) -> Tuple[WorkerView, ...]:
        """Workers still eligible for leases (connected, not draining)."""
        return tuple(w for w in self.workers if w.connected and not w.draining)

    @property
    def remaining(self) -> int:
        return self.total - self.done


@dataclass(frozen=True)
class ScalingDecision:
    """What to do this tick.  The default is *nothing* — most ticks are."""

    spawn: int = 0                      #: workers to add
    retire: Tuple[str, ...] = ()        #: worker ids to drain gracefully
    reason: str = ""                    #: human-readable rationale (logged)

    def __bool__(self) -> bool:
        return bool(self.spawn or self.retire)


class ScalingPolicy(Protocol):
    """Anything that can turn observations into scaling decisions."""

    def decide(self, observation: FleetObservation) -> ScalingDecision:
        """One control step; called once per autoscaler poll."""
        ...  # pragma: no cover - protocol stub


class ThresholdPolicy:
    """Deterministic threshold controller with hysteresis and cooldown.

    See the module docstring for the control law.  ``clock`` is injectable
    so tests drive idle-grace and cooldown with a fake monotonic clock.
    """

    def __init__(self, *, min_workers: int = 1, max_workers: int = 4,
                 high_water: float = 2.0, low_water: float = 0.5,
                 idle_grace_seconds: float = 2.0,
                 cooldown_seconds: float = 3.0, scale_up_step: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if min_workers < 0:
            raise ValueError("min_workers must be >= 0")
        if max_workers < max(1, min_workers):
            raise ValueError("max_workers must be >= max(1, min_workers)")
        if low_water > high_water:
            raise ValueError("low_water must not exceed high_water "
                             "(the gap is the hysteresis band)")
        if scale_up_step < 1:
            raise ValueError("scale_up_step must be >= 1")
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.high_water = float(high_water)
        self.low_water = float(low_water)
        self.idle_grace_seconds = float(idle_grace_seconds)
        self.cooldown_seconds = float(cooldown_seconds)
        self.scale_up_step = int(scale_up_step)
        self._clock = clock
        #: worker_id -> monotonic time it was first seen continuously idle.
        self._idle_since: Dict[str, float] = {}
        self._last_action = -float("inf")

    def decide(self, observation: FleetObservation) -> ScalingDecision:
        now = self._clock()
        alive = observation.alive
        n_alive = len(alive)

        # Idle bookkeeping: a worker is idle while it holds zero leases;
        # any lease resets its streak.  Ids that vanished are forgotten.
        idle_now = {w.worker_id for w in alive if w.leases == 0}
        for worker_id in list(self._idle_since):
            if worker_id not in idle_now:
                del self._idle_since[worker_id]
        for worker_id in idle_now:
            self._idle_since.setdefault(worker_id, now)

        if observation.remaining == 0 and observation.total > 0:
            # Sweep complete; the broker SHUTDOWNs workers itself and the
            # supervisor reaps them — scaling decisions are moot.
            return ScalingDecision()

        if n_alive < self.min_workers:
            return ScalingDecision(
                spawn=self.min_workers - n_alive,
                reason=f"fleet below min_workers={self.min_workers}")

        cooled = now - self._last_action >= self.cooldown_seconds
        backlog = observation.queued / max(1, n_alive)

        if (observation.queued > 0 and n_alive < self.max_workers
                and backlog >= self.high_water and cooled):
            spawn = min(self.scale_up_step, self.max_workers - n_alive)
            self._last_action = now
            return ScalingDecision(
                spawn=spawn,
                reason=(f"backlog/worker {backlog:.2f} >= "
                        f"high_water {self.high_water:g}"))

        if n_alive > self.min_workers and backlog <= self.low_water and cooled:
            eligible: List[str] = sorted(
                (worker_id for worker_id, since in self._idle_since.items()
                 if now - since >= self.idle_grace_seconds),
                key=lambda worker_id: self._idle_since[worker_id])
            retire = tuple(eligible[:n_alive - self.min_workers])
            if retire:
                self._last_action = now
                for worker_id in retire:   # stop re-picking them next tick
                    self._idle_since.pop(worker_id, None)
                return ScalingDecision(
                    retire=retire,
                    reason=(f"idle >= {self.idle_grace_seconds:g}s with "
                            f"backlog/worker {backlog:.2f} <= "
                            f"low_water {self.low_water:g}"))

        return ScalingDecision()


__all__ = ["FleetObservation", "ScalingDecision", "ScalingPolicy",
           "ThresholdPolicy", "WorkerView"]
