"""``repro.fleet`` — elastic worker fleets with graceful drain.

The distributed backend (PR 3+) runs a fixed ``--workers N`` fleet chosen
at launch; this package closes the loop from the broker's STATS
observability channel (PR 6) to actuation, the "Elastic fleet" layer of
the ROADMAP's production-scale north star — and the real-runtime twin of
the ``Autoscale-v0`` control problem simulated in :mod:`repro.envs`.

Three parts, strictly layered:

* :mod:`~repro.fleet.policy` — pure decision logic.
  :class:`FleetObservation` in, :class:`ScalingDecision` out; the shipped
  :class:`ThresholdPolicy` is a deterministic threshold controller with
  hysteresis, cooldown and min/max bounds.
* :mod:`~repro.fleet.supervisor` — process actuation.
  :class:`WorkerSupervisor` spawns local ``repro worker`` subprocesses
  and retires them (broker ``DRAIN`` first, SIGTERM second, ``kill`` only
  for stragglers).
* :mod:`~repro.fleet.autoscaler` — the control loop.
  :class:`FleetAutoscaler` polls STATS, decides, actuates; every action
  lands in a :class:`FleetReport` and as ``fleet.*`` telemetry.

The load-bearing guarantee is *graceful drain*: a retired worker finishes
its in-flight lease batch, delivers every result, and exits — zero
requeued leases (``drain_requeued_tasks == 0`` on the broker), so a sweep
run under any scaling schedule produces byte-identical output to the
serial backend.  Entry points: ``run_distributed_sweep(autoscale=...)``,
``repro run --backend distributed --autoscale`` and
``repro fleet autoscale --connect HOST:PORT``.
"""

from repro.fleet.autoscaler import (AutoscaleConfig, FleetAutoscaler,
                                    FleetEvent, FleetReport)
from repro.fleet.control import FleetControlError, request_drain
from repro.fleet.policy import (FleetObservation, ScalingDecision,
                                ScalingPolicy, ThresholdPolicy, WorkerView)
from repro.fleet.supervisor import WorkerSupervisor

__all__ = [
    "AutoscaleConfig",
    "FleetAutoscaler",
    "FleetControlError",
    "FleetEvent",
    "FleetObservation",
    "FleetReport",
    "ScalingDecision",
    "ScalingPolicy",
    "ThresholdPolicy",
    "WorkerSupervisor",
    "WorkerView",
    "request_drain",
]
