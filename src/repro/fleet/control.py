"""Client side of the broker ``DRAIN`` control channel.

The autoscaler (and anything else that wants to retire workers — an ops
script, a future multi-broker shard manager) asks the broker to drain
workers through a short-lived observer connection, exactly like
:func:`repro.telemetry.fleet.fetch_fleet_stats` queries stats: connect,
``HELLO`` with an :data:`~repro.distributed.protocol.OBSERVER_PREFIX` id
(so the connection never enters worker accounting), confirm the broker's
``WELCOME`` advertises the ``drain`` capability, send ``(DRAIN, [ids])``
and read back the broker's disposition report::

    {"marked": [...], "already_draining": [...],
     "unknown": [...], "gone": [...]}

Short-lived on purpose: a persistent control connection would keep the
broker's ``active_connections`` above zero forever and defeat the
coordinator's dead-fleet detection.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Sequence

from repro.distributed import protocol
from repro.telemetry.fleet import FleetStatusError, observer_id
from repro.utils.retry import RetryPolicy


class FleetControlError(FleetStatusError):
    """The broker could not be asked to drain (unreachable or pre-1.7)."""


def request_drain(host: str, port: int, worker_ids: Sequence[str], *,
                  timeout: float = 5.0,
                  retry: Optional[RetryPolicy] = None) -> Dict[str, List[str]]:
    """Ask the broker at ``host:port`` to gracefully drain ``worker_ids``.

    Returns the broker's disposition dict (see module docstring).  Raises
    :class:`FleetControlError` when the broker is unreachable or predates
    the negotiated ``DRAIN`` capability (repro < 1.7) — the caller should
    fall back to SIGTERM-ing the worker processes it owns, which on 1.7+
    workers triggers the same finish-then-exit drain from the other side.

    With ``retry`` set, transient failures are retried on the policy's
    schedule (marking an already-draining worker twice is answered, not
    compounded — the broker reports ``already_draining`` — so a retried
    drain request is idempotent).  Capability errors raise immediately.
    """
    ids = [str(worker_id) for worker_id in worker_ids]
    if not ids:
        return {"marked": [], "already_draining": [], "unknown": [],
                "gone": []}
    if retry is not None:
        clock = retry.clock()
        while True:
            try:
                return request_drain(host, port, ids, timeout=timeout)
            except FleetControlError as error:
                if not error.transient:
                    raise
                clock.failed(error)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as error:
        raise FleetControlError(
            f"cannot reach broker at {host}:{port}: {error}",
            transient=True) from error
    with sock:
        try:
            protocol.send_message(sock, protocol.HELLO, observer_id())
            kind, info = protocol.recv_message(sock)
            if kind != protocol.WELCOME:
                raise protocol.ProtocolError(
                    f"expected WELCOME, got {kind!r}")
            if not (isinstance(info, dict) and info.get("drain")):
                raise FleetControlError(
                    f"broker at {host}:{port} does not advertise the DRAIN "
                    "capability (repro < 1.7); retire its workers by "
                    "signal instead")
            protocol.send_message(sock, protocol.DRAIN, ids)
            kind, report = protocol.recv_message(sock)
            if kind != protocol.DRAIN:
                raise protocol.ProtocolError(f"expected DRAIN, got {kind!r}")
        except FleetControlError:
            raise
        except (ConnectionError, OSError) as error:
            raise FleetControlError(
                f"broker at {host}:{port} dropped the drain request: "
                f"{error}", transient=True) from error
    if not isinstance(report, dict):
        raise FleetControlError(
            f"malformed DRAIN reply: {type(report).__name__}")
    return {key: list(report.get(key, []))
            for key in ("marked", "already_draining", "unknown", "gone")}


__all__ = ["FleetControlError", "request_drain"]
