"""The control loop that closes observability into actuation.

:class:`FleetAutoscaler` is the subsystem's spine: every
``poll_interval`` seconds it

1. fetches a ``STATS`` snapshot from the broker over the same observer
   channel as ``repro fleet status`` (nothing in-process — the loop works
   against any reachable 1.7+ broker, local or remote);
2. reaps exited worker processes and records their lifetimes;
3. feeds the distilled :class:`~repro.fleet.policy.FleetObservation` to
   its :class:`~repro.fleet.policy.ScalingPolicy`;
4. actuates the decision — spawns through its
   :class:`~repro.fleet.supervisor.WorkerSupervisor`, retires through the
   broker's negotiated ``DRAIN`` channel (falling back to SIGTERM for
   workers the broker reports it cannot drain).

Every action is recorded twice: as ``fleet.*`` telemetry (counters,
gauges, histograms — live when ``REPRO_TELEMETRY`` is on) and as plain
:class:`FleetEvent` rows in a :class:`FleetReport`, which works with
telemetry disabled so the CLI summary line and the CI assertions never
depend on the telemetry switch.

Determinism note: the autoscaler changes *when and where* tasks run,
never *what* runs — workers execute the unchanged serial trainer path —
so a sweep's results are byte-identical under any scaling schedule.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.fleet.control import FleetControlError, request_drain
from repro.fleet.policy import (FleetObservation, ScalingDecision,
                                ScalingPolicy, ThresholdPolicy)
from repro.fleet.supervisor import WorkerSupervisor
from repro.telemetry.fleet import FleetStatusError, fetch_fleet_stats
from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.fleet.autoscaler")


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs of one autoscaled fleet (CLI flags map onto these 1:1)."""

    min_workers: int = 1          #: safety floor, topped up without cooldown
    max_workers: int = 4          #: hard ceiling on spawned workers
    poll_interval: float = 0.5    #: seconds between control ticks
    high_water: float = 2.0       #: queued/alive ratio that triggers scale-up
    low_water: float = 0.5        #: queued/alive ratio allowing scale-down
    idle_grace_seconds: float = 2.0   #: continuous idle before retirement
    cooldown_seconds: float = 3.0     #: min seconds between scaling actions
    scale_up_step: int = 1        #: workers added per scale-up
    heartbeat_interval: float = 2.0   #: handed to spawned workers

    def build_policy(self) -> ThresholdPolicy:
        return ThresholdPolicy(
            min_workers=self.min_workers, max_workers=self.max_workers,
            high_water=self.high_water, low_water=self.low_water,
            idle_grace_seconds=self.idle_grace_seconds,
            cooldown_seconds=self.cooldown_seconds,
            scale_up_step=self.scale_up_step)


@dataclass(frozen=True)
class FleetEvent:
    """One thing the autoscaler did (or observed), timestamped."""

    elapsed: float                    #: seconds since the autoscaler started
    kind: str                         #: scale_up | drain_requested | worker_exit
    workers: Tuple[str, ...] = ()
    reason: str = ""


@dataclass
class FleetReport:
    """What an autoscaled run did, independent of the telemetry switch."""

    events: List[FleetEvent] = field(default_factory=list)
    scale_ups: int = 0
    workers_spawned: int = 0
    drains_requested: int = 0
    peak_workers: int = 0
    worker_lifetimes: List[float] = field(default_factory=list)
    #: Broker-side truth, filled from the final STATS snapshot (or directly
    #: by the coordinator, which owns the broker): ``drains_completed`` is
    #: the graceful-drain count, ``drain_requeued_tasks`` the lost-lease
    #: count the elastic-fleet contract pins to zero.
    broker_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def graceful_drains(self) -> int:
        return int(self.broker_counters.get("drains_completed", 0))

    @property
    def drain_requeues(self) -> int:
        return int(self.broker_counters.get("drain_requeued_tasks", 0))

    def record(self, event: FleetEvent) -> None:
        self.events.append(event)

    def summary(self) -> str:
        """One grep-friendly line (printed by the CLI, asserted by CI)."""
        lifetimes = (f"{min(self.worker_lifetimes):.1f}-"
                     f"{max(self.worker_lifetimes):.1f}s"
                     if self.worker_lifetimes else "n/a")
        return ("fleet: scale_ups={ups} spawned={spawned} peak={peak} "
                "drains_requested={req} graceful_drains={ok} "
                "drain_requeues={bad} worker_lifetimes={life}").format(
                    ups=self.scale_ups, spawned=self.workers_spawned,
                    peak=self.peak_workers, req=self.drains_requested,
                    ok=self.graceful_drains, bad=self.drain_requeues,
                    life=lifetimes)


class FleetAutoscaler:
    """Poll the broker, decide, actuate; see the module docstring.

    Parameters
    ----------
    host, port:
        Broker address (bound address for in-process brokers).
    config:
        Thresholds and cadence; ignored for the policy when an explicit
        ``policy`` is given (spawn/retire mechanics still use it).
    policy:
        Optional :class:`~repro.fleet.policy.ScalingPolicy` override.
    supervisor:
        Optional :class:`~repro.fleet.supervisor.WorkerSupervisor`
        override (tests inject doubles; the default owns real processes).
    """

    def __init__(self, host: str, port: int, *,
                 config: Optional[AutoscaleConfig] = None,
                 policy: Optional[ScalingPolicy] = None,
                 supervisor: Optional[WorkerSupervisor] = None) -> None:
        self.host = host
        self.port = int(port)
        self.config = config or AutoscaleConfig()
        self.policy = policy if policy is not None else self.config.build_policy()
        self.supervisor = supervisor if supervisor is not None else \
            WorkerSupervisor(host, self.port,
                             heartbeat_interval=self.config.heartbeat_interval)
        self.report = FleetReport()
        self.last_snapshot: Optional[Dict[str, object]] = None
        self._started_at: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "FleetAutoscaler":
        """Run the control loop in a daemon thread (first tick immediate)."""
        if self._thread is not None:
            raise RuntimeError("autoscaler already started")
        self._started_at = time.monotonic()
        self._thread = threading.Thread(target=self._loop,
                                        name="fleet-autoscaler", daemon=True)
        self._thread.start()
        return self

    def stop(self, *, retire_fleet: bool = True, timeout: float = 10.0) -> None:
        """Stop polling; optionally retire every remaining owned worker."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(1.0, timeout))
            self._thread = None
        if retire_fleet:
            alive = self.supervisor.alive_ids()
            if alive:
                # Mark the remaining fleet as draining so even shutdown
                # retirement rides the negotiated protocol (the broker
                # counts each clean exit in ``drains_completed``).  A gone
                # or pre-1.7 broker just means stop_all's signal path
                # takes over.
                try:
                    disposition = request_drain(self.host, self.port, alive)
                except (FleetControlError, OSError):
                    pass
                else:
                    marked = disposition.get("marked", [])
                    if marked:
                        self._record_drain_request(tuple(marked),
                                                   "fleet shutdown")
            for worker_id, exitcode, lifetime in \
                    self.supervisor.stop_all(timeout=timeout):
                self._record_exit(worker_id, exitcode, lifetime)
            try:
                # One final snapshot so the summary counts the shutdown
                # drains too; the broker is often already gone — fine,
                # the last mid-run snapshot stands in.
                self.last_snapshot = fetch_fleet_stats(self.host, self.port,
                                                       timeout=2.0)
            except (FleetStatusError, OSError):
                pass
        if self.last_snapshot is not None and not self.report.broker_counters:
            counters = self.last_snapshot.get("counters", {})
            if isinstance(counters, dict):
                self.report.broker_counters = {
                    key: int(counters.get(key, 0))
                    for key in ("drains_requested", "drains_completed",
                                "drain_requeued_tasks", "requeued_tasks")}

    def __enter__(self) -> "FleetAutoscaler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ control
    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll_once()
            except Exception:   # pragma: no cover - keep the loop alive
                _LOGGER.warning("autoscaler tick failed", exc_info=True)
                telemetry.count("fleet.tick_errors")
            self._stop.wait(self.config.poll_interval)

    def poll_once(self) -> Optional[ScalingDecision]:
        """One observe → decide → actuate tick; ``None`` if broker is gone.

        An unreachable broker is not an error: the sweep may simply have
        finished and torn the port down between ticks.  The loop keeps
        trying (the sweep's ``finally`` stops it) and tests can call this
        directly for deterministic single-step control.
        """
        for worker_id, exitcode, lifetime in self.supervisor.reap():
            self._record_exit(worker_id, exitcode, lifetime)
        try:
            snapshot = fetch_fleet_stats(self.host, self.port, timeout=5.0)
        except FleetStatusError:
            return None
        self.last_snapshot = snapshot
        observation = FleetObservation.from_snapshot(snapshot)
        telemetry.set_gauge("fleet.alive_workers", len(observation.alive))
        telemetry.set_gauge("fleet.queued_tasks", observation.queued)
        self.report.peak_workers = max(self.report.peak_workers,
                                       len(observation.alive))
        decision = self.policy.decide(observation)
        if decision.spawn:
            # A freshly spawned worker takes a beat (spawn-context
            # interpreter start-up) to register with the broker, during
            # which the policy still sees the old fleet and would keep
            # re-spawning.  Discount workers already launched but not yet
            # visible in the snapshot; the clamp keeps snapshot-alive +
            # pending within the policy's bounds.
            known = {w.worker_id for w in observation.workers}
            pending = sum(1 for worker_id in self.supervisor.alive_ids()
                          if worker_id not in known)
            spawn = max(0, decision.spawn - pending)
            if spawn:
                self._actuate_spawn(replace(decision, spawn=spawn))
        if decision.retire:
            self._actuate_retire(decision)
        return decision

    # ------------------------------------------------------------------ actuation
    def _actuate_spawn(self, decision: ScalingDecision) -> None:
        spawned = self.supervisor.scale_up(decision.spawn)
        if not spawned:
            return
        self.report.scale_ups += 1
        self.report.workers_spawned += len(spawned)
        self.report.record(FleetEvent(self._elapsed(), "scale_up",
                                      tuple(spawned), decision.reason))
        telemetry.count("fleet.scale_ups")
        telemetry.count("fleet.workers_spawned", len(spawned))
        _LOGGER.info("fleet scaled up", workers=spawned,
                     reason=decision.reason)

    def _actuate_retire(self, decision: ScalingDecision) -> None:
        try:
            disposition = request_drain(self.host, self.port, decision.retire)
        except FleetControlError as error:
            # Pre-1.7 broker (or it vanished mid-tick): retire our own
            # processes by signal — the 1.7+ worker loop drains on SIGTERM.
            _LOGGER.warning("broker drain unavailable; falling back to "
                            "SIGTERM", error=str(error))
            signalled = self.supervisor.signal(
                [w for w in decision.retire if self.supervisor.owns(w)])
            if signalled:
                self._record_drain_request(tuple(signalled),
                                           decision.reason + " (via SIGTERM)")
            return
        marked = disposition.get("marked", [])
        if marked:
            self._record_drain_request(tuple(marked), decision.reason)
        # Workers the broker cannot drain (never registered, already gone)
        # but whose processes we still own get the signal path instead.
        undrainable = [w for w in disposition.get("unknown", [])
                       + disposition.get("gone", []) if self.supervisor.owns(w)]
        signalled = self.supervisor.signal(undrainable)
        if signalled:
            self._record_drain_request(tuple(signalled),
                                       decision.reason + " (via SIGTERM)")

    # ------------------------------------------------------------------ recording
    def _elapsed(self) -> float:
        started = self._started_at if self._started_at is not None \
            else time.monotonic()
        return round(time.monotonic() - started, 3)

    def _record_drain_request(self, workers: Tuple[str, ...],
                              reason: str) -> None:
        self.report.drains_requested += len(workers)
        self.report.record(FleetEvent(self._elapsed(), "drain_requested",
                                      workers, reason))
        telemetry.count("fleet.drains_requested", len(workers))
        _LOGGER.info("fleet draining workers", workers=list(workers),
                     reason=reason)

    def _record_exit(self, worker_id: str, exitcode: Optional[int],
                     lifetime: float) -> None:
        self.report.worker_lifetimes.append(lifetime)
        self.report.record(FleetEvent(self._elapsed(), "worker_exit",
                                      (worker_id,),
                                      f"exitcode={exitcode}"))
        telemetry.observe("fleet.worker_lifetime_seconds", lifetime)


__all__ = ["AutoscaleConfig", "FleetAutoscaler", "FleetEvent", "FleetReport"]
