"""``python -m repro``: list, run and report experiments from the shell.

Subcommands
-----------
``repro list``
    The registered experiments with their grids and budgets.
``repro run <name|spec.json> [--ci] [--backend B] [--out DIR] [--csv PATH]``
    Execute an experiment (registered name at ``--ci``/paper scale, or a
    spec JSON file) with artifact-store caching: a second invocation with
    the same spec completes from cache.  ``--no-resume`` forces retraining.
    ``--checkpoint-every N`` (serial backend) additionally persists
    mid-trial training state so a killed run resumes *inside* a trial;
    ``--progress-every N`` streams per-trial progress to stderr;
    ``--lease-batch K`` batches distributed task leases;
    ``--journal PATH`` (distributed backend) write-ahead logs broker
    queue transitions so a killed broker restarted with the same flag
    resumes the sweep instead of rerunning it.
``repro report <name|spec.json> [--ci] [--out DIR] [--csv PATH] [--plot]``
    Re-render a finished run purely from cached artifacts (no training;
    errors if trials are missing).  ``--plot`` regenerates the Figure 4/5
    panels from the cached curves into ``--plot-dir`` (needs matplotlib;
    graceful no-op message without it).
``repro worker --connect HOST:PORT [--store DIR]``
    Join a distributed sweep as a worker: pull tasks from the broker that
    ``repro run --backend distributed --bind HOST:PORT`` published, train
    them through the serial code path, and stream results back.  A lost
    broker connection reconnects with capped exponential backoff
    (``--reconnect-attempts``/``--reconnect-base-delay``/
    ``--reconnect-max-delay``/``--reconnect-deadline``; ``--no-reconnect``
    restores the pre-1.8 exit-on-disconnect).  ``--fault-plan SPEC``
    injects deterministic connection faults for chaos testing.
``repro fleet status --connect HOST:PORT [--watch] [--json]``
    Query a live broker's ``STATS`` channel: tasks queued/leased/done,
    per-worker liveness, drain state and lease age, requeue/dedup/
    backpressure/drain counters.  ``--watch`` refreshes every
    ``--interval`` seconds; ``--json`` prints the raw snapshot for scripts.
    ``--retry-attempts N`` (shared with ``fleet autoscale``) rides out a
    broker that is briefly unreachable — e.g. mid-restart from its
    journal — instead of failing the first query.
``repro fleet autoscale --connect HOST:PORT [--min N] [--max N]``
    Attach an elastic fleet to a live broker: poll its STATS channel,
    spawn local workers when the queue backs up, and gracefully drain
    idle ones (the broker stops leasing to them; they finish in-flight
    work, deliver, and exit — no lost leases).  Runs until the broker
    goes away or Ctrl-C; exits printing the fleet summary line.
    ``repro run --backend distributed --autoscale`` embeds the same loop
    in a single command.
``repro serve <name|spec.json> [--ci] [--store DIR] [--bind HOST:PORT]``
    Host the spec's trained policies (written by ``repro run
    --save-policy``) as an online action service: ``ACT`` requests are
    micro-batched onto the vectorized greedy predict path
    (``--max-batch``/``--max-wait-us``), weights hot-swap via ``SWAP``
    frames from a live trainer, and a ``STATS`` frame reports request
    counters plus p50/p90/p99 latency.  A bad launch (occupied port,
    unreadable store, missing policy) exits 2 with one aggregated
    preflight error.

The summary table printed by ``run``/``report`` is identical to what the
legacy harnesses rendered, and ``--csv`` writes the same rows as CSV — the
CI workflow diffs those files across backends to guard backend equivalence.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.api.engine import BACKENDS, RunReport, run
from repro.api.registry import get_spec, list_experiments
from repro.api.spec import ExperimentSpec
from repro.experiments.reporting import format_table
from repro.utils.serialization import load_json


def _resolve_spec(name_or_path: str, scale: str) -> ExperimentSpec:
    """A registered name, or a path to a spec JSON written by ``to_json``."""
    path = Path(name_or_path)
    if name_or_path.endswith(".json") or path.is_file():
        return ExperimentSpec.from_json(load_json(path))
    return get_spec(name_or_path, scale=scale)


def _env_families(env_ids) -> str:
    """The env families a spec spans, from the env registry's metadata."""
    from repro.envs import spec as env_spec

    families = set()
    for env_id in env_ids:
        try:
            families.add(env_spec(env_id).family)
        except KeyError:
            families.add("?")
    return "+".join(sorted(families)) if families else "-"


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for entry in list_experiments():
        spec = entry.paper
        rows.append({
            "name": entry.name,
            "kind": spec.kind,
            "env_family": ("-" if spec.kind == "resource_table"
                           else _env_families(spec.env_ids)),
            "grid": (f"{len(spec.designs)} designs x {len(spec.hidden_sizes)} "
                     f"sizes = {spec.n_trials} trials"
                     if spec.kind != "resource_table"
                     else f"{len(spec.hidden_sizes)} sizes"),
            "paper_episodes": spec.budget.max_episodes,
            "ci_episodes": entry.ci.budget.max_episodes,
            "description": entry.description,
        })
    print(format_table(rows, title="Registered experiments (repro run <name>)"))
    return 0


def _finish(report: RunReport, args: argparse.Namespace) -> int:
    if not args.quiet:
        print(report.render())
        if report.spec.kind != "resource_table":
            cached = report.cached_count
            print(f"\n{len(report.trials)} trials "
                  f"({cached} from cache, {report.executed_count} executed; "
                  f"backends: {report.backend_counts()}) "
                  f"in {report.wall_time_seconds:.2f}s")
            if report.store_root is not None:
                print(f"artifacts: {report.store_root}")
    if report.fleet_report is not None:
        # Printed even under --quiet: this one line is what the CI
        # elastic-fleet job asserts scale-ups/graceful drains against.
        print(report.fleet_report.summary())
    if args.csv is not None:
        Path(args.csv).parent.mkdir(parents=True, exist_ok=True)
        Path(args.csv).write_text(report.summary_csv(), encoding="utf-8")
        if not args.quiet:
            print(f"summary csv: {args.csv}")
    if getattr(args, "plot", False):
        from repro.api.plotting import plot_report

        written = plot_report(report, args.plot_dir)
        if written is None:
            print("plotting skipped: matplotlib is not installed "
                  "(pip install matplotlib to enable --plot)")
        elif not args.quiet:
            for path in written:
                print(f"figure: {path}")
    return 0


def _store_root(args: argparse.Namespace) -> str:
    """CLI runs always cache; ``--out`` falls back to the store default
    (``$REPRO_ARTIFACTS`` when set, else ``./artifacts``)."""
    from repro.api.store import default_store_root

    return args.out if args.out is not None else str(default_store_root())


def _build_autoscale_config(args: argparse.Namespace):
    from repro.fleet import AutoscaleConfig

    return AutoscaleConfig(
        min_workers=args.autoscale_min, max_workers=args.autoscale_max,
        poll_interval=args.autoscale_interval,
        idle_grace_seconds=args.autoscale_idle_grace,
        high_water=args.autoscale_high_water,
        low_water=args.autoscale_low_water,
        cooldown_seconds=args.autoscale_cooldown)


def _autoscale_config(args: argparse.Namespace):
    """``--autoscale*`` flags -> AutoscaleConfig (or None when not asked)."""
    if not getattr(args, "autoscale", False):
        return None
    return _build_autoscale_config(args)


def _retry_policy(args: argparse.Namespace):
    """``--retry-*`` flags -> RetryPolicy (None when retries are off)."""
    if args.retry_attempts <= 1:
        return None
    from repro.utils.retry import RetryPolicy

    return RetryPolicy(max_attempts=args.retry_attempts,
                       base_delay=args.retry_base_delay,
                       deadline=args.retry_deadline)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.distributed.preflight import PreflightError

    spec = _resolve_spec(args.experiment, "ci" if args.ci else "paper")
    workers = args.workers if args.workers is not None else args.max_workers
    try:
        report = run(spec, backend=args.backend, out=_store_root(args),
                     resume=not args.no_resume, max_workers=workers,
                     bind=args.bind, checkpoint_every=args.checkpoint_every,
                     lease_batch=args.lease_batch,
                     progress_every=args.progress_every,
                     save_policy=args.save_policy,
                     autoscale=_autoscale_config(args),
                     journal=args.journal)
    except (PreflightError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return _finish(report, args)


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed import WorkerOptions, parse_address, run_worker
    from repro.utils.retry import RetryPolicy

    host, port = parse_address(args.connect)
    reconnect = None
    if not args.no_reconnect:
        reconnect = RetryPolicy(max_attempts=args.reconnect_attempts,
                                base_delay=args.reconnect_base_delay,
                                max_delay=args.reconnect_max_delay,
                                deadline=args.reconnect_deadline)
    connect_factory = None
    if args.fault_plan:
        from repro.chaos import FaultPlan

        try:
            connect_factory = FaultPlan.from_spec(args.fault_plan).connect
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    options = WorkerOptions(worker_id=args.id, store_root=args.store,
                            max_tasks=args.max_tasks,
                            reconnect=reconnect,
                            idle_timeout=(args.idle_timeout
                                          if args.idle_timeout > 0 else None),
                            connect_factory=connect_factory)
    try:
        completed = run_worker(host, port, options)
    except OSError as error:
        # covers ConnectionError plus the other connect-time failures
        # (socket.gaierror for bad hostnames, TimeoutError for unroutable
        # addresses) — a human-readable refusal, not a traceback
        print(f"error: cannot serve broker at {args.connect}: {error}",
              file=sys.stderr)
        return 2
    print(f"worker done: {completed} trials completed")
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from repro.distributed import parse_address
    from repro.telemetry.fleet import (
        FleetStatusError,
        fetch_fleet_stats,
        format_fleet_status,
    )

    try:
        host, port = parse_address(args.connect)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    retry = _retry_policy(args)
    while True:
        try:
            snapshot = fetch_fleet_stats(host, port, timeout=args.timeout,
                                         retry=retry)
        except (FleetStatusError, ConnectionError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(format_fleet_status(snapshot))
        if not args.watch:
            return 0
        done = snapshot.get("tasks", {}).get("done")
        total = snapshot.get("tasks", {}).get("total")
        if done is not None and done == total:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
        if not args.json:
            print()


def _cmd_fleet_autoscale(args: argparse.Namespace) -> int:
    import time as _time

    from repro.distributed import parse_address
    from repro.fleet import FleetAutoscaler
    from repro.telemetry.fleet import FleetStatusError, fetch_fleet_stats

    try:
        host, port = parse_address(args.connect)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        # --retry-attempts lets the preflight ride out a broker that is
        # mid-restart from its journal rather than refusing immediately.
        fetch_fleet_stats(host, port, timeout=5.0, retry=_retry_policy(args))
    except (FleetStatusError, ConnectionError) as error:
        # Refuse up front when no broker answers: an autoscaler pointed at
        # nothing would silently poll forever.
        print(f"error: {error}", file=sys.stderr)
        return 2
    autoscaler = FleetAutoscaler(host, port,
                                 config=_build_autoscale_config(args))
    print(f"autoscaling fleet for broker {host}:{port} "
          f"(min={args.autoscale_min}, max={args.autoscale_max}; "
          "Ctrl-C to stop)")
    autoscaler.start()
    misses = 0
    try:
        while True:
            _time.sleep(args.autoscale_interval)
            snapshot = autoscaler.last_snapshot
            try:
                fetch_fleet_stats(host, port, timeout=5.0)
                misses = 0
            except FleetStatusError:
                # The broker tears its port down the moment the sweep
                # drains; a few consecutive misses mean it is gone for
                # good, not mid-restart.
                misses += 1
                if misses >= 3:
                    break
            if args.watch and snapshot is not None:
                tasks = snapshot.get("tasks", {})
                print("tick: {done}/{total} done, {queued} queued, "
                      "{alive} workers alive".format(
                          done=tasks.get("done", 0),
                          total=tasks.get("total", 0),
                          queued=tasks.get("queued", 0),
                          alive=autoscaler.supervisor.alive_count()))
    except KeyboardInterrupt:
        pass
    finally:
        autoscaler.stop(retire_fleet=True)
    print(autoscaler.report.summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.api.store import ArtifactStore, default_store_root
    from repro.distributed import parse_address
    from repro.distributed.preflight import (
        PreflightError,
        check_store_readable,
        run_preflight,
    )
    from repro.serving import PolicyServer, load_spec_policies

    spec = _resolve_spec(args.experiment, "ci" if args.ci else "paper")
    store_root = (args.store if args.store is not None
                  else str(default_store_root()))
    designs = ([name.strip() for name in args.designs.split(",") if name.strip()]
               if args.designs else None)
    # Policy discovery only makes sense on a readable store; an unreadable
    # root reports once through the preflight instead of once per design.
    policy_problems: list = []
    policies: dict = {}
    if check_store_readable(store_root) is None:
        policies, policy_problems = load_spec_policies(
            ArtifactStore(store_root), spec, designs)
    try:
        run_preflight(bind=args.bind, readable_store_root=store_root,
                      extra_problems=policy_problems, context="serve")
    except PreflightError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    host, port = parse_address(args.bind)
    server = PolicyServer(policies, host=host, port=port,
                          max_batch=args.max_batch,
                          max_wait_us=args.max_wait_us)
    with server:
        bound_host, bound_port = server.address
        print(f"serving {len(policies)} "
              f"polic{'ies' if len(policies) != 1 else 'y'} "
              f"({', '.join(sorted(policies))}) at {bound_host}:{bound_port}",
              flush=True)
        deadline = (_time.monotonic() + args.max_seconds
                    if args.max_seconds else None)
        try:
            while deadline is None or _time.monotonic() < deadline:
                _time.sleep(0.2)
        except KeyboardInterrupt:
            pass
    print("policy server stopped")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.experiment, "ci" if args.ci else "paper")
    try:
        report = run(spec, backend="serial", out=_store_root(args),
                     cache_only=True)
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return _finish(report, args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified experiment runner for the paper reproduction.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="show registered experiments"
                        ).set_defaults(handler=_cmd_list)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("experiment",
                         help="registered name (see `repro list`) or spec JSON path")
        sub.add_argument("--ci", action="store_true",
                         help="use the minutes-scale CI variant of a registered name")
        sub.add_argument("--out", default=None,
                         help="artifact store root (default: $REPRO_ARTIFACTS "
                              "when set, else ./artifacts)")
        sub.add_argument("--csv", default=None, metavar="PATH",
                         help="also write the summary rows as CSV")
        sub.add_argument("--plot", action="store_true",
                         help="regenerate the Figure 4/5 panels from the run's "
                              "curves (requires matplotlib, a graceful no-op "
                              "message without it)")
        sub.add_argument("--plot-dir", default="figures", metavar="DIR",
                         help="output directory for --plot (default: ./figures)")
        sub.add_argument("--quiet", action="store_true",
                         help="suppress the rendered table")

    runner = commands.add_parser("run", help="execute an experiment (with resume)")
    add_common(runner)
    runner.add_argument("--backend", default="auto", choices=BACKENDS,
                        help="execution backend (default: auto = vectorized "
                             "with serial fallback)")
    runner.add_argument("--no-resume", action="store_true",
                        help="ignore cached trials and retrain everything")
    runner.add_argument("--max-workers", type=int, default=None,
                        help="pool size for the process backend")
    runner.add_argument("--workers", type=int, default=None,
                        help="distributed backend: local worker processes to "
                             "auto-spawn (default: one per task, CPU-capped)")
    runner.add_argument("--bind", default=None, metavar="HOST:PORT",
                        help="distributed backend: accept external "
                             "`repro worker --connect` processes here")
    runner.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                        help="serial backend: persist mid-trial training state "
                             "every N episodes so a killed run resumes inside "
                             "a trial, bit-for-bit (0 = off)")
    runner.add_argument("--journal", default=None, metavar="PATH",
                        help="distributed backend: append-only write-ahead "
                             "journal of broker queue transitions; restart "
                             "a killed broker with the same path to resume "
                             "the sweep (completed trials stay done, "
                             "in-flight leases are requeued)")
    runner.add_argument("--lease-batch", type=int, default=1, metavar="K",
                        help="distributed backend: tasks leased per worker "
                             "request (amortizes connection latency; "
                             "default 1)")
    runner.add_argument("--progress-every", type=int, default=0, metavar="N",
                        help="stream per-trial training progress to stderr "
                             "every N episodes (serial/vectorized backends; "
                             "0 = off)")
    runner.add_argument("--autoscale", action="store_true",
                        help="distributed backend: replace the fixed "
                             "--workers fleet with an elastic autoscaler "
                             "(scale up on queue backlog, gracefully drain "
                             "idle workers; results stay byte-identical)")
    _add_autoscale_flags(runner)
    runner.add_argument("--save-policy", action="store_true",
                        help="also persist each freshly trained trial's "
                             "final agent (trials/<key>/policy.pkl) so "
                             "`repro serve` can host it; "
                             "serial/vectorized/process backends")
    runner.set_defaults(handler=_cmd_run)

    reporter = commands.add_parser(
        "report", help="re-render a finished run from cached artifacts only")
    add_common(reporter)
    reporter.set_defaults(handler=_cmd_report)

    worker = commands.add_parser(
        "worker", help="serve a distributed sweep broker as a worker")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="broker address published by "
                             "`repro run --backend distributed --bind ...`")
    worker.add_argument("--store", default=None, metavar="DIR",
                        help="local artifact store: answer repeat tasks from "
                             "cache and checkpoint fresh results")
    worker.add_argument("--id", default=None,
                        help="worker id shown in broker logs (default: "
                             "hostname-pid-uuid)")
    worker.add_argument("--max-tasks", type=int, default=None,
                        help="exit after completing N tasks (default: serve "
                             "until the broker shuts the sweep down)")
    worker.add_argument("--no-reconnect", action="store_true",
                        help="exit on the first broker disconnect instead "
                             "of reconnecting with backoff (pre-1.8 "
                             "behaviour)")
    worker.add_argument("--reconnect-attempts", type=int, default=5,
                        metavar="N",
                        help="connection attempts per outage before giving "
                             "up (default 5)")
    worker.add_argument("--reconnect-base-delay", type=float, default=0.2,
                        metavar="S",
                        help="first backoff delay in seconds; doubles each "
                             "retry (default 0.2)")
    worker.add_argument("--reconnect-max-delay", type=float, default=5.0,
                        metavar="S",
                        help="backoff ceiling in seconds (default 5)")
    worker.add_argument("--reconnect-deadline", type=float, default=None,
                        metavar="S",
                        help="give up reconnecting S seconds into an outage "
                             "(default: attempts cap only)")
    worker.add_argument("--idle-timeout", type=float, default=60.0,
                        metavar="S",
                        help="treat a broker silent for S seconds as gone "
                             "and reconnect (default 60; 0 = wait forever)")
    worker.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="chaos testing: inject deterministic connection "
                             "faults, e.g. "
                             "'drop_after_frames=8,drop_every=5,seed=7' "
                             "(see repro.chaos.FaultPlan.from_spec)")
    worker.set_defaults(handler=_cmd_worker)

    server = commands.add_parser(
        "serve", help="host trained policies as an online action service")
    server.add_argument("experiment",
                        help="registered name (see `repro list`) or spec "
                             "JSON path whose trained policies to serve")
    server.add_argument("--ci", action="store_true",
                        help="resolve a registered name at CI scale (must "
                             "match the scale the policies were trained at)")
    server.add_argument("--store", default=None, metavar="DIR",
                        help="artifact store holding policy.pkl files "
                             "(default: $REPRO_ARTIFACTS when set, else "
                             "./artifacts)")
    server.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="listen address (default 127.0.0.1:0 = loopback, "
                             "ephemeral port; the bound address is printed)")
    server.add_argument("--designs", default=None, metavar="D1,D2",
                        help="serve only these designs of the spec "
                             "(default: all of them)")
    server.add_argument("--max-batch", type=int, default=8, metavar="N",
                        help="micro-batch size: dispatch as soon as N "
                             "requests are queued for one design (default 8)")
    server.add_argument("--max-wait-us", type=float, default=2000.0,
                        metavar="T",
                        help="micro-batch wait: dispatch a partial batch "
                             "once its oldest request has waited T "
                             "microseconds (default 2000)")
    server.add_argument("--max-seconds", type=float, default=0.0, metavar="S",
                        help="exit after S seconds (0 = serve until "
                             "interrupted; useful for CI)")
    server.set_defaults(handler=_cmd_serve)

    fleet = commands.add_parser(
        "fleet", help="observe a running distributed sweep")
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)
    status = fleet_commands.add_parser(
        "status", help="query a live broker's STATS channel")
    status.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="broker address published by "
                             "`repro run --backend distributed --bind ...`")
    status.add_argument("--watch", action="store_true",
                        help="refresh until the sweep completes (Ctrl-C to stop)")
    status.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="seconds between --watch refreshes (default: 2)")
    status.add_argument("--json", action="store_true",
                        help="print the raw STATS snapshot as JSON")
    status.add_argument("--timeout", type=float, default=5.0, metavar="S",
                        help="per-query socket timeout (default: 5)")
    _add_retry_flags(status)
    status.set_defaults(handler=_cmd_fleet_status)
    autoscale = fleet_commands.add_parser(
        "autoscale", help="attach an elastic worker fleet to a live broker")
    autoscale.add_argument("--connect", required=True, metavar="HOST:PORT",
                           help="broker address published by `repro run "
                                "--backend distributed --bind ...`")
    _add_autoscale_flags(autoscale)
    _add_retry_flags(autoscale)
    autoscale.add_argument("--watch", action="store_true",
                           help="print a fleet status line every poll")
    autoscale.set_defaults(handler=_cmd_fleet_autoscale)
    return parser


def _add_autoscale_flags(parser: argparse.ArgumentParser) -> None:
    """The shared autoscaler knobs of `repro run` and `repro fleet autoscale`."""
    parser.add_argument("--autoscale-min", "--min", type=int, default=1,
                        metavar="N", dest="autoscale_min",
                        help="fleet floor, topped up immediately (default 1)")
    parser.add_argument("--autoscale-max", "--max", type=int, default=4,
                        metavar="N", dest="autoscale_max",
                        help="fleet ceiling (default 4)")
    parser.add_argument("--autoscale-interval", type=float, default=0.5,
                        metavar="S", dest="autoscale_interval",
                        help="seconds between control ticks (default 0.5)")
    parser.add_argument("--autoscale-idle-grace", type=float, default=2.0,
                        metavar="S", dest="autoscale_idle_grace",
                        help="continuous idle seconds before a worker is "
                             "drained (default 2)")
    parser.add_argument("--autoscale-high-water", type=float, default=2.0,
                        metavar="R", dest="autoscale_high_water",
                        help="queued/alive ratio that triggers scale-up "
                             "(default 2.0)")
    parser.add_argument("--autoscale-low-water", type=float, default=0.5,
                        metavar="R", dest="autoscale_low_water",
                        help="queued/alive ratio allowing scale-down "
                             "(default 0.5; the gap to --autoscale-high-water "
                             "is the hysteresis band)")
    parser.add_argument("--autoscale-cooldown", type=float, default=3.0,
                        metavar="S", dest="autoscale_cooldown",
                        help="minimum seconds between scaling actions "
                             "(default 3)")


def _add_retry_flags(parser: argparse.ArgumentParser) -> None:
    """The shared broker-query retry knobs of the `repro fleet` commands."""
    parser.add_argument("--retry-attempts", type=int, default=1, metavar="N",
                        dest="retry_attempts",
                        help="retry a transiently unreachable broker up to "
                             "N attempts (default 1 = fail immediately)")
    parser.add_argument("--retry-base-delay", type=float, default=0.5,
                        metavar="S", dest="retry_base_delay",
                        help="first retry delay in seconds; doubles each "
                             "attempt (default 0.5)")
    parser.add_argument("--retry-deadline", type=float, default=None,
                        metavar="S", dest="retry_deadline",
                        help="stop retrying S seconds after the first "
                             "failure (default: attempts cap only)")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


__all__ = ["build_parser", "main"]
