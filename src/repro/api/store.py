"""On-disk artifact store: content-addressed trial results with cheap resume.

Layout (all under one root, default ``./artifacts`` or ``$REPRO_ARTIFACTS``)::

    <root>/trials/<trial_key>/trial.json   scalar result fields + time breakdown
                                           + the full trial descriptor + backend_used
    <root>/trials/<trial_key>/curve.npz    per-episode arrays of the training curve
    <root>/trials/<trial_key>/policy.pkl   the trained agent (``--save-policy``
                                           runs only — the ``repro serve`` input)
    <root>/runs/<spec_hash>.json           the spec + its trial keys, written after
                                           every engine run (the ``repro report`` input)

``trial_key`` is :func:`~repro.utils.seeding.stable_digest` of the trial's
canonical descriptor — design, env, layer sizes, gamma, seed and every
training-protocol field.  Two runs that expand to the same trial therefore
share one artifact regardless of which spec, backend or CLI invocation
produced it: re-running ``repro run figure4`` completes from cache, and a
user spec that overlaps ``figure4``'s grid reuses its trials for free.
The backend is deliberately *not* part of the key — backend equivalence is
a library guarantee (asserted in CI), so results are interchangeable.
"""

from __future__ import annotations

import json
import os
import pickle
import zipfile
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.parallel.sweep import SweepTask
from repro.training.records import EpisodeRecord, TrainingCurve, TrainingResult
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json
from repro.utils.seeding import stable_digest
from repro.utils.timer import TimeBreakdown

PathLike = Union[str, os.PathLike]

#: Bumped when the on-disk trial format changes; part of every trial key, so
#: a format change naturally invalidates stale caches instead of misreading them.
STORE_FORMAT_VERSION = 1

#: Environment variable overriding the default store root.
STORE_ENV_VAR = "REPRO_ARTIFACTS"

_CURVE_FIELDS = ("episode", "steps", "shaped_return", "moving_average",
                 "lipschitz_bound", "beta_norm")


def default_store_root() -> Path:
    """``$REPRO_ARTIFACTS`` when set, else ``./artifacts``."""
    return Path(os.environ.get(STORE_ENV_VAR, "artifacts"))


def trial_descriptor(task: SweepTask) -> Dict[str, Any]:
    """The canonical, JSON-serializable identity of one trial.

    The package version is part of the identity: training-loop or design
    changes ship with a version bump, which invalidates stale artifacts
    instead of silently serving pre-change results as cache hits.
    """
    import repro

    training = asdict(task.training)
    if not training.get("env_params"):
        # Keys of trials that never customize the env constructor are the
        # same as before env_params existed, so historical caches stay valid.
        training.pop("env_params", None)
    return {
        "format_version": STORE_FORMAT_VERSION,
        "repro_version": repro.__version__,
        "design": task.design,
        "env_id": task.env_id,
        "n_hidden": task.n_hidden,
        "n_states": task.n_states,
        "n_actions": task.n_actions,
        "gamma": task.gamma,
        "seed": task.seed,
        "training": training,
    }


def trial_key(task: SweepTask) -> str:
    """Content-address of one trial (stable across processes and runs)."""
    descriptor = json.dumps(trial_descriptor(task), sort_keys=True,
                            separators=(",", ":"))
    return stable_digest(descriptor)


class ArtifactStore:
    """Per-trial result cache + run-level records under one directory root."""

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    # ------------------------------------------------------------------ paths
    def trial_dir(self, key: str) -> Path:
        return self.root / "trials" / key

    def run_path(self, spec_hash: str) -> Path:
        return self.root / "runs" / f"{spec_hash}.json"

    # ------------------------------------------------------------------ trials
    def has_trial(self, task: SweepTask) -> bool:
        directory = self.trial_dir(trial_key(task))
        return (directory / "trial.json").exists() and (directory / "curve.npz").exists()

    def save_trial(self, task: SweepTask, result: TrainingResult, *,
                   backend_used: str) -> str:
        """Persist one finished trial; returns its key.

        Writes are atomic (temp file + rename, curve before descriptor), so
        a process killed mid-save — a downed distributed worker, a Ctrl-C'd
        sweep — can leave at most a stray temp file, never a half-written
        artifact that :meth:`load_trial` could misread.  Concurrent savers
        of the same trial (broker thread + store-equipped worker) are safe:
        both write identical content and the renames serialize.
        """
        key = trial_key(task)
        directory = self.trial_dir(key)
        # A finished trial supersedes any mid-trial state snapshot.
        self.clear_trial_state(task)
        record = {
            "descriptor": trial_descriptor(task),
            "backend_used": backend_used,
            "result": {
                "design": result.design,
                "n_hidden": result.n_hidden,
                "solved": result.solved,
                "episodes": result.episodes,
                "episodes_to_solve": result.episodes_to_solve,
                "wall_time_seconds": result.wall_time_seconds,
                "weight_resets": result.weight_resets,
                "seed": result.seed,
                "breakdown_seconds": dict(result.breakdown.seconds),
                "breakdown_counts": dict(result.breakdown.counts),
            },
        }
        curve = result.curve
        nan_or = lambda value: np.nan if value is None else float(value)  # noqa: E731
        tmp_tag = f".{os.getpid()}.tmp"
        tmp_curve = save_arrays(directory / f"curve{tmp_tag}.npz", {
            "episode": np.array([r.episode for r in curve.records], dtype=np.int64),
            "steps": np.array([r.steps for r in curve.records], dtype=np.int64),
            "shaped_return": np.array([r.shaped_return for r in curve.records]),
            "moving_average": np.array([r.moving_average for r in curve.records]),
            "lipschitz_bound": np.array([nan_or(r.lipschitz_bound)
                                         for r in curve.records]),
            "beta_norm": np.array([nan_or(r.beta_norm) for r in curve.records]),
        })
        tmp_record = save_json(directory / f"trial{tmp_tag}.json", record)
        # Curve first: load_trial reads trial.json as the commit marker, so
        # the descriptor must never be visible before its arrays are.
        os.replace(tmp_curve, directory / "curve.npz")
        os.replace(tmp_record, directory / "trial.json")
        return key

    def load_trial(self, task: SweepTask) -> Optional[Tuple[TrainingResult, str]]:
        """Load a cached ``(result, backend_used)`` pair, or ``None`` on a miss.

        A corrupt or partially written artifact reads as a miss (the trial
        simply reruns) rather than poisoning the whole run.
        """
        key = trial_key(task)
        directory = self.trial_dir(key)
        try:
            record = load_json(directory / "trial.json")
            arrays = load_arrays(directory / "curve.npz")
            payload = record["result"]
            curve = _rebuild_curve(arrays)
            result = TrainingResult(
                design=payload["design"],
                n_hidden=int(payload["n_hidden"]),
                solved=bool(payload["solved"]),
                episodes=int(payload["episodes"]),
                episodes_to_solve=(None if payload["episodes_to_solve"] is None
                                   else int(payload["episodes_to_solve"])),
                wall_time_seconds=float(payload["wall_time_seconds"]),
                curve=curve,
                breakdown=TimeBreakdown(
                    seconds={k: float(v) for k, v in payload["breakdown_seconds"].items()},
                    counts={k: int(v) for k, v in payload["breakdown_counts"].items()},
                ),
                weight_resets=int(payload["weight_resets"]),
                seed=(None if payload["seed"] is None else int(payload["seed"])),
            )
            return result, str(record.get("backend_used", "unknown"))
        except (FileNotFoundError, KeyError, ValueError, json.JSONDecodeError,
                OSError, EOFError, zipfile.BadZipFile):
            # EOFError / BadZipFile: np.load on an empty or truncated .npz
            # (a run killed mid-save) — exactly the partial-write case that
            # must read as a miss so the trial reruns.
            return None

    # ------------------------------------------------------------------ mid-trial state
    # The serial Trainer's CheckpointCallback persists its full in-flight
    # training state here (pickled agent + env + bookkeeping, all RNG
    # streams included), so an interrupted `repro run` resumes *inside* a
    # trial and still reproduces the uninterrupted curve bit-for-bit.

    def trial_state_path(self, task: SweepTask) -> Path:
        return self.trial_dir(trial_key(task)) / "state.pkl"

    def save_trial_state(self, task: SweepTask, blob: bytes) -> Path:
        """Atomically persist a mid-trial checkpoint blob (temp + rename)."""
        path = self.trial_state_path(task)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"state.{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return path

    def load_trial_state(self, task: SweepTask) -> Optional[bytes]:
        """The latest mid-trial checkpoint blob, or ``None``."""
        try:
            return self.trial_state_path(task).read_bytes()
        except (FileNotFoundError, OSError):
            return None

    def clear_trial_state(self, task: SweepTask) -> None:
        try:
            self.trial_state_path(task).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ policies
    # A trained agent pickled next to its trial record — the deployable
    # artifact `repro serve` loads.  Written only on --save-policy runs:
    # curves are small, agents carry full hidden-layer matrices.

    def policy_path(self, task: SweepTask) -> Path:
        return self.trial_dir(trial_key(task)) / "policy.pkl"

    def save_policy(self, task: SweepTask, agent: Any) -> str:
        """Atomically persist one trial's trained agent; returns the trial key.

        The blob wraps the pickled agent with its trial descriptor so a
        served policy is auditable back to the exact training protocol and
        package version that produced it.
        """
        key = trial_key(task)
        path = self.policy_path(task)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps({
            "descriptor": trial_descriptor(task),
            "design": task.design,
            "agent": agent,
        }, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = path.with_name(f"policy.{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return key

    def load_policy(self, task: SweepTask) -> Optional[Any]:
        """The trained agent saved for this trial, or ``None``.

        Like :meth:`load_trial`, a corrupt or truncated blob reads as a
        miss rather than crashing the caller.
        """
        try:
            payload = pickle.loads(self.policy_path(task).read_bytes())
            return payload["agent"]
        except (FileNotFoundError, OSError, KeyError, TypeError,
                pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def has_policy(self, task: SweepTask) -> bool:
        return self.policy_path(task).exists()

    # ------------------------------------------------------------------ runs
    def save_run(self, spec: "ExperimentSpec",  # noqa: F821 - forward ref
                 trial_keys: List[str], *, backend: str,
                 backends_used: List[str]) -> Path:
        """Record one engine run: the spec plus the keys of its trials."""
        return save_json(self.run_path(spec.spec_hash), {
            "spec": spec.to_json(),
            "spec_hash": spec.spec_hash,
            "backend": backend,
            "backends_used": backends_used,
            "trial_keys": trial_keys,
        })

    def load_run(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        try:
            return load_json(self.run_path(spec_hash))
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    # ------------------------------------------------------------------ enumeration
    def list_runs(self) -> List[str]:
        """Spec hashes of every recorded run, newest first (by file mtime).

        ``list_runs()[0]`` is "the latest run" — the discovery entry point
        a serving launch uses when the caller knows the spec, not the hash.
        """
        runs_dir = self.root / "runs"
        try:
            paths = [path for path in runs_dir.iterdir()
                     if path.suffix == ".json"
                     and not path.name.endswith(".telemetry.json")]
        except (FileNotFoundError, NotADirectoryError):
            return []
        paths.sort(key=lambda path: (-path.stat().st_mtime, path.name))
        return [path.stem for path in paths]

    def list_trials(self, spec_hash: str) -> List[str]:
        """The trial keys of one recorded run, in spec grid order.

        Raises ``KeyError`` for an unknown (or unreadable) run record —
        "which run?" is a caller mistake, unlike a cache miss.
        """
        record = self.load_run(spec_hash)
        if record is None:
            raise KeyError(
                f"no run record for spec hash {spec_hash!r} under {self.root}")
        return [str(key) for key in record.get("trial_keys", [])]

    # ------------------------------------------------------------------ telemetry
    def telemetry_path(self, spec_hash: str) -> Path:
        return self.root / "runs" / f"{spec_hash}.telemetry.json"

    def save_telemetry(self, spec_hash: str,
                       snapshot: Dict[str, Any]) -> Path:
        """Persist one run's telemetry snapshot next to its run record."""
        return save_json(self.telemetry_path(spec_hash), snapshot)

    def load_telemetry(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        try:
            return load_json(self.telemetry_path(spec_hash))
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    def __repr__(self) -> str:
        return f"ArtifactStore(root={str(self.root)!r})"


def _rebuild_curve(arrays: Dict[str, np.ndarray]) -> TrainingCurve:
    curve = TrainingCurve()
    n = int(arrays["episode"].shape[0])
    for i in range(n):
        lipschitz = float(arrays["lipschitz_bound"][i])
        beta_norm = float(arrays["beta_norm"][i])
        curve.append(EpisodeRecord(
            episode=int(arrays["episode"][i]),
            steps=int(arrays["steps"][i]),
            shaped_return=float(arrays["shaped_return"][i]),
            moving_average=float(arrays["moving_average"][i]),
            lipschitz_bound=None if np.isnan(lipschitz) else lipschitz,
            beta_norm=None if np.isnan(beta_norm) else beta_norm,
        ))
    return curve


__all__ = ["ArtifactStore", "STORE_FORMAT_VERSION", "STORE_ENV_VAR",
           "default_store_root", "trial_descriptor", "trial_key"]
