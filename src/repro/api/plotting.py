"""``repro report --plot``: regenerate the Figure 4/5 panels from cached curves.

matplotlib is an *optional* dependency: :func:`plot_report` returns ``None``
(and the CLI prints a one-line notice) when it is not installed, so the core
package keeps its NumPy/SciPy-only footprint.

Styling follows a small fixed system so every panel reads the same way:

* one categorical color per **design**, assigned in the paper's fixed design
  order (never by position in the current plot — filtering a report down to
  two designs must not repaint them);
* a validated colorblind-safe palette (adjacent-pair CVD deltaE >= 8);
* recessive axes (no top/right spines, light grid behind the data), thin
  2pt lines, a frameless legend;
* one y-axis per panel, the identity of every series carried by the legend
  plus the ``repro report`` summary table that always accompanies a plot.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

import numpy as np

from repro.core.designs import DESIGN_NAMES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import RunReport

#: Surface / ink tokens (light mode).
_SURFACE = "#fcfcfb"
_TEXT_PRIMARY = "#0b0b0b"
_TEXT_SECONDARY = "#52514e"
_GRID = "#e8e7e4"

#: Fixed design -> categorical slot mapping (paper order; validated palette).
_DESIGN_COLORS: Dict[str, str] = dict(zip(DESIGN_NAMES, (
    "#2a78d6",   # ELM                  (blue)
    "#eb6834",   # OS-ELM               (orange)
    "#1baf7a",   # OS-ELM-L2            (aqua)
    "#eda100",   # OS-ELM-Lipschitz     (yellow)
    "#e87ba4",   # OS-ELM-L2-Lipschitz  (magenta)
    "#008300",   # DQN                  (green)
    "#4a3aa7",   # FPGA                 (violet)
)))
_FALLBACK_COLOR = "#52514e"


def design_color(design: str) -> str:
    """The design's fixed categorical color (entity-stable across plots)."""
    return _DESIGN_COLORS.get(design, _FALLBACK_COLOR)


def matplotlib_available() -> bool:
    try:
        import matplotlib  # noqa: F401
        return True
    except ImportError:
        return False


def _style_axes(ax) -> None:
    ax.set_facecolor(_SURFACE)
    for side in ("top", "right"):
        ax.spines[side].set_visible(False)
    for side in ("left", "bottom"):
        ax.spines[side].set_color(_TEXT_SECONDARY)
        ax.spines[side].set_linewidth(0.8)
    ax.grid(True, color=_GRID, linewidth=0.8, zorder=0)
    ax.set_axisbelow(True)
    ax.tick_params(colors=_TEXT_SECONDARY, labelsize=9)
    ax.xaxis.label.set_color(_TEXT_SECONDARY)
    ax.yaxis.label.set_color(_TEXT_SECONDARY)
    ax.title.set_color(_TEXT_PRIMARY)


def _aggregate_curves(results) -> Dict[str, np.ndarray]:
    """Mean/std per-episode steps across seeds (held-value padding)."""
    horizon = max(len(result.curve) for result in results)
    padded = np.empty((len(results), horizon))
    for row, result in enumerate(results):
        steps = result.curve.steps
        padded[row, :steps.size] = steps
        padded[row, steps.size:] = steps[-1] if steps.size else 0.0
    return {
        "episodes": np.arange(1, horizon + 1),
        "mean": padded.mean(axis=0),
        "std": padded.std(axis=0),
    }


def _grouped(report: "RunReport") -> Dict[Tuple[str, int], Dict[str, list]]:
    """trials keyed (env_id, n_hidden) -> design -> [results in trial order]."""
    panels: Dict[Tuple[str, int], Dict[str, list]] = {}
    for record in report.trials:
        task = record.task
        panel = panels.setdefault((task.env_id, task.n_hidden), {})
        panel.setdefault(task.design, []).append(record.result)
    return panels


def _steps_ylabel(env_id: str) -> str:
    """Family-aware axis label: what "steps" measures depends on the env."""
    from repro.envs import spec as env_spec

    try:
        family = env_spec(env_id).family
    except KeyError:
        family = "classic-control"
    if family == "systems":
        return "steps before overload"
    return "steps survived"


def plot_training_curves(report: "RunReport", out_dir: Path) -> List[Path]:
    """The Figure 4 panels: one per (env, hidden size), lines per design."""
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    written: List[Path] = []
    for (env_id, n_hidden), by_design in sorted(_grouped(report).items()):
        fig, ax = plt.subplots(figsize=(6.4, 4.0), facecolor=_SURFACE)
        _style_axes(ax)
        for design in sorted(by_design, key=_design_order):
            agg = _aggregate_curves(by_design[design])
            color = design_color(design)
            ax.plot(agg["episodes"], agg["mean"], color=color, linewidth=2.0,
                    label=design, zorder=3)
            if len(by_design[design]) > 1:
                ax.fill_between(agg["episodes"], agg["mean"] - agg["std"],
                                agg["mean"] + agg["std"], color=color,
                                alpha=0.15, linewidth=0, zorder=2)
        ax.set_xlabel("episode")
        ax.set_ylabel(_steps_ylabel(env_id))
        ax.set_title(f"{report.spec.name}: training curves — {env_id}, "
                     f"Ñ = {n_hidden}", fontsize=11)
        legend = ax.legend(frameon=False, fontsize=9)
        for text in legend.get_texts():
            text.set_color(_TEXT_PRIMARY)
        path = out_dir / f"{report.spec.name}_curves_{_slug(env_id)}_h{n_hidden}.png"
        fig.savefig(path, dpi=150, bbox_inches="tight", facecolor=_SURFACE)
        plt.close(fig)
        written.append(path)
    return written


def plot_execution_times(report: "RunReport", out_dir: Path) -> List[Path]:
    """The Figure 5 panel: modelled seconds per design, grouped by size."""
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    from repro.experiments.execution_time import project_timing
    from repro.fpga.platform import PynqZ1Platform

    platform = PynqZ1Platform()
    by_design: Dict[str, Dict[int, float]] = {}
    sizes: List[int] = []
    for record in report.trials:
        timing = project_timing(record.result, platform)
        by_design.setdefault(record.task.design, {})[record.task.n_hidden] = \
            timing.modelled_total
        if record.task.n_hidden not in sizes:
            sizes.append(record.task.n_hidden)
    sizes.sort()
    designs = sorted(by_design, key=_design_order)

    fig, ax = plt.subplots(figsize=(7.0, 4.2), facecolor=_SURFACE)
    _style_axes(ax)
    x = np.arange(len(sizes), dtype=float)
    width = 0.8 / max(len(designs), 1)
    for pos, design in enumerate(designs):
        values = [by_design[design].get(size, 0.0) for size in sizes]
        offset = (pos - (len(designs) - 1) / 2.0) * width
        ax.bar(x + offset, values, width * 0.92, color=design_color(design),
               label=design, zorder=3, edgecolor=_SURFACE, linewidth=0.8)
    ax.set_xticks(x)
    ax.set_xticklabels([str(size) for size in sizes])
    ax.set_xlabel("hidden units Ñ")
    ax.set_ylabel("modelled training time [s]")
    ax.set_yscale("log")
    ax.set_title(f"{report.spec.name}: modelled execution time (PYNQ-Z1)",
                 fontsize=11)
    legend = ax.legend(frameon=False, fontsize=9)
    for text in legend.get_texts():
        text.set_color(_TEXT_PRIMARY)
    path = out_dir / f"{report.spec.name}_execution_time.png"
    fig.savefig(path, dpi=150, bbox_inches="tight", facecolor=_SURFACE)
    plt.close(fig)
    return [path]


def plot_report(report: "RunReport", out_dir) -> Optional[List[Path]]:
    """Write the report's figure panels into ``out_dir``.

    Returns the written paths, an empty list for kinds with nothing to plot
    (``resource_table``), or ``None`` when matplotlib is unavailable — the
    caller prints the graceful no-op message in that case.
    """
    if not matplotlib_available():
        return None
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if report.spec.kind == "training_curve":
        return plot_training_curves(report, out)
    if report.spec.kind == "execution_time":
        return plot_execution_times(report, out)
    return []


def _design_order(design: str) -> Tuple[int, str]:
    try:
        return (DESIGN_NAMES.index(design), design)
    except ValueError:
        return (len(DESIGN_NAMES), design)


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in text)


__all__ = ["design_color", "matplotlib_available", "plot_report",
           "plot_training_curves", "plot_execution_times"]
