"""repro.api: the unified experiment API (spec -> registry -> engine -> store).

One declarative front door replaces the bespoke per-figure harnesses:

>>> from repro.api import run
>>> report = run("figure4", scale="ci", backend="vectorized")
>>> print(report.render())

* :class:`ExperimentSpec` / :class:`Budget` — declarative experiment
  descriptions (designs x hidden sizes x envs x seeds x budget), JSON
  round-trippable and content-addressable.
* :mod:`~repro.api.registry` — named specs: ``figure4``, ``figure5``,
  ``table2`` (alias), ``table3``, plus :func:`register_experiment` for
  user scenarios.
* :func:`run` — the single engine; every trial routes through
  :class:`~repro.parallel.sweep.SweepRunner` on the serial, vectorized or
  process backend.
* :class:`ArtifactStore` — content-addressed per-trial results on disk,
  giving ``repro run`` cheap resume and cross-run caching.
* ``python -m repro`` (:mod:`~repro.api.cli`) — ``list`` / ``run`` /
  ``report`` from the shell.
"""

from repro.api.engine import BACKENDS, RunReport, TrialRecord, run
from repro.api.registry import (
    CI_BUDGET,
    RegisteredExperiment,
    get_entry,
    get_spec,
    list_experiments,
    register_alias,
    register_experiment,
    unregister_experiment,
)
from repro.api.spec import Budget, EXPERIMENT_KINDS, ExperimentSpec
from repro.api.store import ArtifactStore, default_store_root, trial_key

__all__ = [
    "ArtifactStore",
    "BACKENDS",
    "Budget",
    "CI_BUDGET",
    "EXPERIMENT_KINDS",
    "ExperimentSpec",
    "RegisteredExperiment",
    "RunReport",
    "TrialRecord",
    "default_store_root",
    "get_entry",
    "get_spec",
    "list_experiments",
    "register_alias",
    "register_experiment",
    "run",
    "trial_key",
    "unregister_experiment",
]
