"""The one front door: ``run(spec_or_name)`` executes any experiment spec.

Every trial — serial, vectorized or process-pooled — goes through
:class:`~repro.parallel.sweep.SweepRunner`, so the four bespoke launch paths
of the legacy harnesses collapse into one engine with interchangeable
backends.  On top of that single code path the engine adds:

* **registry resolution** — pass ``"figure4"`` instead of building a spec;
* **artifact-store caching** — with a store attached, finished trials are
  content-addressed on disk and later runs of the same (or an overlapping)
  spec complete from cache instead of retraining;
* **uniform reporting** — the returned :class:`RunReport` renders the same
  tables/CSVs the legacy harnesses printed.

Library calls default to ``store=None`` (pure, no disk writes); the CLI
attaches a store so ``repro run`` resumes for free.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.api.registry import get_spec
from repro.api.spec import ExperimentSpec
from repro.api.store import ArtifactStore, trial_key
from repro.parallel.sweep import SweepRunner, SweepTask
from repro.training.records import TrainingResult
from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.api.engine")

#: Accepted ``backend=`` values (superset of SweepRunner's: same names).
BACKENDS = SweepRunner.BACKENDS


@dataclass
class TrialRecord:
    """One executed (or cache-restored) trial of a run."""

    task: SweepTask
    result: TrainingResult
    backend_used: str            #: "lockstep" | "process" | "serial" | "distributed"
    cached: bool = False         #: True when restored from the artifact store


@dataclass
class RunReport:
    """Everything one :func:`run` call produced, in spec grid order."""

    spec: ExperimentSpec
    backend: str
    trials: List[TrialRecord] = field(default_factory=list)
    wall_time_seconds: float = 0.0
    store_root: Optional[str] = None
    resource_report: Optional[object] = None   #: set for kind="resource_table"
    #: Autoscaled distributed runs only: the :class:`~repro.fleet.FleetReport`
    #: of scale-up/drain events (``None`` otherwise).
    fleet_report: Optional[object] = None

    @property
    def cached_count(self) -> int:
        return sum(record.cached for record in self.trials)

    @property
    def executed_count(self) -> int:
        return len(self.trials) - self.cached_count

    def backend_counts(self) -> Dict[str, int]:
        return dict(Counter(record.backend_used for record in self.trials))

    def results(self) -> List[TrainingResult]:
        return [record.result for record in self.trials]

    # -------------------------------------------------------------- reporting
    # Thin delegates to repro.api.reports so presentation stays in one module.
    def summary_rows(self, *, platform=None) -> List[Dict[str, object]]:
        from repro.api import reports

        return reports.summary_rows(self, platform=platform)

    def render(self, *, platform=None) -> str:
        from repro.api import reports

        return reports.render(self, platform=platform)

    def summary_csv(self, *, platform=None) -> str:
        from repro.api import reports

        return reports.summary_csv(self, platform=platform)

    def to_training_curve_result(self):
        from repro.api import reports

        return reports.training_curve_result(self)

    def to_execution_time_result(self, *, platform=None):
        from repro.api import reports

        return reports.execution_time_result(self, platform=platform)


def run(spec_or_name: Union[str, ExperimentSpec], *, backend: str = "auto",
        scale: str = "paper", out: Optional[str] = None,
        store: Optional[ArtifactStore] = None, resume: bool = True,
        cache_only: bool = False, max_workers: Optional[int] = None,
        bind: Optional[str] = None, checkpoint_every: int = 0,
        lease_batch: int = 1, progress_every: int = 0,
        save_policy: bool = False, autoscale=None,
        journal: Optional[str] = None) -> RunReport:
    """Execute an experiment spec (or registered name) and return its report.

    Parameters
    ----------
    spec_or_name:
        An :class:`ExperimentSpec`, or the name of a registered experiment
        (``"figure4"``, ``"table3"``, a user-registered name, ...).
    backend:
        ``"auto"`` (vectorized with serial fallback), ``"vectorized"``,
        ``"process"``, ``"serial"`` or ``"distributed"`` — forwarded to
        :class:`~repro.parallel.sweep.SweepRunner`.  Every backend produces
        identical results; the choice is purely about throughput.
    scale:
        ``"paper"`` or ``"ci"`` — which registered variant a *name* resolves
        to.  Ignored when a spec object is passed.
    out:
        Artifact-store root.  Shorthand for ``store=ArtifactStore(out)``.
    store:
        An explicit :class:`ArtifactStore`.  ``None`` (and no ``out``) runs
        without caching — nothing is written to disk.
    resume:
        With a store attached, load cached trials instead of retraining
        (default).  ``False`` forces re-execution (artifacts are rewritten
        and stale mid-trial state snapshots are discarded).
    cache_only:
        Do not train at all: every trial must already be in the store
        (raises ``RuntimeError`` otherwise).  This is ``repro report``.
    max_workers:
        Pool size for the process backend, or the local worker count for
        the distributed backend.  ``None`` falls back to the spec's own
        :attr:`~repro.api.spec.ExperimentSpec.max_workers` hint (specs can
        cap per-trial workers without CLI flags), then to the runner's
        default.
    bind:
        Distributed backend only: ``"HOST:PORT"`` on which the broker
        accepts external ``repro worker --connect`` processes.
    checkpoint_every:
        Serial backend with a store: persist mid-trial training state every
        N episodes so an interrupted run resumes *inside* a trial
        (bit-for-bit).  0 disables.
    lease_batch:
        Distributed backend: tasks leased per worker request (k-task
        batching; default 1 is the classic protocol).
    progress_every:
        Serial/vectorized backends: stream per-trial progress to stderr
        every N episodes.  0 disables.
    save_policy:
        Persist every freshly trained trial's final agent into the store
        (``trials/<key>/policy.pkl``) so ``repro serve`` can host it.
        Requires a store; serial/vectorized/process backends only (the
        distributed backend's agents live in worker processes).  Cached
        trials are *not* retrained just to produce a policy — pass
        ``resume=False`` to force a training pass that saves them.
    autoscale:
        Distributed backend only: ``True`` or a
        :class:`~repro.fleet.AutoscaleConfig` to run the worker fleet
        under the elastic autoscaler instead of a fixed ``max_workers``
        (see :class:`~repro.fleet.FleetAutoscaler`).  The fleet's
        :class:`~repro.fleet.FleetReport` is returned on
        :attr:`RunReport.fleet_report`; trial results are byte-identical
        to every other backend regardless of the scaling schedule.
    journal:
        Distributed backend only (``repro run --journal PATH``): the
        broker's crash-safety write-ahead journal.  An existing journal is
        replayed before serving, so re-running the same command after a
        broker SIGKILL resumes the sweep (completed trials done, in-flight
        leases requeued) instead of restarting it.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if isinstance(spec_or_name, ExperimentSpec):
        spec = spec_or_name
    else:
        spec = get_spec(spec_or_name, scale=scale)
    if store is None and out is not None:
        store = ArtifactStore(out)
    if save_policy and store is None:
        raise ValueError("save_policy requires a store (pass out= or store=)")
    if autoscale and backend != "distributed":
        raise ValueError("autoscale requires --backend distributed "
                         "(only the broker's worker fleet is elastic)")
    if journal and backend != "distributed":
        raise ValueError("journal requires --backend distributed (it logs "
                         "broker queue transitions; other backends resume "
                         "from the artifact store instead)")
    if max_workers is None:
        max_workers = spec.max_workers

    start = time.perf_counter()
    if spec.kind == "resource_table":
        return _run_resource_table(spec, backend, start)

    tasks = spec.tasks()
    records: Dict[Tuple[str, str, int, int], TrialRecord] = {}

    # ---- cache pass ------------------------------------------------------
    misses: List[SweepTask] = []
    for task in tasks:
        cached = store.load_trial(task) if (store is not None and resume) else None
        if cached is not None:
            result, backend_used = cached
            records[task.key()] = TrialRecord(task, result, backend_used, cached=True)
        else:
            misses.append(task)
    if cache_only and misses:
        missing = ", ".join(f"{t.design}/{t.env_id}/h{t.n_hidden}/t{t.trial}"
                            for t in misses[:5])
        raise RuntimeError(
            f"{len(misses)} of {len(tasks)} trials are not in the artifact store "
            f"(first: {missing}); run `repro run {spec.name}` first")

    # ---- execute misses through the one sweep engine ---------------------
    if misses:
        if backend == "distributed":
            # Catch bad bind addresses / unwritable stores / silly worker
            # counts before any broker thread or worker process exists —
            # a PreflightError here beats a socket traceback mid-sweep.
            from repro.distributed.preflight import run_preflight

            # `--workers 0` with a bind address is the documented
            # external-fleet mode (only `repro worker --connect` processes
            # serve the grid), so the local-worker-count check is skipped.
            run_preflight(
                bind=bind,
                store_root=str(store.root) if store is not None else None,
                workers=(None if max_workers == 0 and bind is not None
                         else max_workers))
        _LOGGER.info("run started", spec=spec.name, backend=backend,
                     trials=len(tasks), cached=len(tasks) - len(misses))
        # Trials are checkpointed the moment they finish, not when the sweep
        # returns, so an interrupted paper-scale run resumes mid-grid.  The
        # distributed backend checkpoints through its broker; every other
        # backend streams completions through the runner callback.  The
        # serial backend additionally gets the store for *mid-trial* state
        # checkpointing (checkpoint_every), resuming inside a trial.
        runner_store = (store if backend in ("distributed", "serial")
                        or save_policy else None)
        checkpoint = (None if store is None or backend == "distributed"
                      else _trial_checkpointer(store, backend))
        sweep = SweepRunner(misses, backend=backend, max_workers=max_workers,
                            store=runner_store, bind=bind,
                            checkpoint_every=checkpoint_every,
                            resume_trial_state=resume,
                            lease_batch=lease_batch,
                            progress_every=progress_every,
                            save_policies=save_policy,
                            autoscale=autoscale,
                            journal=journal).run(checkpoint)
        for (task, result), backend_used in zip(sweep.entries, sweep.backends_used):
            records[task.key()] = TrialRecord(task, result, backend_used)
        fleet_report = sweep.fleet_report
    else:
        fleet_report = None

    report = RunReport(
        spec=spec,
        backend=backend,
        trials=[records[task.key()] for task in tasks],
        wall_time_seconds=time.perf_counter() - start,
        store_root=str(store.root) if store is not None else None,
        fleet_report=fleet_report,
    )
    if store is not None and not cache_only:
        # cache_only is `repro report` — a read, which must not overwrite the
        # run record's provenance (the backend that actually produced it).
        store.save_run(spec, [trial_key(task) for task in tasks],
                       backend=backend,
                       backends_used=[r.backend_used for r in report.trials])
        from repro import telemetry

        if telemetry.enabled():
            # runs/<spec_hash>.telemetry.json — this process's metrics, span
            # tree and transport traffic, next to the run record.
            store.save_telemetry(spec.spec_hash, telemetry.snapshot())
    _LOGGER.info("run finished", spec=spec.name,
                 seconds=round(report.wall_time_seconds, 2),
                 cached=report.cached_count, executed=report.executed_count)
    return report


def _trial_checkpointer(store: ArtifactStore, backend: str):
    """A ``SweepRunner`` callback persisting each trial as it completes.

    The callback contract carries no ``backend_used``, so the execution path
    is recomputed here with the sweep's own routing rule — ``auto`` resolves
    to vectorized, where every trial lock-steps (batched or generic
    strategy, both recorded ``"lockstep"``).
    """
    effective = "vectorized" if backend == "auto" else backend
    backend_used = effective if effective in ("serial", "process") else "lockstep"

    def checkpoint(task: SweepTask, result: TrainingResult) -> None:
        store.save_trial(task, result, backend_used=backend_used)

    return checkpoint


def _run_resource_table(spec: ExperimentSpec, backend: str,
                        start: float) -> RunReport:
    """Resource-table specs have no trials: evaluate the area model directly."""
    from repro.experiments.resource_table import resource_table

    report = RunReport(spec=spec, backend=backend)
    report.resource_report = resource_table(spec.hidden_sizes)
    report.wall_time_seconds = time.perf_counter() - start
    return report


__all__ = ["BACKENDS", "RunReport", "TrialRecord", "run"]
