"""Declarative experiment specifications: the input language of ``repro run``.

An :class:`ExperimentSpec` describes *what* to reproduce — which designs,
hidden sizes, environments, how many seeds, under which training budget —
without saying *how*: the engine (:mod:`repro.api.engine`) expands it into
:class:`~repro.parallel.sweep.SweepTask` trials and executes them on any of
the sweep backends.  Specs are frozen, JSON round-trippable and
content-addressable (:attr:`ExperimentSpec.spec_hash`), which is what makes
the artifact store's resume/caching work: the same spec always names the
same trials.

Seed derivation is part of the spec so that the declarative path reproduces
the legacy harnesses bit-for-bit: a trial's seed is ::

    seed + 1000*trial + seed_stride*n_hidden
         + stable_hash(design) % seed_mod + 104729*env_index

With ``seed_stride=17, seed_mod=997`` (the ``figure4`` registry defaults)
this is exactly the formula ``TrainingCurveExperiment.run_single`` has
always used; ``figure5`` uses ``13 / 991``.  The env term is zero for the
first environment, so single-env specs match the legacy CartPole-only
harnesses while multi-env specs still get distinct streams per environment.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.designs import SOFTWARE_DESIGNS, design_spec
from repro.rl.runner import TrainingConfig
from repro.utils.seeding import stable_digest, stable_hash

#: Experiment kinds the engine knows how to execute and report.
EXPERIMENT_KINDS: Tuple[str, ...] = ("training_curve", "execution_time",
                                     "resource_table")

#: Prime spacing the env index contributes to trial seeds (0 for env 0, so
#: single-env specs reproduce the legacy seed formula exactly).
_ENV_SEED_STRIDE = 104729

#: Spec-format version recorded in every serialized spec / trial descriptor.
SPEC_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Budget:
    """The training-protocol knobs that distinguish CI from paper scale.

    A ci-scale and a paper-scale variant of the same experiment differ only
    in these fields — never in code path.  Field defaults are the paper's
    full Section 4.3/4.4 protocol.
    """

    max_episodes: int = 50_000            #: the paper's "impossible" cutoff
    max_steps_per_episode: Optional[int] = None   #: None -> the env's own limit
    solved_threshold: float = 195.0
    solved_window: int = 100
    reward_shaping: bool = True
    success_steps: int = 195
    stop_when_solved: bool = True
    record_lipschitz: bool = False

    def training_config(self, *, env_id: str, seed: Optional[int] = None
                        ) -> TrainingConfig:
        """Materialize the budget as a per-trial :class:`TrainingConfig`."""
        return TrainingConfig(
            env_id=env_id,
            max_episodes=self.max_episodes,
            max_steps_per_episode=self.max_steps_per_episode,
            solved_threshold=self.solved_threshold,
            solved_window=self.solved_window,
            reward_shaping=self.reward_shaping,
            success_steps=self.success_steps,
            stop_when_solved=self.stop_when_solved,
            record_lipschitz=self.record_lipschitz,
            seed=seed,
        )

    @staticmethod
    def from_training_config(config: TrainingConfig) -> "Budget":
        """Lift a legacy :class:`TrainingConfig` into a budget (drops env/seed)."""
        return Budget(
            max_episodes=config.max_episodes,
            max_steps_per_episode=config.max_steps_per_episode,
            solved_threshold=config.solved_threshold,
            solved_window=config.solved_window,
            reward_shaping=config.reward_shaping,
            success_steps=config.success_steps,
            stop_when_solved=config.stop_when_solved,
            record_lipschitz=config.record_lipschitz,
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, declaratively: grid axes x budget x seed derivation.

    Parameters
    ----------
    name:
        Display / registry name (``"figure4"``, ``"my-acrobot-sweep"``).
    kind:
        One of :data:`EXPERIMENT_KINDS`.  ``resource_table`` specs have no
        trials — the engine evaluates the analytical area model over
        ``hidden_sizes`` directly.
    designs, hidden_sizes, env_ids, n_seeds:
        The trial grid; one trial per (env, hidden size, design, seed index),
        expanded in that nesting order.
    seed, seed_stride, seed_mod:
        Parameters of the per-trial seed formula (see module docstring).
    budget:
        The training protocol; swap budgets to move between CI and paper
        scale without touching anything else.
    max_workers:
        Spec-level parallelism hint: caps the worker count (process pool
        size / distributed local fleet) when the caller of ``repro run`` /
        :func:`repro.api.engine.run` does not pass one explicitly.  ``None``
        (default) defers to the runner's own default.  Lets a spec that is,
        say, memory-hungry per trial ship its own cap without CLI flags.
    env_overrides:
        Optional per-environment adjustments for multi-family grids, keyed
        by env id.  Each entry may override :class:`Budget` fields (e.g.
        ``{"max_episodes": 30}`` to shorten one env's protocol) and/or carry
        an ``"env_params"`` dict forwarded to the env constructor (e.g.
        ``{"env_params": {"max_episode_steps": 50}}``).  An empty mapping is
        excluded from :meth:`canonical_json`, so specs that never use the
        feature keep their historical ``spec_hash`` — and their artifact
        caches — unchanged.
    """

    name: str
    kind: str = "training_curve"
    designs: Tuple[str, ...] = SOFTWARE_DESIGNS
    hidden_sizes: Tuple[int, ...] = (32, 64, 128, 192)
    env_ids: Tuple[str, ...] = ("CartPole-v0",)
    n_seeds: int = 1
    seed: int = 42
    gamma: float = 0.99
    budget: Budget = field(default_factory=Budget)
    seed_stride: int = 17
    seed_mod: int = 997
    description: str = ""
    max_workers: Optional[int] = None
    env_overrides: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "designs", tuple(self.designs))
        object.__setattr__(self, "hidden_sizes", tuple(int(h) for h in self.hidden_sizes))
        object.__setattr__(self, "env_ids", tuple(self.env_ids))
        if not self.name:
            raise ValueError("spec name must not be empty")
        if self.kind not in EXPERIMENT_KINDS:
            raise ValueError(f"unknown kind {self.kind!r}; choose from {EXPERIMENT_KINDS}")
        if not self.hidden_sizes or any(h <= 0 for h in self.hidden_sizes):
            raise ValueError("hidden_sizes must be non-empty and positive")
        if self.n_seeds <= 0:
            raise ValueError("n_seeds must be positive")
        if self.seed_mod <= 0:
            raise ValueError("seed_mod must be positive")
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError("max_workers must be positive or None")
        if self.kind != "resource_table":
            if not self.designs:
                raise ValueError("designs must not be empty")
            if not self.env_ids:
                raise ValueError("env_ids must not be empty")
            for design in self.designs:
                design_spec(design)          # raises on unknown names up-front
            if len(set(self.designs)) != len(self.designs):
                raise ValueError(f"duplicate designs in {self.designs}")
        if len(set(self.hidden_sizes)) != len(self.hidden_sizes):
            raise ValueError(f"duplicate hidden_sizes in {self.hidden_sizes}")
        if len(set(self.env_ids)) != len(self.env_ids):
            raise ValueError(f"duplicate env_ids in {self.env_ids}")
        overrides = {str(env_id): dict(entry)
                     for env_id, entry in dict(self.env_overrides).items()}
        object.__setattr__(self, "env_overrides", overrides)
        allowed = {f.name for f in fields(Budget)} | {"env_params"}
        for env_id, entry in overrides.items():
            if env_id not in self.env_ids:
                raise ValueError(
                    f"env_overrides names {env_id!r}, which is not in env_ids "
                    f"{self.env_ids}")
            unknown = set(entry) - allowed
            if unknown:
                raise ValueError(
                    f"env_overrides[{env_id!r}] has unknown keys {sorted(unknown)}; "
                    f"allowed: Budget fields and 'env_params'")
            env_params = entry.get("env_params")
            if env_params is not None and not isinstance(env_params, dict):
                raise ValueError(
                    f"env_overrides[{env_id!r}]['env_params'] must be a dict, "
                    f"got {type(env_params).__name__}")

    # ------------------------------------------------------------------ grid
    @property
    def n_trials(self) -> int:
        if self.kind == "resource_table":
            return 0
        return len(self.env_ids) * len(self.hidden_sizes) * len(self.designs) * self.n_seeds

    def grid(self) -> List[Tuple[str, int, str, int]]:
        """All (env_id, n_hidden, design, trial) cells, in expansion order."""
        return [(env_id, n_hidden, design, trial)
                for env_id in self.env_ids
                for n_hidden in self.hidden_sizes
                for design in self.designs
                for trial in range(self.n_seeds)]

    def trial_seed(self, design: str, n_hidden: int, trial: int = 0,
                   env_index: int = 0) -> int:
        """The deterministic per-trial seed (legacy-compatible for env 0)."""
        return (self.seed + 1000 * trial + self.seed_stride * int(n_hidden)
                + stable_hash(design) % self.seed_mod
                + _ENV_SEED_STRIDE * env_index)

    def env_budget(self, env_id: str) -> Budget:
        """The budget one environment trains under (base + its overrides)."""
        entry = self.env_overrides.get(env_id, {})
        budget_fields = {key: value for key, value in entry.items()
                         if key != "env_params"}
        return replace(self.budget, **budget_fields) if budget_fields else self.budget

    def env_params(self, env_id: str) -> Dict[str, Any]:
        """Constructor overrides one environment is built with."""
        return dict(self.env_overrides.get(env_id, {}).get("env_params", {}))

    def tasks(self) -> List["SweepTask"]:  # noqa: F821 - forward ref, imported below
        """Expand the grid into fully seeded, picklable sweep tasks.

        Observation/action dimensions come from the env registry's
        capability metadata inside ``SweepTask`` itself — nothing is
        hand-threaded here.
        """
        from repro.parallel.sweep import SweepTask

        if self.kind == "resource_table":
            return []
        tasks: List[SweepTask] = []
        for env_index, env_id in enumerate(self.env_ids):
            budget = self.env_budget(env_id)
            env_params = tuple(sorted(self.env_params(env_id).items()))
            for n_hidden in self.hidden_sizes:
                for design in self.designs:
                    for trial in range(self.n_seeds):
                        seed = self.trial_seed(design, n_hidden, trial, env_index)
                        training = budget.training_config(env_id=env_id, seed=seed)
                        if env_params:
                            training = replace(training, env_params=env_params)
                        tasks.append(SweepTask(
                            design=design,
                            env_id=env_id,
                            n_hidden=int(n_hidden),
                            gamma=self.gamma,
                            seed=seed,
                            trial=trial,
                            training=training,
                        ))
        return tasks

    # ------------------------------------------------------------------ variants
    def with_budget(self, budget: Optional[Budget] = None, **budget_fields: Any
                    ) -> "ExperimentSpec":
        """A copy with a new budget (or the current one with fields replaced)."""
        if budget is None:
            budget = replace(self.budget, **budget_fields)
        elif budget_fields:
            budget = replace(budget, **budget_fields)
        return replace(self, budget=budget)

    def with_grid(self, *, designs: Optional[Sequence[str]] = None,
                  hidden_sizes: Optional[Sequence[int]] = None,
                  env_ids: Optional[Sequence[str]] = None,
                  n_seeds: Optional[int] = None) -> "ExperimentSpec":
        """A copy with some grid axes replaced (budget and seeds untouched)."""
        changes: Dict[str, Any] = {}
        if designs is not None:
            changes["designs"] = tuple(designs)
        if hidden_sizes is not None:
            changes["hidden_sizes"] = tuple(hidden_sizes)
        if env_ids is not None:
            changes["env_ids"] = tuple(env_ids)
        if n_seeds is not None:
            changes["n_seeds"] = n_seeds
        return replace(self, **changes)

    # ------------------------------------------------------------------ JSON
    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form (lists instead of tuples), inverse of :meth:`from_json`."""
        data = asdict(self)
        data["designs"] = list(self.designs)
        data["hidden_sizes"] = list(self.hidden_sizes)
        data["env_ids"] = list(self.env_ids)
        data["format_version"] = SPEC_FORMAT_VERSION
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output (unknown keys rejected)."""
        payload = dict(data)
        payload.pop("format_version", None)
        budget_data = payload.pop("budget", None)
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        budget = Budget(**budget_data) if budget_data is not None else Budget()
        return cls(budget=budget, **payload)

    def canonical_json(self) -> str:
        """Key-sorted compact JSON — the content-addressing input.

        Pure *execution hints* (``max_workers``) are excluded: they change
        how fast a run executes, never what it computes (backend
        equivalence is the library's core guarantee), so two specs that
        differ only in hints share one identity, one run record and one
        set of cached trials.
        """
        data = self.to_json()
        data.pop("max_workers", None)
        if not data.get("env_overrides"):
            # Specs predating (or not using) per-env overrides keep their
            # historical hash — and their cached artifacts.
            data.pop("env_overrides", None)
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    @property
    def spec_hash(self) -> str:
        """Stable hex digest of the canonical JSON form."""
        return stable_digest(self.canonical_json())


__all__ = ["Budget", "EXPERIMENT_KINDS", "ExperimentSpec", "SPEC_FORMAT_VERSION"]
