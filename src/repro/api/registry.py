"""Named experiment registry: the deliverables behind ``repro run <name>``.

Every paper deliverable is registered here as a pair of
:class:`~repro.api.spec.ExperimentSpec` variants — ``paper`` (the full
Section 4 protocol) and ``ci`` (a minutes-scale budget the benchmark suite
and the CI workflow run on every push).  The two variants of one experiment
share the grid machinery, the seed formula and the execution engine; they
differ only in declarative fields.

Built-ins
---------
``figure4``
    Training curves of the six software designs (Section 4.3).
``figure5`` / ``table2``
    Execution time to complete CartPole-v0 under the PYNQ-Z1 latency model
    (Section 4.4; ``table2`` is an alias — the paper prints the same
    numbers as a table and as Figure 5's bars, and the alias shares the
    cache because both names resolve to the identical spec).
``table3``
    FPGA resource utilization of the OS-ELM Q-Network core (analytical
    area model; no training trials).
``autoscale`` / ``autoscale_ci``
    The systems env family: the software designs autoscaling the
    ``Autoscale-v0`` queueing workload (the ci variant shortens episodes
    through ``env_overrides``).

User specs register with :func:`register_experiment` — see
``examples/custom_experiment.py`` for an Acrobot/MountainCar scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.designs import DESIGN_NAMES, SOFTWARE_DESIGNS
from repro.api.spec import Budget, ExperimentSpec

#: Scale names accepted by :func:`get_spec` and the CLI.
SCALES = ("paper", "ci")

#: The minutes-scale budget shared by the built-in CI variants (matches the
#: budgets the legacy ``ci_scale()`` harness constructors always used).
CI_BUDGET = Budget(max_episodes=60, solved_threshold=60.0, solved_window=20)


@dataclass(frozen=True)
class RegisteredExperiment:
    """One registry entry: a name bound to its paper- and ci-scale specs."""

    name: str
    paper: ExperimentSpec
    ci: ExperimentSpec
    description: str = ""
    alias_of: Optional[str] = None     #: set when this name aliases another entry

    def spec(self, scale: str = "paper") -> ExperimentSpec:
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
        return self.paper if scale == "paper" else self.ci


_REGISTRY: Dict[str, RegisteredExperiment] = {}


def register_experiment(paper: ExperimentSpec, ci: Optional[ExperimentSpec] = None, *,
                        name: Optional[str] = None, description: str = "",
                        overwrite: bool = False) -> RegisteredExperiment:
    """Register an experiment under ``name`` (default: the paper spec's name).

    Parameters
    ----------
    paper:
        The full-scale spec.
    ci:
        The minutes-scale variant; defaults to ``paper`` itself when the
        experiment is already cheap.
    overwrite:
        Allow replacing an existing entry (built-ins are protected unless
        this is set).
    """
    entry_name = name or paper.name
    if entry_name in _REGISTRY and not overwrite:
        raise ValueError(
            f"experiment {entry_name!r} is already registered; pass overwrite=True "
            "to replace it")
    entry = RegisteredExperiment(name=entry_name, paper=paper, ci=ci or paper,
                                 description=description or paper.description)
    _REGISTRY[entry_name] = entry
    return entry


def register_alias(alias: str, target: str, *, overwrite: bool = False) -> RegisteredExperiment:
    """Register ``alias`` to resolve to the exact specs of ``target``.

    Because the specs are shared objects (identical hashes), runs under
    either name hit the same artifact-store entries.
    """
    entry = get_entry(target)
    if alias in _REGISTRY and not overwrite:
        raise ValueError(f"experiment {alias!r} is already registered")
    aliased = RegisteredExperiment(name=alias, paper=entry.paper, ci=entry.ci,
                                   description=f"alias of {target!r}: {entry.description}",
                                   alias_of=target)
    _REGISTRY[alias] = aliased
    return aliased


def unregister_experiment(name: str) -> None:
    """Remove an entry (primarily for tests); unknown names are a no-op."""
    _REGISTRY.pop(name, None)


def get_entry(name: str) -> RegisteredExperiment:
    """Look up a registry entry by name; raises ``KeyError`` with suggestions."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"no experiment named {name!r}; registered: {known}") from None


def get_spec(name: str, scale: str = "paper") -> ExperimentSpec:
    """Resolve a registered name to its spec at the requested scale."""
    return get_entry(name).spec(scale)


def list_experiments() -> List[RegisteredExperiment]:
    """All registry entries, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ---------------------------------------------------------------------- built-ins

def _register_builtins() -> None:
    figure4_paper = ExperimentSpec(
        name="figure4",
        kind="training_curve",
        designs=SOFTWARE_DESIGNS,
        hidden_sizes=(32, 64, 128, 192),
        seed=42,
        seed_stride=17,
        seed_mod=997,
        description="Training curves of the six software designs (Figure 4)",
    )
    figure4_ci = figure4_paper.with_grid(
        designs=("OS-ELM-L2-Lipschitz", "DQN"), hidden_sizes=(32,),
    ).with_budget(CI_BUDGET)
    register_experiment(figure4_paper, figure4_ci)

    figure5_paper = ExperimentSpec(
        name="figure5",
        kind="execution_time",
        designs=DESIGN_NAMES,
        hidden_sizes=(32, 64, 128, 192),
        seed=7,
        seed_stride=13,
        seed_mod=991,
        description="Modelled execution time to complete CartPole-v0 "
                    "(Figure 5 / Table 2)",
    )
    figure5_ci = figure5_paper.with_grid(
        designs=("OS-ELM-L2-Lipschitz", "DQN", "FPGA"), hidden_sizes=(32,),
    ).with_budget(CI_BUDGET)
    register_experiment(figure5_paper, figure5_ci)
    register_alias("table2", "figure5")

    table3 = ExperimentSpec(
        name="table3",
        kind="resource_table",
        hidden_sizes=(32, 64, 128, 192, 256),
        description="FPGA resource utilization of the OS-ELM core (Table 3)",
    )
    register_experiment(table3, table3)

    # The systems env family: the six software designs autoscaling a
    # queueing workload.  reward_shaping stays off — the env's own
    # latency/cost reward is the training signal — and the solved criterion
    # is on survival steps (episodes terminate on backlog overload).
    autoscale_paper = ExperimentSpec(
        name="autoscale",
        kind="training_curve",
        designs=SOFTWARE_DESIGNS,
        hidden_sizes=(32, 64, 128),
        env_ids=("Autoscale-v0",),
        n_seeds=3,
        seed=2718,
        seed_stride=19,
        seed_mod=983,
        budget=Budget(max_episodes=400, solved_threshold=350.0,
                      solved_window=50, reward_shaping=False),
        description="OS-ELM vs DQN designs autoscaling a queueing workload "
                    "(systems env family)",
    )
    autoscale_ci = ExperimentSpec(
        name="autoscale_ci",
        kind="training_curve",
        designs=("OS-ELM-L2-Lipschitz", "DQN"),
        hidden_sizes=(32,),
        env_ids=("Autoscale-v0",),
        n_seeds=1,
        seed=2718,
        seed_stride=19,
        seed_mod=983,
        budget=Budget(max_episodes=15, solved_threshold=45.0,
                      solved_window=10, reward_shaping=False),
        env_overrides={"Autoscale-v0": {"env_params": {"max_episode_steps": 50}}},
        description="Minutes-scale autoscale variant (short episodes via "
                    "env_overrides)",
    )
    register_experiment(autoscale_paper, autoscale_ci)
    # Also addressable directly (`repro run autoscale_ci`); both names
    # resolve to the identical spec object, so they share one cache.
    register_experiment(autoscale_ci)


_register_builtins()

__all__ = [
    "CI_BUDGET",
    "RegisteredExperiment",
    "SCALES",
    "get_entry",
    "get_spec",
    "list_experiments",
    "register_alias",
    "register_experiment",
    "unregister_experiment",
]
