"""Report adapters: engine output -> the tables/CSVs the harnesses printed.

The engine hands back raw per-trial :class:`~repro.rl.recording.TrainingResult`
objects; everything presentational lives here.  For the paper deliverables
the adapters reuse the legacy result containers
(:class:`~repro.experiments.training_curve.TrainingCurveResult`,
:class:`~repro.experiments.execution_time.ExecutionTimeResult`) so
``repro run figure4`` renders byte-identical summaries to what
``TrainingCurveExperiment.ci_scale().run().render()`` always printed — the
shim-equivalence tests pin this.

Execution-time projection happens here, not in the engine: cached trial
artifacts store platform-independent operation *counts*, and the PYNQ-Z1
latency model projects them at render time.  Re-reporting a finished run
under a different platform model is therefore free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.experiments.reporting import format_table, rows_to_csv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import RunReport
    from repro.experiments.execution_time import ExecutionTimeResult
    from repro.experiments.training_curve import TrainingCurveResult
    from repro.fpga.platform import PynqZ1Platform


def _is_simple(report: "RunReport") -> bool:
    """One trial per (design, hidden size): the legacy containers' key space."""
    spec = report.spec
    return spec.n_seeds == 1 and len(spec.env_ids) == 1


def training_curve_result(report: "RunReport") -> "TrainingCurveResult":
    """Collect a training-curve run into the legacy Figure 4 container."""
    from repro.experiments.training_curve import TrainingCurveResult

    if not _is_simple(report):
        raise ValueError(
            "TrainingCurveResult keys by (design, n_hidden); this run has "
            f"n_seeds={report.spec.n_seeds} and env_ids={report.spec.env_ids} — "
            "use RunReport.summary_rows() for the multi-seed/multi-env view")
    collected = TrainingCurveResult()
    for record in report.trials:
        collected.add(record.result)
    return collected


def execution_time_result(report: "RunReport", *,
                          platform: Optional["PynqZ1Platform"] = None
                          ) -> "ExecutionTimeResult":
    """Project a run's operation counts into the legacy Figure 5 container."""
    from repro.experiments.execution_time import ExecutionTimeResult, project_timing
    from repro.fpga.platform import PynqZ1Platform

    if not _is_simple(report):
        raise ValueError(
            "ExecutionTimeResult keys by (design, n_hidden); use "
            "RunReport.summary_rows() for the multi-seed/multi-env view")
    if platform is None:
        platform = PynqZ1Platform()
    collected = ExecutionTimeResult()
    for record in report.trials:
        collected.add(project_timing(record.result, platform))
    return collected


def summary_rows(report: "RunReport", *,
                 platform: Optional["PynqZ1Platform"] = None
                 ) -> List[Dict[str, object]]:
    """The run's summary table as dict rows (CSV-able, legacy-identical).

    For single-seed single-env runs of the paper kinds these are exactly the
    rows the legacy harnesses produced; multi-seed/multi-env runs get the
    same columns plus ``env_id`` and ``trial``.
    """
    spec = report.spec
    if spec.kind == "resource_table":
        return _resource_rows(report)
    if spec.kind == "execution_time":
        if _is_simple(report):
            return execution_time_result(report, platform=platform).summary_rows()
        return _extended_execution_rows(report, platform=platform)
    if _is_simple(report):
        return training_curve_result(report).summary_rows()
    return _extended_training_rows(report)


def render(report: "RunReport", *,
           platform: Optional["PynqZ1Platform"] = None) -> str:
    """Aligned text table of the run summary (legacy titles for paper kinds)."""
    spec = report.spec
    if spec.kind == "resource_table":
        from repro.experiments.resource_table import render_table3

        return render_table3(report.resource_report)
    if _is_simple(report):
        if spec.kind == "execution_time":
            return execution_time_result(report, platform=platform).render()
        return training_curve_result(report).render()
    return format_table(summary_rows(report, platform=platform),
                        title=f"{spec.name} summary ({len(report.trials)} trials, "
                              f"backend={report.backend})")


def summary_csv(report: "RunReport", *,
                platform: Optional["PynqZ1Platform"] = None) -> str:
    """The summary rows as CSV text (what the CI equivalence check diffs)."""
    return rows_to_csv(summary_rows(report, platform=platform))


# ---------------------------------------------------------------------- helpers

def _resource_rows(report: "RunReport") -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for row in report.resource_report.rows:
        cells: Dict[str, object] = {"Units": row.n_hidden, "fits": row.fits}
        for resource in ("BRAM", "DSP", "FF", "LUT"):
            value = row.utilization_percent.get(resource) if row.fits else None
            cells[f"{resource} [%]"] = None if value is None else round(value, 2)
        rows.append(cells)
    return rows


def _extended_training_rows(report: "RunReport") -> List[Dict[str, object]]:
    rows = []
    ordered = sorted(report.trials,
                     key=lambda r: (r.task.n_hidden, r.task.design,
                                    r.task.env_id, r.task.trial))
    for record in ordered:
        result = record.result
        rows.append({
            "design": result.design,
            "env_id": record.task.env_id,
            "trial": record.task.trial,
            "n_hidden": result.n_hidden,
            "solved": result.solved,
            "episodes": result.episodes,
            "episodes_to_solve": result.episodes_to_solve,
            "final_avg_steps": round(result.curve.final_average(), 1),
            "weight_resets": result.weight_resets,
        })
    return rows


def _extended_execution_rows(report: "RunReport", *,
                             platform: Optional["PynqZ1Platform"] = None
                             ) -> List[Dict[str, object]]:
    from repro.experiments.execution_time import project_timing
    from repro.fpga.platform import PynqZ1Platform

    if platform is None:
        platform = PynqZ1Platform()
    rows = []
    ordered = sorted(report.trials,
                     key=lambda r: (r.task.n_hidden, r.task.design,
                                    r.task.env_id, r.task.trial))
    for record in ordered:
        timing = project_timing(record.result, platform)
        rows.append({
            "design": timing.design,
            "env_id": record.task.env_id,
            "trial": record.task.trial,
            "n_hidden": timing.n_hidden,
            "solved": timing.solved,
            "episodes": timing.episodes,
            "modelled_seconds": round(timing.modelled_total, 3),
        })
    return rows


__all__ = ["execution_time_result", "render", "summary_csv", "summary_rows",
           "training_curve_result"]
