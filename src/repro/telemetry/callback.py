"""Trainer instrumentation: a Callback that feeds the metrics registry.

:class:`TelemetryCallback` plugs into the unified
:class:`~repro.training.trainer.Trainer` lifecycle and emits:

``trainer.episodes`` (counter)
    finished episodes across all trials.
``trainer.steps`` / ``trainer.frames`` (counters)
    decision points and environment frames (frames ≥ steps under action
    repeat).
``trainer.episode_steps`` (histogram, count buckets)
    episode length distribution — p50/p90/p99 episode steps.
``trainer.episode_seconds`` (histogram, latency buckets)
    wall time per episode.
``trainer.shaped_return`` (histogram, count buckets)
    per-episode shaped-reward sums.
``trainer.moving_average`` (gauge)
    last observed 100-episode moving average.
``trainer.trials_solved`` / ``trainer.trials_unsolved`` (counters)
    trial outcomes at train end.

The callback only *reads* the lifecycle events — it never touches agent,
environment or RNG state, so installing it cannot perturb training curves.
Note that defining ``on_step`` makes :class:`~repro.training.callbacks.CallbackList`
dispatch per-step events, which costs a Python call per decision point;
the sweep runner therefore only installs this callback while telemetry is
enabled.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.telemetry.registry import COUNT_BUCKETS, get_registry
from repro.training.callbacks import Callback, StepEvent


class TelemetryCallback(Callback):
    """Emit per-episode / per-step training metrics into the registry."""

    def __init__(self) -> None:
        registry = get_registry()
        self._episodes = registry.counter("trainer.episodes")
        self._steps = registry.counter("trainer.steps")
        self._frames = registry.counter("trainer.frames")
        self._episode_steps = registry.histogram(
            "trainer.episode_steps", COUNT_BUCKETS)
        self._episode_seconds = registry.histogram("trainer.episode_seconds")
        self._shaped_return = registry.histogram(
            "trainer.shaped_return", COUNT_BUCKETS)
        self._moving_average = registry.gauge("trainer.moving_average")
        self._solved = registry.counter("trainer.trials_solved")
        self._unsolved = registry.counter("trainer.trials_unsolved")
        self._episode_started: Dict[int, float] = {}

    def on_episode_start(self, trial: Any) -> None:
        self._episode_started[trial.index] = time.perf_counter()

    def on_step(self, trial: Any, event: StepEvent) -> None:
        self._steps.inc()
        self._frames.inc(event.frames)

    def on_episode_end(self, trial: Any, record: Any) -> None:
        self._episodes.inc()
        self._episode_steps.observe(record.steps)
        self._shaped_return.observe(record.shaped_return)
        self._moving_average.set(record.moving_average)
        started = self._episode_started.pop(trial.index, None)
        if started is not None:
            self._episode_seconds.observe(time.perf_counter() - started)

    def on_train_end(self, run: Any, results: List[Any]) -> None:
        for result in results:
            (self._solved if result.solved else self._unsolved).inc()


__all__ = ["TelemetryCallback"]
