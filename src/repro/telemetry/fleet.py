"""Client side of the broker ``STATS`` channel: ``repro fleet status``.

:func:`fetch_fleet_stats` opens a short-lived observer connection to a
live :class:`~repro.distributed.broker.SweepBroker`, performs the normal
``HELLO``/``WELCOME`` registration (with an id prefixed
:data:`~repro.distributed.protocol.OBSERVER_PREFIX` so the broker keeps
it out of the worker accounting), confirms the broker advertises the
``STATS`` capability, and returns one JSON-ready snapshot::

    {
      "tasks":   {"total": N, "queued": q, "leased": l, "done": d},
      "counters": {"requeued_tasks": ..., "duplicate_results": ...,
                   "wait_replies": ..., "workers_seen": ...,
                   "active_connections": ..., "drains_requested": ...,
                   "drains_completed": ..., "drain_requeued_tasks": ...},
      "workers": {worker_id: {"connected": bool, "draining": bool,
                              "last_seen_seconds_ago": float,
                              "completed": int, "leases": int,
                              "oldest_lease_age": float}, ...},
      "drain_seconds": [...],
      "transport": {"frames_sent": ..., "bytes_sent": ..., ...},
      "lease_batch": int, "heartbeat_timeout": float,
      "repro_version": "1.7.0"
    }

with ``queued + leased + done == total`` guaranteed by the broker.
:func:`format_fleet_status` renders the same snapshot as the aligned text
the CLI prints; ``repro fleet status --json`` emits the raw document.
"""

from __future__ import annotations

import socket
import uuid
from typing import Dict, List, Optional

from repro.distributed import protocol
from repro.experiments.reporting import format_table
from repro.utils.retry import RetryPolicy


class FleetStatusError(ConnectionError):
    """The broker could not be queried (unreachable, or predates STATS).

    ``transient`` distinguishes failures worth retrying (broker briefly
    unreachable, connection dropped mid-query) from definitive answers
    (capability missing, malformed reply) that no amount of retrying will
    change — the ``retry=`` path of the fleet clients backs off only on
    the former.
    """

    def __init__(self, message: str, *, transient: bool = False) -> None:
        super().__init__(message)
        self.transient = transient


def observer_id() -> str:
    """A fresh observer worker-id (never enters the broker's worker table)."""
    return f"{protocol.OBSERVER_PREFIX}-{uuid.uuid4().hex[:8]}"


def fetch_fleet_stats(host: str, port: int, *, timeout: float = 5.0,
                      retry: Optional[RetryPolicy] = None) -> Dict[str, object]:
    """Query one ``STATS`` snapshot from the broker at ``host:port``.

    With ``retry`` set, transient failures (broker unreachable or dropping
    the query — e.g. mid-restart from its journal) are retried on the
    policy's backoff schedule; definitive failures (no STATS capability,
    malformed reply) raise immediately either way.
    """
    if retry is not None:
        clock = retry.clock()
        while True:
            try:
                return fetch_fleet_stats(host, port, timeout=timeout)
            except FleetStatusError as error:
                if not error.transient:
                    raise
                clock.failed(error)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as error:
        raise FleetStatusError(
            f"cannot reach broker at {host}:{port}: {error}",
            transient=True) from error
    with sock:
        try:
            protocol.send_message(sock, protocol.HELLO, observer_id())
            kind, info = protocol.recv_message(sock)
            if kind != protocol.WELCOME:
                raise protocol.ProtocolError(f"expected WELCOME, got {kind!r}")
            if not (isinstance(info, dict) and info.get("stats")):
                raise FleetStatusError(
                    f"broker at {host}:{port} does not advertise the STATS "
                    "channel (repro < 1.5); upgrade the broker to use "
                    "`repro fleet status`")
            protocol.send_message(sock, protocol.STATS)
            kind, snapshot = protocol.recv_message(sock)
            if kind != protocol.STATS:
                raise protocol.ProtocolError(f"expected STATS, got {kind!r}")
        except FleetStatusError:
            raise
        except (ConnectionError, OSError) as error:
            raise FleetStatusError(
                f"broker at {host}:{port} dropped the stats query: "
                f"{error}", transient=True) from error
    if not isinstance(snapshot, dict):
        raise FleetStatusError(
            f"malformed STATS payload: {type(snapshot).__name__}")
    return snapshot


def format_fleet_status(snapshot: Dict[str, object]) -> str:
    """Render a STATS snapshot as the text ``repro fleet status`` prints."""
    tasks = snapshot.get("tasks", {})
    counters = snapshot.get("counters", {})
    transport = snapshot.get("transport", {})
    lines = [
        "fleet status (broker {version}, lease_batch={batch}, "
        "heartbeat_timeout={hb:g}s)".format(
            version=snapshot.get("repro_version", "?"),
            batch=snapshot.get("lease_batch", "?"),
            hb=float(snapshot.get("heartbeat_timeout", 0.0))),
        "tasks: {done}/{total} done, {queued} queued, {leased} leased".format(
            done=tasks.get("done", 0), total=tasks.get("total", 0),
            queued=tasks.get("queued", 0), leased=tasks.get("leased", 0)),
        "counters: requeued={requeued_tasks} duplicates={duplicate_results} "
        "waits={wait_replies} workers_seen={workers_seen} "
        "connections={active_connections}".format(
            **{key: counters.get(key, 0)
               for key in ("requeued_tasks", "duplicate_results",
                           "wait_replies", "workers_seen",
                           "active_connections")}),
        # Pre-1.7 brokers have no drain counters; render zeros either way
        # so `repro fleet status` output stays line-stable for scripts.
        "drains: requested={drains_requested} completed={drains_completed} "
        "lost_leases={drain_requeued_tasks}".format(
            **{key: counters.get(key, 0)
               for key in ("drains_requested", "drains_completed",
                           "drain_requeued_tasks")}),
        "transport: {frames_sent} frames out ({bytes_sent} B), "
        "{frames_received} frames in ({bytes_received} B)".format(
            **{key: transport.get(key, 0)
               for key in ("frames_sent", "bytes_sent",
                           "frames_received", "bytes_received")}),
    ]
    workers = snapshot.get("workers", {})
    if workers:
        rows: List[Dict[str, object]] = []
        for worker_id in sorted(workers):
            info = workers[worker_id]
            if not info.get("connected"):
                state = "gone"
            elif info.get("draining"):
                state = "draining"
            else:
                state = "up"
            rows.append({
                "worker": worker_id,
                "state": state,
                "last_seen": f"{float(info.get('last_seen_seconds_ago', 0.0)):.1f}s",
                "done": info.get("completed", 0),
                "leases": info.get("leases", 0),
                "oldest_lease": f"{float(info.get('oldest_lease_age', 0.0)):.1f}s",
            })
        lines.append("")
        lines.append(format_table(rows))
    else:
        lines.append("workers: none registered yet")
    return "\n".join(lines)


__all__ = ["FleetStatusError", "fetch_fleet_stats", "format_fleet_status",
           "observer_id"]
