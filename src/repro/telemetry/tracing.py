"""Lightweight tracing spans aggregated into wall-time trees.

Usage::

    from repro.telemetry import span

    with span("trial.episode"):
        ...

Spans nest: entering ``span("env.step")`` inside ``span("trial.episode")``
records time under the path ``trial.episode/env.step`` in a per-process
tree.  Each node aggregates *count* and *total seconds* — this is a profile
accumulator, not an event log, so memory stays bounded no matter how many
million spans fire.

This module also owns the **global telemetry switch** used by the whole
:mod:`repro.telemetry` package.  Telemetry is OFF by default; turn it on
with :func:`enable` or by setting ``REPRO_TELEMETRY=1`` in the environment
(which is inherited by spawned sweep workers).  While disabled,
:func:`span` returns a shared no-op context manager, so an instrumented
hot loop pays one global read and two trivial method calls per iteration —
below the noise floor of the throughput benchmarks.

Span aggregation is per-thread on the hot path (thread-local stack, no
lock until span exit) and thread-safe on merge.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict

_TRUTHY = ("1", "true", "yes", "on")

_ENABLED = os.environ.get("REPRO_TELEMETRY", "").strip().lower() in _TRUTHY


def enable() -> None:
    """Turn telemetry on for this process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn telemetry off (instrumentation reverts to no-ops)."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether telemetry is currently collecting."""
    return _ENABLED


class SpanNode:
    """One node of the aggregated span tree."""

    __slots__ = ("name", "count", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"count": self.count, "seconds": self.seconds}
        if self.children:
            doc["children"] = {name: child.to_dict()
                               for name, child in sorted(self.children.items())}
        return doc


class _ActiveSpan:
    """Context manager for one live span (hot path: no lock on enter)."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._local.stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        local = self._tracer._local
        path = tuple(local.stack)
        local.stack.pop()
        self._tracer._record(path, elapsed)


class _NullSpan:
    """Shared no-op stand-in returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Local(threading.local):
    def __init__(self) -> None:
        self.stack: list = []


class Tracer:
    """Aggregates nested spans into a name-keyed wall-time tree."""

    def __init__(self) -> None:
        self._local = _Local()
        self._lock = threading.Lock()
        self._root = SpanNode("")

    def span(self, name: str) -> _ActiveSpan:
        return _ActiveSpan(self, name)

    def _record(self, path: tuple, elapsed: float) -> None:
        with self._lock:
            node = self._root
            for name in path:
                node = node.child(name)
            node.count += 1
            node.seconds += elapsed

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready tree of every span path seen so far."""
        with self._lock:
            return {name: child.to_dict()
                    for name, child in sorted(self._root.children.items())}

    def reset(self) -> None:
        with self._lock:
            self._root = SpanNode("")


#: The process-global tracer instrumented code records into.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def span(name: str):
    """Context manager timing one named span (no-op while disabled)."""
    if not _ENABLED:
        return _NULL_SPAN
    return _TRACER.span(name)


def span_snapshot() -> Dict[str, Dict[str, object]]:
    return _TRACER.snapshot()


def reset_spans() -> None:
    _TRACER.reset()


__all__ = ["SpanNode", "Tracer", "disable", "enable", "enabled",
           "get_tracer", "reset_spans", "span", "span_snapshot"]
