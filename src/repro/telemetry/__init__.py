"""``repro.telemetry`` — metrics, tracing spans, and fleet observability.

The package has four parts:

* :mod:`repro.telemetry.registry` — process-local counters, gauges, and
  fixed-bucket histograms with p50/p90/p99 summaries.
* :mod:`repro.telemetry.tracing` — nested wall-time spans
  (``with span("trial.episode"): ...``) aggregated into a tree, plus the
  global on/off switch (:func:`enable` / ``REPRO_TELEMETRY=1``).
* :mod:`repro.telemetry.callback` — a :class:`TelemetryCallback` that
  plugs into the unified Trainer lifecycle and emits per-episode /
  per-step metrics.
* :mod:`repro.telemetry.fleet` — the ``STATS`` client behind
  ``repro fleet status``, querying a live ``SweepBroker``.

Telemetry is **off by default** and strictly off the numeric path: whether
enabled or disabled, training curves are byte-identical.  The convenience
emitters below (:func:`count`, :func:`observe`, :func:`set_gauge`) are
no-ops while disabled, so instrumented hot loops cost one global read per
event.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .registry import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .tracing import (
    SpanNode,
    Tracer,
    disable,
    enable,
    enabled,
    get_tracer,
    reset_spans,
    span,
    span_snapshot,
)


def count(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` (no-op while telemetry is disabled)."""
    if enabled():
        get_registry().counter(name).inc(amount)


def observe(name: str, value: float,
            buckets: Optional[Sequence[float]] = None) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled)."""
    if enabled():
        get_registry().histogram(name, buckets).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    if enabled():
        get_registry().gauge(name).set(value)


def snapshot() -> Dict[str, object]:
    """One JSON-serializable document of all telemetry in this process.

    This is the schema the engine writes to ``telemetry.json`` in the
    :class:`~repro.api.store.ArtifactStore` run directory.
    """
    from repro.distributed.protocol import transport_counters

    return {
        "enabled": enabled(),
        "metrics": get_registry().snapshot(),
        "spans": span_snapshot(),
        "transport": transport_counters().snapshot(),
    }


def reset() -> None:
    """Clear all metrics and spans (test isolation helper)."""
    get_registry().reset()
    reset_spans()


def __getattr__(name: str):
    # TelemetryCallback imports repro.training.callbacks, and the trainer
    # itself imports repro.telemetry for spans — resolve lazily to keep
    # `import repro.telemetry` cycle-free.
    if name == "TelemetryCallback":
        from .callback import TelemetryCallback

        return TelemetryCallback
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanNode",
    "TelemetryCallback",
    "Tracer",
    "count",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "observe",
    "reset",
    "reset_spans",
    "set_gauge",
    "snapshot",
    "span",
    "span_snapshot",
]
