"""Process-local metrics registry: counters, gauges and bucketed histograms.

One :class:`MetricsRegistry` per process collects everything the
instrumented layers emit — episode counts from the Trainer, env-step rates
from the vector envs, update latencies from the linear-algebra kernels,
transport traffic from the distributed backend.  The module-level registry
(:func:`get_registry`) is what the convenience emitters
(:func:`count` / :func:`observe` / :func:`set_gauge`) and the engine's
``telemetry.json`` snapshot use.

Telemetry is **strictly off the numeric path** and is gated by one global
switch (see :mod:`repro.telemetry`): every emitter is a no-op while
telemetry is disabled, so instrumented hot loops pay a single attribute
check.  Enabled or not, no metric ever feeds back into training arithmetic
— byte-identity of the curves is preserved either way.

Histograms use fixed bucket boundaries (geometric latency buckets by
default) and report p50/p90/p99 by linear interpolation inside the
containing bucket — the classic fixed-bucket estimator: cheap to update,
bounded memory, and accurate to the bucket resolution.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence

#: Default histogram bucket upper bounds: geometric latency buckets from
#: 10 microseconds to 30 seconds (values above the last bound land in a
#: +Inf overflow bucket).  Chosen to cover everything this library times,
#: from a Sherman-Morrison update to a full trial.
DEFAULT_BUCKETS = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Count-shaped histogram buckets (episode lengths, batch sizes, ...).
COUNT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500,
                 1_000, 2_000, 5_000, 10_000, 50_000)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, active trials, ...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    ``buckets`` are the inclusive upper bounds of each bucket, strictly
    increasing; observations above the last bound fall into an implicit
    overflow bucket whose percentile estimate is the observed maximum.
    """

    __slots__ = ("name", "buckets", "_counts", "_lock",
                 "count", "sum", "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)      # +1: overflow bucket
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from the buckets.

        The estimate interpolates linearly inside the containing bucket
        (lower edge 0 — or the observed minimum — for the first bucket);
        the overflow bucket reports the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target and bucket_count:
                    if index >= len(self.buckets):      # overflow bucket
                        return self.max
                    upper = self.buckets[index]
                    lower = (self.buckets[index - 1] if index
                             else min(self.min, upper))
                    fraction = 1.0 - (cumulative - target) / bucket_count
                    estimate = lower + (upper - lower) * fraction
                    # Never report outside the observed range.
                    return min(max(estimate, self.min), self.max)
            return self.max

    def summary(self) -> Dict[str, float]:
        """JSON-ready summary: count/sum/min/max/mean plus p50/p90/p99."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Create-on-first-use registry of named metrics (one per process)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, buckets if buckets is not None else DEFAULT_BUCKETS)
            return metric

    def names(self) -> List[str]:
        with self._lock:
            return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One JSON-serializable document of every metric's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: metric.value
                         for name, metric in sorted(counters.items())},
            "gauges": {name: metric.value
                       for name, metric in sorted(gauges.items())},
            "histograms": {name: metric.summary()
                           for name, metric in sorted(histograms.items())},
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry every instrumented layer emits into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


__all__ = ["COUNT_BUCKETS", "Counter", "DEFAULT_BUCKETS", "Gauge",
           "Histogram", "MetricsRegistry", "get_registry"]
