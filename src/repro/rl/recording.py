"""Deprecated location: these records moved to :mod:`repro.training.records`.

Kept as a re-export so historical imports (``from repro.rl.recording import
TrainingResult``) keep working; new code should import from
``repro.training`` (or ``repro.training.records``) directly.
"""

from __future__ import annotations

from repro.training.records import EpisodeRecord, TrainingCurve, TrainingResult

__all__ = ["EpisodeRecord", "TrainingCurve", "TrainingResult"]
