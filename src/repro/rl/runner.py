"""Deprecated front door of the serial training loop.

``train_agent`` used to implement Algorithm 1's outer loops by hand; the
loop now lives in :class:`repro.training.trainer.Trainer` (the one
canonical loop shared with the lock-step and DQN paths) and this module is
a thin compatibility wrapper.  Fixed-seed results are bit-for-bit identical
to the historical implementation — the equivalence suite pins this against
pre-refactor fixtures.

New code should use::

    from repro.training import Trainer, TrainingConfig
    result = Trainer().fit(agent, config=TrainingConfig(...))

``TrainingConfig`` itself moved to :mod:`repro.training.config` and is
re-exported here unchanged.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.agents import QLearningAgent
from repro.envs.core import Env
from repro.training.config import TrainingConfig
from repro.training.records import TrainingResult
from repro.training.trainer import resolve_env as _resolve_env
from repro.utils.seeding import spawn_seeds


def train_agent(agent: QLearningAgent, env: Union[str, Env, None] = None, *,
                config: TrainingConfig = TrainingConfig(),
                n_hidden: Optional[int] = None) -> TrainingResult:
    """Train ``agent`` until the task is solved or the episode budget is exhausted.

    .. deprecated:: 1.4
        Thin wrapper over :meth:`repro.training.Trainer.fit` (identical
        results; the Trainer additionally offers callbacks, action repeat
        and mid-trial checkpointing).

    Parameters
    ----------
    agent:
        Any agent implementing the :class:`~repro.training.protocols.AgentProtocol`
        interface.
    env:
        Environment instance, registered id, or ``None`` to build
        ``config.env_id``.
    config:
        Protocol parameters.
    n_hidden:
        Recorded in the result for reporting; inferred from the agent's
        config when omitted.
    """
    from repro.training.trainer import Trainer

    return Trainer().fit(agent, env, config=config, n_hidden=n_hidden)


def evaluate_agent(agent: QLearningAgent, env: Union[str, Env, None] = None, *,
                   n_episodes: int = 10, config: TrainingConfig = TrainingConfig()
                   ) -> np.ndarray:
    """Run greedy (no-exploration) evaluation episodes and return their lengths.

    When ``config.seed`` is set, each episode's initial state is drawn from
    its own :func:`~repro.utils.seeding.spawn_seeds`-derived seed, so the
    evaluation suite is reproducible episode-by-episode and independent of
    how much entropy training consumed from the environment's stream.
    """
    if n_episodes <= 0:
        raise ValueError("n_episodes must be positive")
    environment = _resolve_env(env, config)
    episode_seeds = (spawn_seeds(config.seed, n_episodes) if config.seed is not None
                     else [None] * n_episodes)
    lengths = np.zeros(n_episodes, dtype=int)
    for i in range(n_episodes):
        state, _ = environment.reset(seed=episode_seeds[i])
        steps = 0
        done = False
        while not done:
            action = agent.act(state, explore=False)
            result = environment.step(action)
            state = result.observation
            steps += 1
            done = result.done
        lengths[i] = steps
    return lengths


__all__ = ["TrainingConfig", "evaluate_agent", "train_agent"]
