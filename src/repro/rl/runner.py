"""The training loop implementing the paper's experimental protocol.

``train_agent`` runs Algorithm 1's outer loops (episodes × steps) for any
agent implementing the :class:`~repro.core.agents.QLearningAgent` interface,
with:

* optional reward shaping so the clipped targets stay in [-1, 1] (the paper's
  "maximum reward is 1 and minimum reward is -1" convention),
* the 100-episode moving-average solved criterion (195 steps for CartPole-v0),
* the 300-episode stall-reset rule applied to the ELM/OS-ELM designs,
* the 50,000-episode "impossible" cutoff.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.agents import QLearningAgent
from repro.core.clipping import shaped_cartpole_reward
from repro.envs.core import Env
from repro.envs.registry import make as make_env
from repro.rl.recording import EpisodeRecord, TrainingCurve, TrainingResult
from repro.utils.logging import get_logger
from repro.utils.metrics import SolvedCriterion
from repro.utils.seeding import spawn_seeds

_LOGGER = get_logger("repro.rl.runner")


@dataclass(frozen=True)
class TrainingConfig:
    """Protocol parameters for one training run (paper defaults)."""

    env_id: str = "CartPole-v0"
    max_episodes: int = 50_000            #: the paper's "impossible" cutoff
    max_steps_per_episode: Optional[int] = None   #: None -> use the env's own limit
    solved_threshold: float = 195.0
    solved_window: int = 100
    reward_shaping: bool = True           #: shape rewards into {-1, 0, +1}
    success_steps: int = 195              #: survival length counted as success by the shaper
    stop_when_solved: bool = True
    record_lipschitz: bool = False        #: record the Lipschitz bound each episode (ablation A1)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_episodes <= 0:
            raise ValueError("max_episodes must be positive")
        if self.solved_window <= 0:
            raise ValueError("solved_window must be positive")
        if self.solved_threshold <= 0:
            raise ValueError("solved_threshold must be positive")
        if self.success_steps <= 0:
            raise ValueError("success_steps must be positive")


def _resolve_env(env: Union[str, Env, None], config: TrainingConfig) -> Env:
    if env is None:
        env = config.env_id
    if isinstance(env, str):
        kwargs = {}
        if config.max_steps_per_episode is not None:
            kwargs["max_episode_steps"] = config.max_steps_per_episode
        return make_env(env, seed=config.seed, **kwargs)
    return env


def train_agent(agent: QLearningAgent, env: Union[str, Env, None] = None, *,
                config: TrainingConfig = TrainingConfig(),
                n_hidden: Optional[int] = None) -> TrainingResult:
    """Train ``agent`` until the task is solved or the episode budget is exhausted.

    Parameters
    ----------
    agent:
        Any agent implementing the QLearningAgent interface.
    env:
        Environment instance, registered id, or ``None`` to build
        ``config.env_id``.
    config:
        Protocol parameters.
    n_hidden:
        Recorded in the result for reporting; inferred from the agent's
        config when omitted.

    Returns
    -------
    TrainingResult with the training curve, solved status and the
    per-operation time breakdown accumulated by the agent.
    """
    environment = _resolve_env(env, config)
    if n_hidden is None:
        n_hidden = getattr(getattr(agent, "config", None), "n_hidden", 0)
    criterion = SolvedCriterion(config.solved_threshold, config.solved_window,
                                config.max_episodes)
    curve = TrainingCurve()
    start_wall = time.perf_counter()
    episodes_to_solve: Optional[int] = None
    solved = False

    for episode in range(1, config.max_episodes + 1):
        agent.begin_episode(episode)
        state, _ = environment.reset()
        steps = 0
        shaped_return = 0.0
        done = False
        while not done:
            action = agent.act(state)
            result = environment.step(action)
            steps += 1
            if config.reward_shaping:
                reward = shaped_cartpole_reward(result.terminated, result.truncated,
                                                steps, success_steps=config.success_steps)
            else:
                reward = result.reward
            shaped_return += reward
            agent.observe(state, action, reward, result.observation, result.done)
            state = result.observation
            done = result.done
        agent.end_episode(episode)

        now_solved = criterion.update(steps)
        record = EpisodeRecord(
            episode=episode,
            steps=steps,
            shaped_return=shaped_return,
            moving_average=criterion.average,
        )
        if config.record_lipschitz and hasattr(agent, "lipschitz_upper_bound"):
            record.lipschitz_bound = agent.lipschitz_upper_bound()
            if hasattr(agent, "beta_norm"):
                record.beta_norm = agent.beta_norm()
        curve.append(record)

        if now_solved and episodes_to_solve is None:
            episodes_to_solve = episode
            solved = True
            _LOGGER.info("task solved", design=agent.name, episode=episode,
                         n_hidden=n_hidden)
            if config.stop_when_solved:
                break
        if hasattr(agent, "register_progress"):
            agent.register_progress(now_solved)

    wall_time = time.perf_counter() - start_wall
    return TrainingResult(
        design=agent.name,
        n_hidden=int(n_hidden),
        solved=solved,
        episodes=len(curve),
        episodes_to_solve=episodes_to_solve,
        wall_time_seconds=wall_time,
        curve=curve,
        breakdown=agent.breakdown,
        weight_resets=getattr(agent, "weight_resets", 0),
        seed=config.seed,
    )


def evaluate_agent(agent: QLearningAgent, env: Union[str, Env, None] = None, *,
                   n_episodes: int = 10, config: TrainingConfig = TrainingConfig()
                   ) -> np.ndarray:
    """Run greedy (no-exploration) evaluation episodes and return their lengths.

    When ``config.seed`` is set, each episode's initial state is drawn from
    its own :func:`~repro.utils.seeding.spawn_seeds`-derived seed, so the
    evaluation suite is reproducible episode-by-episode and independent of
    how much entropy training consumed from the environment's stream.
    """
    if n_episodes <= 0:
        raise ValueError("n_episodes must be positive")
    environment = _resolve_env(env, config)
    episode_seeds = (spawn_seeds(config.seed, n_episodes) if config.seed is not None
                     else [None] * n_episodes)
    lengths = np.zeros(n_episodes, dtype=int)
    for i in range(n_episodes):
        state, _ = environment.reset(seed=episode_seeds[i])
        steps = 0
        done = False
        while not done:
            action = agent.act(state, explore=False)
            result = environment.step(action)
            state = result.observation
            steps += 1
            done = result.done
        lengths[i] = steps
    return lengths
