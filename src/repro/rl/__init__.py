"""Reinforcement-learning training infrastructure.

The runner drives any :class:`~repro.core.agents.QLearningAgent` (the ELM /
OS-ELM designs, the DQN baseline or the FPGA-accelerated agent) against a
:class:`~repro.envs.core.Env`, applying the paper's protocol: shaped rewards
for the clipped Q-targets, the 100-episode moving-average solved criterion,
the 300-episode stall-reset rule and the 50,000-episode "impossible" cutoff.
"""

from repro.rl.recording import EpisodeRecord, TrainingCurve, TrainingResult
from repro.rl.runner import TrainingConfig, evaluate_agent, train_agent
from repro.rl.schedule import ConstantSchedule, ExponentialDecaySchedule, LinearSchedule

__all__ = [
    "EpisodeRecord",
    "TrainingCurve",
    "TrainingResult",
    "TrainingConfig",
    "evaluate_agent",
    "train_agent",
    "ConstantSchedule",
    "ExponentialDecaySchedule",
    "LinearSchedule",
]
