"""Parameter schedules (exploration / learning-rate decay).

The paper keeps ``epsilon_1`` and ``epsilon_2`` constant, so the constant
schedule is the one actually used by the reproduction; linear and exponential
decay schedules are provided for the extension experiments (e.g. annealed
exploration on MountainCar, where constant exploration is insufficient).
"""

from __future__ import annotations

from repro.utils.validation import check_positive


class Schedule:
    """Maps a step index to a parameter value."""

    def value(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        return self.value(step)


class ConstantSchedule(Schedule):
    """Always returns the same value."""

    def __init__(self, value: float) -> None:
        self._value = float(value)

    def value(self, step: int) -> float:
        return self._value


class LinearSchedule(Schedule):
    """Linear interpolation from ``start`` to ``end`` over ``duration`` steps."""

    def __init__(self, start: float, end: float, duration: int) -> None:
        self.start = float(start)
        self.end = float(end)
        self.duration = int(check_positive(duration, name="duration"))

    def value(self, step: int) -> float:
        fraction = min(step / self.duration, 1.0)
        return self.start + fraction * (self.end - self.start)


class ExponentialDecaySchedule(Schedule):
    """Exponential decay from ``start`` toward ``end`` with per-step ``decay`` factor."""

    def __init__(self, start: float, end: float, decay: float) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self.start = float(start)
        self.end = float(end)
        self.decay = float(decay)

    def value(self, step: int) -> float:
        return self.end + (self.start - self.end) * (self.decay ** step)
