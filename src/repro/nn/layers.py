"""Trainable layers for the NumPy backprop framework."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.activations import Activation, Identity, get_activation
from repro.nn.initializers import get_initializer
from repro.utils.exceptions import ShapeError


class Layer:
    """Base class for layers participating in forward / backward passes."""

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``, caching parameter grads."""
        raise NotImplementedError

    @property
    def parameters(self) -> Dict[str, np.ndarray]:
        """Trainable parameters keyed by name (empty for stateless layers)."""
        return {}

    @property
    def gradients(self) -> Dict[str, np.ndarray]:
        """Gradients matching :attr:`parameters` (populated by ``backward``)."""
        return {}

    @property
    def n_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters.values()))


class Dense(Layer):
    """Fully-connected layer ``y = activation(x W + b)``.

    Parameters
    ----------
    n_inputs, n_outputs:
        Layer dimensions.
    activation:
        Activation name or instance (defaults to identity).
    rng:
        Generator used for weight initialisation.
    weight_init:
        Initializer name (default ``"he_uniform"``, appropriate for the ReLU
        networks used by the DQN baseline).
    use_bias:
        Whether to include the additive bias term.
    """

    def __init__(self, n_inputs: int, n_outputs: int, activation=None, *,
                 rng: Optional[np.random.Generator] = None,
                 weight_init: str = "he_uniform", use_bias: bool = True) -> None:
        if n_inputs <= 0 or n_outputs <= 0:
            raise ValueError("n_inputs and n_outputs must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        initializer = get_initializer(weight_init)
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs)
        self.activation: Activation = get_activation(activation) if activation is not None else Identity()
        self.use_bias = bool(use_bias)
        self.weights = initializer((self.n_inputs, self.n_outputs), rng)
        self.bias = np.zeros(self.n_outputs) if self.use_bias else None
        self._grad_weights = np.zeros_like(self.weights)
        self._grad_bias = np.zeros(self.n_outputs) if self.use_bias else None
        self._cache_input: Optional[np.ndarray] = None
        self._cache_preact: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ forward/backward
    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.n_inputs:
            raise ShapeError(
                f"Dense layer expects {self.n_inputs} inputs, got {x.shape[1]}"
            )
        preact = x @ self.weights
        if self.use_bias:
            preact = preact + self.bias
        if training:
            self._cache_input = x
            self._cache_preact = preact
        return self.activation.forward(preact)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None or self._cache_preact is None:
            raise RuntimeError("backward called before forward(training=True)")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.ndim == 1:
            grad_output = grad_output.reshape(1, -1)
        grad_preact = grad_output * self.activation.derivative(self._cache_preact)
        self._grad_weights = self._cache_input.T @ grad_preact
        if self.use_bias:
            self._grad_bias = grad_preact.sum(axis=0)
        return grad_preact @ self.weights.T

    # ------------------------------------------------------------------ parameter access
    @property
    def parameters(self) -> Dict[str, np.ndarray]:
        params = {"weights": self.weights}
        if self.use_bias:
            params["bias"] = self.bias
        return params

    @property
    def gradients(self) -> Dict[str, np.ndarray]:
        grads = {"weights": self._grad_weights}
        if self.use_bias:
            grads["bias"] = self._grad_bias
        return grads

    def set_parameters(self, params: Dict[str, np.ndarray]) -> None:
        """Overwrite parameters in place (used for target-network synchronisation)."""
        self.weights[...] = np.asarray(params["weights"], dtype=np.float64)
        if self.use_bias and "bias" in params:
            self.bias[...] = np.asarray(params["bias"], dtype=np.float64)

    def __repr__(self) -> str:
        return (f"Dense({self.n_inputs}, {self.n_outputs}, "
                f"activation={self.activation.name}, bias={self.use_bias})")
