"""A small NumPy neural-network framework (the PyTorch substitute).

The paper's baseline is a three-layer DQN trained with backpropagation, the
Adam optimizer (learning rate 0.01) and the Huber loss.  This subpackage
provides exactly the pieces that baseline needs — dense layers, ReLU/tanh
activations, MSE/Huber losses, SGD/Adam optimizers and a sequential
multi-layer perceptron with reverse-mode gradients — implemented with plain
NumPy so the whole reproduction runs on a laptop with no deep-learning
framework installed.
"""

from repro.nn.activations import Activation, Identity, ReLU, Sigmoid, Tanh, get_activation
from repro.nn.initializers import (
    he_normal,
    he_uniform,
    uniform,
    xavier_normal,
    xavier_uniform,
    zeros,
)
from repro.nn.layers import Dense, Layer
from repro.nn.losses import HuberLoss, Loss, MeanSquaredError, get_loss
from repro.nn.network import MLP, Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer, get_optimizer

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "get_activation",
    "he_normal",
    "he_uniform",
    "uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
    "Dense",
    "Layer",
    "HuberLoss",
    "Loss",
    "MeanSquaredError",
    "get_loss",
    "MLP",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "get_optimizer",
]
