"""Sequential multi-layer perceptron with reverse-mode gradients."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.linalg.spectral import lipschitz_constant_relu_network
from repro.nn.layers import Dense, Layer
from repro.nn.losses import Loss, get_loss
from repro.nn.optimizers import Optimizer, get_optimizer


class Sequential:
    """A stack of layers evaluated in order, trained with backpropagation."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)

    # ------------------------------------------------------------------ inference
    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass (no caches are written)."""
        return self.forward(x, training=False)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.predict(x)

    # ------------------------------------------------------------------ training
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train_step(self, x: np.ndarray, target: np.ndarray, loss: Loss,
                   optimizer: Optimizer) -> float:
        """One forward/backward/update cycle; returns the scalar loss value."""
        prediction = self.forward(x, training=True)
        target = np.asarray(target, dtype=np.float64)
        if target.ndim == 1:
            target = target.reshape(prediction.shape)
        loss_value, grad = loss(prediction, target)
        self.backward(grad)
        optimizer.step(self.layers)
        return loss_value

    # ------------------------------------------------------------------ parameter management
    def get_parameters(self) -> List[Dict[str, np.ndarray]]:
        """Deep copies of every layer's parameters (for target-network snapshots)."""
        return [
            {name: param.copy() for name, param in layer.parameters.items()}
            for layer in self.layers
        ]

    def set_parameters(self, parameters: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters previously produced by :meth:`get_parameters`."""
        if len(parameters) != len(self.layers):
            raise ValueError(
                f"expected parameters for {len(self.layers)} layers, got {len(parameters)}"
            )
        for layer, params in zip(self.layers, parameters):
            if hasattr(layer, "set_parameters"):
                layer.set_parameters(params)

    @property
    def n_parameters(self) -> int:
        return int(sum(layer.n_parameters for layer in self.layers))

    def weight_matrices(self) -> List[np.ndarray]:
        """All dense-layer weight matrices (for Lipschitz-constant accounting)."""
        return [layer.weights for layer in self.layers if isinstance(layer, Dense)]

    def lipschitz_upper_bound(self) -> float:
        """Product of per-layer spectral norms (Section 2.5's bound)."""
        return lipschitz_constant_relu_network(self.weight_matrices())

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"


class MLP(Sequential):
    """Convenience constructor for a fully-connected network.

    ``MLP(4, [64, 64], 2)`` builds the paper's three-layer DQN topology for
    CartPole: 4 state inputs, two hidden ReLU layers and 2 Q-value outputs.
    """

    def __init__(self, n_inputs: int, hidden_sizes: Sequence[int], n_outputs: int, *,
                 hidden_activation: str = "relu", output_activation: str = "identity",
                 rng: Optional[np.random.Generator] = None,
                 weight_init: str = "he_uniform") -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        sizes = [int(n_inputs)] + [int(h) for h in hidden_sizes] + [int(n_outputs)]
        if any(s <= 0 for s in sizes):
            raise ValueError(f"all layer sizes must be positive, got {sizes}")
        layers: List[Layer] = []
        for i in range(len(sizes) - 1):
            is_output = i == len(sizes) - 2
            layers.append(
                Dense(
                    sizes[i],
                    sizes[i + 1],
                    activation=output_activation if is_output else hidden_activation,
                    rng=rng,
                    weight_init=weight_init,
                )
            )
        super().__init__(layers)
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)

    def fit_regression(self, x: np.ndarray, y: np.ndarray, *, epochs: int = 100,
                       loss: str = "mse", optimizer: Optional[Optimizer] = None,
                       batch_size: Optional[int] = None,
                       rng: Optional[np.random.Generator] = None) -> List[float]:
        """Small batch-gradient-descent training loop (used by tests and examples)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        loss_fn = get_loss(loss)
        opt = optimizer if optimizer is not None else get_optimizer("adam", learning_rate=0.01)
        rng = rng if rng is not None else np.random.default_rng(0)
        history: List[float] = []
        n = x.shape[0]
        batch = n if batch_size is None else min(int(batch_size), n)
        for _ in range(int(epochs)):
            idx = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, batch):
                sel = idx[start:start + batch]
                epoch_loss += self.train_step(x[sel], y[sel], loss_fn, opt)
                n_batches += 1
            history.append(epoch_loss / max(n_batches, 1))
        return history
