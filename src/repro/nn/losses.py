"""Loss functions with gradients.

The DQN baseline uses the Huber loss (Equations 14–15 of the paper); the MSE
loss is provided both for testing and because the OS-ELM analysis (Equation
4/11) is framed as a squared-error minimisation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Loss:
    """Base class: scalar loss plus gradient with respect to the prediction."""

    name = "loss"

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray
                 ) -> Tuple[float, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        return self.forward(prediction, target), self.backward(prediction, target)


class MeanSquaredError(Loss):
    """Mean squared error ``mean((y - t)^2) / 2`` with gradient ``(y - t) / n``."""

    name = "mse"

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        diff = prediction - target
        return float(0.5 * np.mean(diff * diff))

    def backward(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        return (prediction - target) / prediction.size


class HuberLoss(Loss):
    """Huber loss (Equation 14/15): quadratic inside ``delta``, linear outside.

    With ``delta=1`` this is exactly the paper's DQN loss: ``z_i = (x-y)^2/2``
    when ``|x-y| < 1`` and ``|x-y| - 1/2`` otherwise, averaged over elements.
    """

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        diff = prediction - target
        abs_diff = np.abs(diff)
        quadratic = 0.5 * diff * diff
        linear = self.delta * (abs_diff - 0.5 * self.delta)
        return float(np.mean(np.where(abs_diff < self.delta, quadratic, linear)))

    def backward(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        diff = prediction - target
        grad = np.clip(diff, -self.delta, self.delta)
        return grad / prediction.size


_LOSSES = {"mse": MeanSquaredError, "huber": HuberLoss}


def get_loss(name_or_instance) -> Loss:
    """Resolve a loss from a name string or pass through an instance."""
    if isinstance(name_or_instance, Loss):
        return name_or_instance
    name = str(name_or_instance).lower()
    if name not in _LOSSES:
        raise ValueError(f"unknown loss {name!r}; choose from {sorted(_LOSSES)}")
    return _LOSSES[name]()
