"""Gradient-descent optimizers.

The paper trains the DQN baseline with Adam at a learning rate of 0.01;
plain SGD (with optional momentum) is included for comparison tests.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.layers import Layer


class Optimizer:
    """Base optimizer operating on a list of layers' parameters/gradients."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.steps = 0

    def step(self, layers: List[Layer]) -> None:
        """Apply one update using the gradients cached in ``layers``."""
        self.steps += 1
        for layer_index, layer in enumerate(layers):
            params = layer.parameters
            grads = layer.gradients
            for name, param in params.items():
                grad = grads.get(name)
                if grad is None:
                    continue
                self._update_parameter(f"{layer_index}.{name}", param, grad)

    def _update_parameter(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[str, np.ndarray] = {}

    def _update_parameter(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.momentum > 0:
            velocity = self._velocity.setdefault(key, np.zeros_like(param))
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity
        else:
            param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) — the paper's DQN optimizer (lr=0.01)."""

    def __init__(self, learning_rate: float = 0.01, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t: Dict[str, int] = {}

    def _update_parameter(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


_OPTIMIZERS = {"sgd": SGD, "adam": Adam}


def get_optimizer(name_or_instance, **kwargs) -> Optimizer:
    """Resolve an optimizer from a name string (with kwargs) or pass an instance through."""
    if isinstance(name_or_instance, Optimizer):
        return name_or_instance
    name = str(name_or_instance).lower()
    if name not in _OPTIMIZERS:
        raise ValueError(f"unknown optimizer {name!r}; choose from {sorted(_OPTIMIZERS)}")
    return _OPTIMIZERS[name](**kwargs)
