"""Weight initializers.

ELM / OS-ELM initialise their input weights ``alpha`` with uniform random
values in [0, 1] (Algorithm 1, line 1); the DQN baseline uses He/Xavier
initialisation appropriate for ReLU hidden layers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, *, low: float = 0.0,
            high: float = 1.0) -> np.ndarray:
    """Uniform initialisation in [low, high) — the paper's alpha initialiser with defaults."""
    if low >= high:
        raise ValueError(f"low ({low}) must be < high ({high})")
    return rng.uniform(low, high, size=shape)


def zeros(shape: Tuple[int, ...], rng: np.random.Generator = None) -> np.ndarray:
    """All-zero initialisation (biases, initial beta before training)."""
    return np.zeros(shape, dtype=np.float64)


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (suited to tanh/sigmoid layers)."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation (suited to ReLU layers, used by the DQN baseline)."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initialisation."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


_INITIALIZERS = {
    "uniform": uniform,
    "zeros": zeros,
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    if name not in _INITIALIZERS:
        raise ValueError(f"unknown initializer {name!r}; choose from {sorted(_INITIALIZERS)}")
    return _INITIALIZERS[name]
