"""Activation functions with forward and derivative evaluation.

The paper uses ReLU as the activation ``G`` in both the ELM/OS-ELM hidden
layer and the DQN baseline; tanh and sigmoid are provided because they are
the classical ELM activations and are 1-Lipschitz (relevant to the
Lipschitz-constant discussion in Section 2.5).
"""

from __future__ import annotations

import numpy as np


class Activation:
    """Base class: a differentiable element-wise function."""

    name = "activation"
    #: Lipschitz constant of the activation (<= 1 for all provided activations).
    lipschitz_constant = 1.0

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def derivative(self, x: np.ndarray) -> np.ndarray:
        """Derivative with respect to the pre-activation ``x``."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(np.asarray(x, dtype=np.float64))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ReLU(Activation):
    """Rectified linear unit ``G(x) = max(x, 0)`` (the paper's activation)."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return (x > 0.0).astype(np.float64)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        t = np.tanh(x)
        return 1.0 - t * t


class Sigmoid(Activation):
    """Logistic sigmoid (Lipschitz constant 1/4)."""

    name = "sigmoid"
    lipschitz_constant = 0.25

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        expx = np.exp(x[~pos])
        out[~pos] = expx / (1.0 + expx)
        return out

    def derivative(self, x: np.ndarray) -> np.ndarray:
        s = self.forward(x)
        return s * (1.0 - s)


class Identity(Activation):
    """Linear pass-through (output layers of regression networks)."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.ones_like(x, dtype=np.float64)


class LeakyReLU(Activation):
    """Leaky ReLU with configurable negative slope."""

    name = "leaky_relu"

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = float(negative_slope)
        self.lipschitz_constant = max(1.0, self.negative_slope)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.where(x >= 0, x, self.negative_slope * x)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.where(x >= 0, 1.0, self.negative_slope)


_ACTIVATIONS = {
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "identity": Identity,
    "linear": Identity,
    "leaky_relu": LeakyReLU,
}


def get_activation(name_or_instance) -> Activation:
    """Resolve an activation from a name string or pass through an instance."""
    if isinstance(name_or_instance, Activation):
        return name_or_instance
    name = str(name_or_instance).lower()
    if name not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}")
    return _ACTIVATIONS[name]()
