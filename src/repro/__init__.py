"""repro: reproduction of "An FPGA-Based On-Device Reinforcement Learning
Approach using Online Sequential Learning" (Watanabe, Tsukada & Matsutani).

The package implements the paper's OS-ELM Q-Network approach to on-device
reinforcement learning together with every substrate it needs: a Gym-style
environment suite, a NumPy backpropagation framework for the DQN baseline,
32-bit Q20 fixed-point arithmetic, and resource / latency models of the
PYNQ-Z1 FPGA platform.

Quickstart
----------
Every paper deliverable runs through the unified experiment API::

    python -m repro run figure4 --ci --backend vectorized

or programmatically:

>>> from repro import run_experiment
>>> report = run_experiment("figure4", scale="ci")
>>> print(report.render())              # doctest: +SKIP

Single agents train directly:

>>> from repro import make_design, train_agent, TrainingConfig
>>> agent = make_design("OS-ELM-L2-Lipschitz", n_hidden=32, seed=0)
>>> result = train_agent(agent, config=TrainingConfig(max_episodes=200))
>>> result.solved, result.episodes      # doctest: +SKIP

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
table/figure reproduction harnesses.
"""

from repro.core import (
    AgentConfig,
    DESIGN_NAMES,
    ELM,
    ELMQAgent,
    OSELM,
    OSELMQAgent,
    QFunction,
    RegularizationConfig,
    design_spec,
    make_design,
)
from repro.baselines import DQNAgent, DQNConfig
from repro.envs import make as make_env
from repro.fpga import (
    FPGAAcceleratedOSELM,
    OSELMCoreResourceModel,
    PYNQ_Z1,
    PynqZ1Platform,
    XC7Z020,
)
from repro.fixedpoint import Q20, QFormat
from repro.rl import TrainingConfig, TrainingResult, evaluate_agent, train_agent
from repro.training import (
    AgentProtocol,
    Callback,
    CheckpointCallback,
    MetricsRecorder,
    ProgressCallback,
    Trainer,
)
from repro.parallel import (
    AsyncVectorEnv,
    SubprocVectorEnv,
    SweepResult,
    SweepRunner,
    SweepSpec,
    SyncVectorEnv,
    evaluate_agent_vectorized,
    make_vector,
    pipelined_rollout,
    train_agents_lockstep,
)
from repro.distributed import SweepBroker, run_distributed_sweep, run_worker
from repro import telemetry
from repro.serving import (
    MicroBatcher,
    PolicyClient,
    PolicyServer,
    WeightPushCallback,
    load_spec_policies,
)
from repro.api import (
    ArtifactStore,
    Budget,
    ExperimentSpec,
    RunReport,
    get_spec,
    list_experiments,
    register_experiment,
)
from repro.api import run as run_experiment

__version__ = "1.8.0"

__all__ = [
    "AgentConfig",
    "DESIGN_NAMES",
    "ELM",
    "ELMQAgent",
    "OSELM",
    "OSELMQAgent",
    "QFunction",
    "RegularizationConfig",
    "design_spec",
    "make_design",
    "DQNAgent",
    "DQNConfig",
    "make_env",
    "FPGAAcceleratedOSELM",
    "OSELMCoreResourceModel",
    "PYNQ_Z1",
    "PynqZ1Platform",
    "XC7Z020",
    "Q20",
    "QFormat",
    "TrainingConfig",
    "TrainingResult",
    "evaluate_agent",
    "train_agent",
    "AgentProtocol",
    "Callback",
    "CheckpointCallback",
    "MetricsRecorder",
    "ProgressCallback",
    "Trainer",
    "AsyncVectorEnv",
    "SubprocVectorEnv",
    "SweepBroker",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SyncVectorEnv",
    "evaluate_agent_vectorized",
    "make_vector",
    "pipelined_rollout",
    "run_distributed_sweep",
    "run_worker",
    "train_agents_lockstep",
    "MicroBatcher",
    "PolicyClient",
    "PolicyServer",
    "WeightPushCallback",
    "load_spec_policies",
    "ArtifactStore",
    "Budget",
    "ExperimentSpec",
    "RunReport",
    "get_spec",
    "list_experiments",
    "register_experiment",
    "run_experiment",
    "telemetry",
    "__version__",
]
