"""Observation / action spaces (Gym-compatible subset)."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.utils.seeding import np_random


class Space:
    """Base class describing a set of valid values."""

    def __init__(self, shape: Optional[Tuple[int, ...]] = None, dtype=None,
                 seed: Optional[int] = None) -> None:
        self.shape = tuple(shape) if shape is not None else None
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self._rng, _ = np_random(seed)

    def seed(self, seed: Optional[int] = None) -> int:
        """Re-seed the space's sampling RNG and return the seed used."""
        self._rng, used = np_random(seed)
        return used

    def sample(self):
        """Draw a uniformly random element of the space."""
        raise NotImplementedError

    def contains(self, x) -> bool:
        """Whether ``x`` is a valid member of the space."""
        raise NotImplementedError

    def __contains__(self, x) -> bool:
        return self.contains(x)


class Discrete(Space):
    """A finite set ``{start, ..., start + n - 1}`` of integer actions."""

    def __init__(self, n: int, *, start: int = 0, seed: Optional[int] = None) -> None:
        if n <= 0:
            raise ValueError(f"Discrete space requires n > 0, got {n}")
        super().__init__(shape=(), dtype=np.int64, seed=seed)
        self.n = int(n)
        self.start = int(start)

    def sample(self) -> int:
        return int(self._rng.integers(self.start, self.start + self.n))

    def contains(self, x) -> bool:
        if isinstance(x, (np.generic, np.ndarray)):
            if np.asarray(x).shape != ():
                return False
            x = np.asarray(x).item()
        if not isinstance(x, (int, np.integer)) or isinstance(x, bool):
            return False
        return self.start <= int(x) < self.start + self.n

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Discrete) and other.n == self.n and other.start == self.start

    def __repr__(self) -> str:
        return f"Discrete({self.n})" if self.start == 0 else f"Discrete({self.n}, start={self.start})"


class Box(Space):
    """A (possibly unbounded) axis-aligned box in R^n."""

    def __init__(self, low: Union[float, np.ndarray], high: Union[float, np.ndarray],
                 shape: Optional[Tuple[int, ...]] = None, dtype=np.float64,
                 seed: Optional[int] = None) -> None:
        low_arr = np.asarray(low, dtype=np.float64)
        high_arr = np.asarray(high, dtype=np.float64)
        if shape is None:
            shape = np.broadcast(low_arr, high_arr).shape
        self.low = np.broadcast_to(low_arr, shape).astype(np.float64).copy()
        self.high = np.broadcast_to(high_arr, shape).astype(np.float64).copy()
        if np.any(self.low > self.high):
            raise ValueError("low must be element-wise <= high")
        super().__init__(shape=shape, dtype=dtype, seed=seed)

    @property
    def bounded_below(self) -> np.ndarray:
        return np.isfinite(self.low)

    @property
    def bounded_above(self) -> np.ndarray:
        return np.isfinite(self.high)

    def is_bounded(self) -> bool:
        return bool(np.all(self.bounded_below) and np.all(self.bounded_above))

    def sample(self) -> np.ndarray:
        """Sample uniformly on bounded axes, from a unit normal / exponential tail otherwise."""
        sample = np.empty(self.shape, dtype=np.float64)
        below, above = self.bounded_below, self.bounded_above
        both = below & above
        neither = ~below & ~above
        only_low = below & ~above
        only_high = ~below & above
        sample[both] = self._rng.uniform(self.low[both], self.high[both])
        sample[neither] = self._rng.standard_normal(int(neither.sum()))
        sample[only_low] = self.low[only_low] + self._rng.exponential(size=int(only_low.sum()))
        sample[only_high] = self.high[only_high] - self._rng.exponential(size=int(only_high.sum()))
        return sample.astype(self.dtype)

    def contains(self, x) -> bool:
        arr = np.asarray(x, dtype=np.float64)
        if arr.shape != self.shape:
            return False
        return bool(np.all(arr >= self.low) and np.all(arr <= self.high))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Box) and other.shape == self.shape
                and np.allclose(other.low, self.low) and np.allclose(other.high, self.high))

    def __repr__(self) -> str:
        return f"Box(shape={self.shape}, low={self.low.min():.3g}, high={self.high.max():.3g})"
