"""CartPole (inverted pendulum) environment.

This is the task the paper evaluates on ("OpenAI Gym CartPole-v0 that tries
to make an inverted pendulum stand longer").  The dynamics follow the
classical Barto, Sutton & Anderson (1983) formulation used by Gym's
``CartPole-v0``:

* state: ``[cart position, cart velocity, pole angle, pole tip velocity]``
* actions: 0 = push left, 1 = push right (force of ±10 N)
* reward: +1 per step survived
* termination: |position| > 2.4 m or |angle| > 12° (the paper's Table 2
  quotes the *observation-space* angle bound of ±41.8° ≈ ±0.418×2 rad; the
  episode itself terminates at ±12° exactly as in Gym)
* Euler integration at 0.02 s per step.

``CartPole-v0`` truncates episodes at 200 steps with a solved threshold of
195; ``CartPole-v1`` at 500 steps / 475.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

from repro.envs.core import Env, StepResult
from repro.envs.spaces import Box, Discrete


@dataclass(frozen=True)
class CartPoleParams:
    """Physical constants of the cart-pole system (Gym defaults)."""

    gravity: float = 9.8                #: m/s^2
    cart_mass: float = 1.0              #: kg
    pole_mass: float = 0.1              #: kg
    pole_half_length: float = 0.5       #: m (distance to the pole's centre of mass)
    force_magnitude: float = 10.0       #: N applied per action
    tau: float = 0.02                   #: integration timestep, s
    position_threshold: float = 2.4     #: m, termination bound on |x|
    angle_threshold_degrees: float = 12.0  #: termination bound on |theta|

    @property
    def total_mass(self) -> float:
        return self.cart_mass + self.pole_mass

    @property
    def pole_mass_length(self) -> float:
        return self.pole_mass * self.pole_half_length

    @property
    def angle_threshold(self) -> float:
        """Termination angle in radians."""
        return self.angle_threshold_degrees * 2.0 * math.pi / 360.0


class CartPoleEnv(Env):
    """The CartPole balancing task.

    Parameters
    ----------
    max_episode_steps:
        Episode truncation horizon (200 for v0, 500 for v1).  ``None``
        disables truncation (pure physics).
    params:
        Physical constants; defaults match Gym.
    seed:
        Seed for the initial-state RNG.
    """

    def __init__(self, *, max_episode_steps: int = 200,
                 params: CartPoleParams = CartPoleParams(), seed: int = None) -> None:
        super().__init__(seed=seed)
        self.params = params
        self.max_episode_steps = max_episode_steps if max_episode_steps is None else int(max_episode_steps)
        # Observation-space bounds: position/angle limits are twice the
        # termination thresholds (as in Gym, and as quoted by the paper's
        # Table 2: pole angle ±41.8 degrees = 2 * 12 degrees in radians
        # rendered in degrees of the observation bound, cart position ±2.4).
        high = np.array(
            [
                params.position_threshold * 2.0,
                np.inf,
                params.angle_threshold * 2.0,
                np.inf,
            ],
            dtype=np.float64,
        )
        self.observation_space = Box(-high, high, seed=seed)
        self.action_space = Discrete(2, seed=None if seed is None else seed + 1)
        self.state: np.ndarray = np.zeros(4)
        self._steps = 0
        self._steps_beyond_terminated = 0

    # ------------------------------------------------------------------ dynamics
    def _reset(self) -> Tuple[np.ndarray, Dict[str, Any]]:
        self.state = self._rng.uniform(-0.05, 0.05, size=4)
        self._steps = 0
        self._steps_beyond_terminated = 0
        return self.state.copy(), {}

    def _dynamics(self, state: np.ndarray, action: int) -> np.ndarray:
        """One Euler step of the cart-pole equations of motion."""
        p = self.params
        x, x_dot, theta, theta_dot = state
        force = p.force_magnitude if action == 1 else -p.force_magnitude
        cos_theta = math.cos(theta)
        sin_theta = math.sin(theta)
        temp = (force + p.pole_mass_length * theta_dot**2 * sin_theta) / p.total_mass
        theta_acc = (p.gravity * sin_theta - cos_theta * temp) / (
            p.pole_half_length * (4.0 / 3.0 - p.pole_mass * cos_theta**2 / p.total_mass)
        )
        x_acc = temp - p.pole_mass_length * theta_acc * cos_theta / p.total_mass
        return np.array(
            [
                x + p.tau * x_dot,
                x_dot + p.tau * x_acc,
                theta + p.tau * theta_dot,
                theta_dot + p.tau * theta_acc,
            ]
        )

    @staticmethod
    def batch_dynamics(states: np.ndarray, actions: np.ndarray,
                       params: CartPoleParams) -> np.ndarray:
        """Vectorized :meth:`_dynamics` over a ``(K, 4)`` batch of states.

        Element-for-element the same Euler step as the scalar path, computed
        with array operations so a vector environment can advance ``K``
        cart-poles in one call.  Used by the :mod:`repro.parallel` fast path.
        """
        states = np.asarray(states, dtype=np.float64)
        actions = np.asarray(actions)
        x_dot = states[:, 1]
        theta = states[:, 2]
        theta_dot = states[:, 3]
        pole_mass_length = params.pole_mass_length
        total_mass = params.total_mass
        force = np.where(actions == 1, params.force_magnitude, -params.force_magnitude)
        cos_theta = np.cos(theta)
        sin_theta = np.sin(theta)
        temp = (force + pole_mass_length * theta_dot**2 * sin_theta) / total_mass
        theta_acc = (params.gravity * sin_theta - cos_theta * temp) / (
            params.pole_half_length
            * (4.0 / 3.0 - params.pole_mass * cos_theta**2 / total_mass)
        )
        x_acc = temp - pole_mass_length * theta_acc * cos_theta / total_mass
        out = np.empty_like(states)
        out[:, 0] = states[:, 0] + params.tau * x_dot
        out[:, 1] = x_dot + params.tau * x_acc
        out[:, 2] = theta + params.tau * theta_dot
        out[:, 3] = theta_dot + params.tau * theta_acc
        return out

    @staticmethod
    def batch_dynamics_scalar(rows, actions, params: CartPoleParams):
        """Scalar-Python twin of :meth:`batch_dynamics` for small batches.

        Takes and returns plain lists (``rows`` of 4-float lists, one action
        per row) and also reports per-row termination, so a caller driving a
        handful of cart-poles avoids every NumPy ufunc dispatch.  The
        arithmetic is expression-for-expression the same Euler step as
        :meth:`_dynamics` / :meth:`batch_dynamics`; keep the three in sync.

        Returns ``(new_rows, terminated_flags)``.
        """
        force_mag = params.force_magnitude
        pml = params.pole_mass_length
        total_mass = params.total_mass
        gravity = params.gravity
        half_length = params.pole_half_length
        pole_mass = params.pole_mass
        tau = params.tau
        x_threshold = params.position_threshold
        theta_threshold = params.angle_threshold
        term_flags = []
        for i, (x, x_dot, theta, theta_dot) in enumerate(rows):
            force = force_mag if actions[i] == 1 else -force_mag
            cos_theta = math.cos(theta)
            sin_theta = math.sin(theta)
            temp = (force + pml * theta_dot**2 * sin_theta) / total_mass
            theta_acc = (gravity * sin_theta - cos_theta * temp) / (
                half_length * (4.0 / 3.0 - pole_mass * cos_theta**2 / total_mass)
            )
            x_acc = temp - pml * theta_acc * cos_theta / total_mass
            x = x + tau * x_dot
            theta = theta + tau * theta_dot
            rows[i] = [x, x_dot + tau * x_acc, theta, theta_dot + tau * theta_acc]
            term_flags.append(abs(x) > x_threshold or abs(theta) > theta_threshold)
        return rows, term_flags

    def _step(self, action) -> StepResult:
        action = int(np.asarray(action).item())
        self.state = self._dynamics(self.state, action)
        self._steps += 1
        x, _, theta, _ = self.state
        terminated = bool(
            abs(x) > self.params.position_threshold
            or abs(theta) > self.params.angle_threshold
        )
        truncated = bool(
            self.max_episode_steps is not None and self._steps >= self.max_episode_steps
        )
        if terminated:
            self._steps_beyond_terminated += 1
        reward = 1.0
        return StepResult(self.state.copy(), reward, terminated, truncated,
                          {"steps": self._steps})

    # ------------------------------------------------------------------ metadata
    @property
    def observation_bounds_table(self) -> Dict[str, Tuple[float, float]]:
        """The paper's Table 2: min/max of each observation dimension.

        Pole angle bounds are reported in degrees as the paper does
        (±41.8 degrees); velocities are unbounded.
        """
        pos = self.params.position_threshold * 2.0
        angle_deg = math.degrees(self.params.angle_threshold * 2.0)
        return {
            "cart_position": (-pos, pos),
            "cart_velocity": (-math.inf, math.inf),
            "pole_angle_degrees": (-angle_deg, angle_deg),
            "pole_velocity_at_tip": (-math.inf, math.inf),
        }
