"""MountainCar environment (discrete actions).

One of the "other reinforcement tasks" the paper lists as future work
(Section 5).  An under-powered car must rock back and forth to reach the
flag on the right hill.  Dynamics follow Moore (1990) / Gym's
``MountainCar-v0``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

import numpy as np

from repro.envs.core import Env, StepResult
from repro.envs.spaces import Box, Discrete


class MountainCarEnv(Env):
    """The classic mountain-car task with actions {push left, no push, push right}."""

    MIN_POSITION = -1.2
    MAX_POSITION = 0.6
    MAX_SPEED = 0.07
    GOAL_POSITION = 0.5
    GOAL_VELOCITY = 0.0
    FORCE = 0.001
    GRAVITY = 0.0025

    def __init__(self, *, max_episode_steps: int = 200, seed: int = None) -> None:
        super().__init__(seed=seed)
        self.max_episode_steps = max_episode_steps if max_episode_steps is None else int(max_episode_steps)
        low = np.array([self.MIN_POSITION, -self.MAX_SPEED], dtype=np.float64)
        high = np.array([self.MAX_POSITION, self.MAX_SPEED], dtype=np.float64)
        self.observation_space = Box(low, high, seed=seed)
        self.action_space = Discrete(3, seed=None if seed is None else seed + 1)
        self.state = np.zeros(2)
        self._steps = 0

    def _reset(self) -> Tuple[np.ndarray, Dict[str, Any]]:
        position = self._rng.uniform(-0.6, -0.4)
        self.state = np.array([position, 0.0])
        self._steps = 0
        return self.state.copy(), {}

    def _step(self, action) -> StepResult:
        action = int(np.asarray(action).item())
        position, velocity = self.state
        velocity += (action - 1) * self.FORCE + math.cos(3.0 * position) * (-self.GRAVITY)
        velocity = float(np.clip(velocity, -self.MAX_SPEED, self.MAX_SPEED))
        position += velocity
        position = float(np.clip(position, self.MIN_POSITION, self.MAX_POSITION))
        if position <= self.MIN_POSITION and velocity < 0:
            velocity = 0.0
        self.state = np.array([position, velocity])
        self._steps += 1
        terminated = bool(position >= self.GOAL_POSITION and velocity >= self.GOAL_VELOCITY)
        truncated = bool(
            self.max_episode_steps is not None and self._steps >= self.max_episode_steps
        )
        reward = -1.0
        return StepResult(self.state.copy(), reward, terminated, truncated,
                          {"steps": self._steps})
