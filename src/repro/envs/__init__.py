"""Gym-style reinforcement-learning environments (the OpenAI Gym substitute).

The paper evaluates on OpenAI Gym CartPole-v0.  This subpackage re-implements
the relevant slice of the Gym API from scratch:

* :class:`Env` — the ``reset`` / ``step`` protocol,
* :class:`Box` and :class:`Discrete` spaces,
* a string registry and :func:`make` factory,
* :class:`TimeLimit` and :class:`EpisodeStatistics` wrappers,
* the classic-control tasks CartPole-v0/v1 (the paper's benchmark, with the
  exact Table 2 bounds), MountainCar-v0 and Acrobot-v1 (the "other
  reinforcement tasks" mentioned as future work in Section 5),
* the systems family: Autoscale-v0, a seeded queueing/autoscaling simulator
  (stochastic traffic, replica scaling with cold starts, SLO/cost reward).
"""

from repro.envs.core import Env, EnvSpec, StepResult
from repro.envs.spaces import Box, Discrete, Space
from repro.envs.registry import env_dimensions, make, register, registry, spec
from repro.envs.autoscale import AutoscaleEnv, AutoscaleParams
from repro.envs.cartpole import CartPoleEnv
from repro.envs.mountain_car import MountainCarEnv
from repro.envs.acrobot import AcrobotEnv
from repro.envs.wrappers import EpisodeStatistics, TimeLimit, Wrapper

__all__ = [
    "Env",
    "EnvSpec",
    "StepResult",
    "Box",
    "Discrete",
    "Space",
    "env_dimensions",
    "make",
    "register",
    "registry",
    "spec",
    "AutoscaleEnv",
    "AutoscaleParams",
    "CartPoleEnv",
    "MountainCarEnv",
    "AcrobotEnv",
    "EpisodeStatistics",
    "TimeLimit",
    "Wrapper",
]
