"""Environment registry and ``make()`` factory (the Gym-style entry point)."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.envs.acrobot import AcrobotEnv
from repro.envs.cartpole import CartPoleEnv
from repro.envs.core import Env, EnvSpec
from repro.envs.mountain_car import MountainCarEnv
from repro.envs.wrappers import EpisodeStatistics


class _Registration:
    def __init__(self, spec: EnvSpec, factory: Callable[..., Env]) -> None:
        self.spec = spec
        self.factory = factory


registry: Dict[str, _Registration] = {}


def register(env_id: str, factory: Callable[..., Env], *,
             max_episode_steps: Optional[int] = None,
             reward_threshold: Optional[float] = None,
             **default_kwargs: Any) -> None:
    """Register an environment constructor under a string id.

    Re-registering an existing id overwrites it (useful in tests).
    """
    registry[env_id] = _Registration(
        EnvSpec(env_id, max_episode_steps, reward_threshold, dict(default_kwargs)),
        factory,
    )


def spec(env_id: str) -> EnvSpec:
    """Return the :class:`EnvSpec` for a registered id."""
    if env_id not in registry:
        raise KeyError(f"unknown environment id {env_id!r}; registered: {sorted(registry)}")
    return registry[env_id].spec


def env_dimensions(env_id: str) -> Tuple[int, int]:
    """(n_observations, n_actions) of a registered discrete-action env.

    The experiment machinery uses this to size agents for whatever
    environment a spec names, instead of assuming CartPole's (4, 2).
    """
    env = make(env_id)
    try:
        n_actions = getattr(env.action_space, "n", None)
        if n_actions is None:
            raise ValueError(
                f"{env_id!r} does not have a discrete action space; the design "
                "agents require one")
        return int(env.n_observations), int(n_actions)
    finally:
        env.close()


def make(env_id: str, *, seed: Optional[int] = None, record_statistics: bool = False,
         **kwargs: Any) -> Env:
    """Instantiate a registered environment.

    Parameters
    ----------
    env_id:
        Registered id, e.g. ``"CartPole-v0"``.
    seed:
        Optional seed forwarded to the environment.
    record_statistics:
        Wrap the env in :class:`EpisodeStatistics` to collect per-episode
        returns (the quantity plotted in Figure 4).
    kwargs:
        Overrides for the environment constructor.
    """
    if env_id not in registry:
        raise KeyError(f"unknown environment id {env_id!r}; registered: {sorted(registry)}")
    registration = registry[env_id]
    env_spec = registration.spec
    merged: Dict[str, Any] = dict(env_spec.kwargs)
    merged.update(kwargs)
    if env_spec.max_episode_steps is not None and "max_episode_steps" not in kwargs:
        merged.setdefault("max_episode_steps", env_spec.max_episode_steps)
    env = registration.factory(seed=seed, **merged)
    env.spec = env_spec
    if record_statistics:
        env = EpisodeStatistics(env)
    return env


# ---------------------------------------------------------------------- built-ins
register("CartPole-v0", CartPoleEnv, max_episode_steps=200, reward_threshold=195.0)
register("CartPole-v1", CartPoleEnv, max_episode_steps=500, reward_threshold=475.0)
register("MountainCar-v0", MountainCarEnv, max_episode_steps=200, reward_threshold=-110.0)
register("Acrobot-v1", AcrobotEnv, max_episode_steps=500, reward_threshold=-100.0)
