"""Environment registry and ``make()`` factory (the Gym-style entry point)."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.envs.acrobot import AcrobotEnv
from repro.envs.autoscale import AutoscaleEnv, AutoscaleParams
from repro.envs.cartpole import CartPoleEnv
from repro.envs.core import Env, EnvSpec
from repro.envs.mountain_car import MountainCarEnv
from repro.envs.wrappers import EpisodeStatistics


class _Registration:
    def __init__(self, spec: EnvSpec, factory: Callable[..., Env]) -> None:
        self.spec = spec
        self.factory = factory


registry: Dict[str, _Registration] = {}


def register(env_id: str, factory: Callable[..., Env], *,
             max_episode_steps: Optional[int] = None,
             reward_threshold: Optional[float] = None,
             n_states: Optional[int] = None,
             n_actions: Optional[int] = None,
             supports_batch_dynamics: bool = False,
             family: str = "classic-control",
             **default_kwargs: Any) -> None:
    """Register an environment constructor under a string id.

    The capability metadata (``n_states``, ``n_actions``,
    ``supports_batch_dynamics``, ``family``) is optional; when the
    dimensions are omitted, :func:`env_dimensions` measures them by
    instantiating the env once.  Re-registering an existing id overwrites
    it (useful in tests).
    """
    registry[env_id] = _Registration(
        EnvSpec(env_id, max_episode_steps, reward_threshold, dict(default_kwargs),
                n_states=n_states, n_actions=n_actions,
                supports_batch_dynamics=supports_batch_dynamics, family=family),
        factory,
    )


def spec(env_id: str) -> EnvSpec:
    """Return the :class:`EnvSpec` for a registered id."""
    if env_id not in registry:
        raise KeyError(f"unknown environment id {env_id!r}; registered: {sorted(registry)}")
    return registry[env_id].spec


def env_dimensions(env_id: str) -> Tuple[int, int]:
    """(n_observations, n_actions) of a registered discrete-action env.

    The experiment machinery uses this to size agents for whatever
    environment a spec names, instead of assuming CartPole's (4, 2).
    Registrations carrying dimension metadata answer from the spec alone;
    only metadata-less registrations pay an env instantiation to measure.
    """
    env_spec = spec(env_id)
    if env_spec.n_states is not None and env_spec.n_actions is not None:
        return int(env_spec.n_states), int(env_spec.n_actions)
    env = make(env_id)
    try:
        n_actions = getattr(env.action_space, "n", None)
        if n_actions is None:
            raise ValueError(
                f"{env_id!r} does not have a discrete action space; the design "
                "agents require one")
        return int(env.n_observations), int(n_actions)
    finally:
        env.close()


def make(env_id: str, *, seed: Optional[int] = None, record_statistics: bool = False,
         **kwargs: Any) -> Env:
    """Instantiate a registered environment.

    Parameters
    ----------
    env_id:
        Registered id, e.g. ``"CartPole-v0"``.
    seed:
        Optional seed forwarded to the environment.
    record_statistics:
        Wrap the env in :class:`EpisodeStatistics` to collect per-episode
        returns (the quantity plotted in Figure 4).
    kwargs:
        Overrides for the environment constructor.
    """
    if env_id not in registry:
        raise KeyError(f"unknown environment id {env_id!r}; registered: {sorted(registry)}")
    registration = registry[env_id]
    env_spec = registration.spec
    merged: Dict[str, Any] = dict(env_spec.kwargs)
    merged.update(kwargs)
    if env_spec.max_episode_steps is not None and "max_episode_steps" not in kwargs:
        merged.setdefault("max_episode_steps", env_spec.max_episode_steps)
    env = registration.factory(seed=seed, **merged)
    env.spec = env_spec
    if record_statistics:
        env = EpisodeStatistics(env)
    return env


# ---------------------------------------------------------------------- built-ins
register("CartPole-v0", CartPoleEnv, max_episode_steps=200, reward_threshold=195.0,
         n_states=4, n_actions=2, supports_batch_dynamics=True)
register("CartPole-v1", CartPoleEnv, max_episode_steps=500, reward_threshold=475.0,
         n_states=4, n_actions=2, supports_batch_dynamics=True)
register("MountainCar-v0", MountainCarEnv, max_episode_steps=200, reward_threshold=-110.0,
         n_states=2, n_actions=3)
register("Acrobot-v1", AcrobotEnv, max_episode_steps=500, reward_threshold=-100.0,
         n_states=6, n_actions=3)
register("Autoscale-v0", AutoscaleEnv, max_episode_steps=400,
         n_states=AutoscaleParams().n_state_dims, n_actions=3,
         supports_batch_dynamics=True, family="systems")
