"""Acrobot environment (two-link underactuated pendulum).

Another of the classic-control tasks the paper's future-work section targets.
Dynamics follow Sutton (1996) / Gym's ``Acrobot-v1``: only the joint between
the two links is actuated (torque in {-1, 0, +1}), and the goal is to swing
the tip above a height of one link length.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.envs.core import Env, StepResult
from repro.envs.spaces import Box, Discrete


class AcrobotEnv(Env):
    """The acrobot swing-up task with a 6-dimensional trigonometric observation."""

    DT = 0.2
    LINK_LENGTH_1 = 1.0
    LINK_LENGTH_2 = 1.0
    LINK_MASS_1 = 1.0
    LINK_MASS_2 = 1.0
    LINK_COM_POS_1 = 0.5
    LINK_COM_POS_2 = 0.5
    LINK_MOI = 1.0
    MAX_VEL_1 = 4 * np.pi
    MAX_VEL_2 = 9 * np.pi
    AVAIL_TORQUE = (-1.0, 0.0, 1.0)

    def __init__(self, *, max_episode_steps: int = 500, seed: int = None) -> None:
        super().__init__(seed=seed)
        self.max_episode_steps = max_episode_steps if max_episode_steps is None else int(max_episode_steps)
        high = np.array([1.0, 1.0, 1.0, 1.0, self.MAX_VEL_1, self.MAX_VEL_2], dtype=np.float64)
        self.observation_space = Box(-high, high, seed=seed)
        self.action_space = Discrete(3, seed=None if seed is None else seed + 1)
        self.state = np.zeros(4)
        self._steps = 0

    # ------------------------------------------------------------------ helpers
    def _observation(self) -> np.ndarray:
        theta1, theta2, dtheta1, dtheta2 = self.state
        return np.array(
            [np.cos(theta1), np.sin(theta1), np.cos(theta2), np.sin(theta2), dtheta1, dtheta2]
        )

    def _dsdt(self, augmented_state: np.ndarray) -> np.ndarray:
        """Equations of motion; the last element of the state is the applied torque."""
        m1, m2 = self.LINK_MASS_1, self.LINK_MASS_2
        l1 = self.LINK_LENGTH_1
        lc1, lc2 = self.LINK_COM_POS_1, self.LINK_COM_POS_2
        i1 = i2 = self.LINK_MOI
        g = 9.8
        a = augmented_state[-1]
        s = augmented_state[:-1]
        theta1, theta2, dtheta1, dtheta2 = s
        d1 = (m1 * lc1**2 + m2 * (l1**2 + lc2**2 + 2 * l1 * lc2 * np.cos(theta2)) + i1 + i2)
        d2 = m2 * (lc2**2 + l1 * lc2 * np.cos(theta2)) + i2
        phi2 = m2 * lc2 * g * np.cos(theta1 + theta2 - np.pi / 2.0)
        phi1 = (
            -m2 * l1 * lc2 * dtheta2**2 * np.sin(theta2)
            - 2 * m2 * l1 * lc2 * dtheta2 * dtheta1 * np.sin(theta2)
            + (m1 * lc1 + m2 * l1) * g * np.cos(theta1 - np.pi / 2)
            + phi2
        )
        ddtheta2 = (
            a + d2 / d1 * phi1 - m2 * l1 * lc2 * dtheta1**2 * np.sin(theta2) - phi2
        ) / (m2 * lc2**2 + i2 - d2**2 / d1)
        ddtheta1 = -(d2 * ddtheta2 + phi1) / d1
        return np.array([dtheta1, dtheta2, ddtheta1, ddtheta2, 0.0])

    def _rk4_step(self, state: np.ndarray, torque: float) -> np.ndarray:
        """Classic fourth-order Runge-Kutta integration over one timestep."""
        augmented = np.append(state, torque)
        dt = self.DT
        k1 = self._dsdt(augmented)
        k2 = self._dsdt(augmented + dt / 2.0 * k1)
        k3 = self._dsdt(augmented + dt / 2.0 * k2)
        k4 = self._dsdt(augmented + dt * k3)
        out = augmented + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
        return out[:-1]

    @staticmethod
    def _wrap(value: float, low: float, high: float) -> float:
        span = high - low
        while value > high:
            value -= span
        while value < low:
            value += span
        return value

    # ------------------------------------------------------------------ Env protocol
    def _reset(self) -> Tuple[np.ndarray, Dict[str, Any]]:
        self.state = self._rng.uniform(-0.1, 0.1, size=4)
        self._steps = 0
        return self._observation(), {}

    def _step(self, action) -> StepResult:
        action = int(np.asarray(action).item())
        torque = self.AVAIL_TORQUE[action]
        new_state = self._rk4_step(self.state, torque)
        new_state[0] = self._wrap(new_state[0], -np.pi, np.pi)
        new_state[1] = self._wrap(new_state[1], -np.pi, np.pi)
        new_state[2] = float(np.clip(new_state[2], -self.MAX_VEL_1, self.MAX_VEL_1))
        new_state[3] = float(np.clip(new_state[3], -self.MAX_VEL_2, self.MAX_VEL_2))
        self.state = new_state
        self._steps += 1
        theta1, theta2 = self.state[0], self.state[1]
        terminated = bool(-np.cos(theta1) - np.cos(theta2 + theta1) > 1.0)
        truncated = bool(
            self.max_episode_steps is not None and self._steps >= self.max_episode_steps
        )
        reward = 0.0 if terminated else -1.0
        return StepResult(self._observation(), reward, terminated, truncated,
                          {"steps": self._steps})
