"""Core environment protocol (a from-scratch Gym-compatible subset)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.envs.spaces import Space
from repro.utils.seeding import np_random


@dataclass(frozen=True)
class EnvSpec:
    """Static metadata about a registered environment.

    The capability fields (``n_states``, ``n_actions``,
    ``supports_batch_dynamics``, ``family``) let the experiment machinery
    size agents and route execution straight from the registry — no env
    instantiation, no hand-threaded dimensions per call site.  They default
    to "unknown" so user registrations without metadata keep working (the
    registry falls back to instantiating the env to measure it).
    """

    id: str
    max_episode_steps: Optional[int] = None
    reward_threshold: Optional[float] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    n_states: Optional[int] = None          #: flat observation dims, if known
    n_actions: Optional[int] = None         #: discrete action count, if known
    supports_batch_dynamics: bool = False   #: has the vectorized batch-step hook
    family: str = "classic-control"         #: env family tag ("systems", ...)


@dataclass
class StepResult:
    """The 5-tuple returned by :meth:`Env.step`, as a named structure.

    ``done`` combines termination (pole fell / cart out of bounds) and
    truncation (time limit); both flags are also available separately so the
    Q-learning target can treat time-limit truncation like the paper does
    (the ``d_t`` flag in Algorithm 1 simply marks the end of the episode).
    """

    observation: np.ndarray
    reward: float
    terminated: bool
    truncated: bool
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.terminated or self.truncated

    def as_tuple(self) -> Tuple[np.ndarray, float, bool, bool, Dict[str, Any]]:
        return self.observation, self.reward, self.terminated, self.truncated, self.info

    def __iter__(self):
        return iter(self.as_tuple())


class Env:
    """Base environment.

    Subclasses implement :meth:`_reset` and :meth:`_step`; the public
    :meth:`reset` / :meth:`step` wrappers handle seeding and bookkeeping.
    """

    #: Populated by subclasses.
    observation_space: Space
    action_space: Space
    spec: Optional[EnvSpec] = None

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng, self._seed = np_random(seed)
        self._episode_started = False

    # ------------------------------------------------------------------ public API
    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def seed(self, seed: Optional[int] = None) -> int:
        """Re-seed the environment's dynamics RNG, returning the seed used."""
        self._rng, self._seed = np_random(seed)
        if hasattr(self, "observation_space") and self.observation_space is not None:
            self.observation_space.seed(seed if seed is None else seed + 1)
        if hasattr(self, "action_space") and self.action_space is not None:
            self.action_space.seed(seed if seed is None else seed + 2)
        return self._seed

    def reset(self, *, seed: Optional[int] = None) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Start a new episode; returns the initial observation and an info dict."""
        if seed is not None:
            self.seed(seed)
        self._episode_started = True
        observation, info = self._reset()
        return np.asarray(observation, dtype=np.float64), info

    def step(self, action) -> StepResult:
        """Advance one timestep.  ``reset`` must have been called first."""
        if not self._episode_started:
            raise RuntimeError("step() called before reset()")
        if not self.action_space.contains(action):
            raise ValueError(f"action {action!r} is not contained in {self.action_space}")
        result = self._step(action)
        if result.done:
            self._episode_started = False
        result.observation = np.asarray(result.observation, dtype=np.float64)
        return result

    def close(self) -> None:  # pragma: no cover - nothing to release in pure-python envs
        """Release resources (no-op for the built-in environments)."""

    # ------------------------------------------------------------------ subclass hooks
    def _reset(self) -> Tuple[np.ndarray, Dict[str, Any]]:
        raise NotImplementedError

    def _step(self, action) -> StepResult:
        raise NotImplementedError

    # ------------------------------------------------------------------ conveniences
    @property
    def n_observations(self) -> int:
        """Dimensionality of the (flat) observation vector."""
        shape = self.observation_space.shape
        return int(np.prod(shape)) if shape else 1

    @property
    def n_actions(self) -> int:
        """Number of discrete actions (raises for continuous action spaces)."""
        from repro.envs.spaces import Discrete
        if not isinstance(self.action_space, Discrete):
            raise TypeError("n_actions is only defined for Discrete action spaces")
        return self.action_space.n

    def __enter__(self) -> "Env":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        name = self.spec.id if self.spec is not None else type(self).__name__
        return f"<{type(self).__name__} {name}>"
