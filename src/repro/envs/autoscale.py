"""Autoscale-v0: a seeded queueing/autoscaling simulator (systems env family).

The agent operates a replicated service under stochastic request traffic:
each step it may add a replica (which only becomes useful after a cold-start
delay), retire one, or hold.  Arrivals follow a Poisson process whose rate
carries a diurnal sinusoid plus a two-state Markov burst phase; request
latency comes from an M/M/c-style congestion law over the fleet's aggregate
service capacity.  The reward trades SLO latency violations against
replica-hours cost, and an episode *terminates* when the backlog grows past
an overload limit — so "steps survived", the quantity every training curve
in this repo plots, measures how long the policy keeps the service alive.

Bit-identity contract
---------------------
The serial :meth:`AutoscaleEnv._step` delegates to the static
:meth:`AutoscaleEnv.batch_dynamics` on a one-row batch — the exact function
the vectorized path (:class:`~repro.parallel.vector_env.SyncVectorEnv`) calls
on a K-row batch.  Stochastic draws (burst transition, Poisson arrivals) and
the one transcendental (the diurnal ``math.sin``) happen in a scalar per-env
loop in a fixed order; everything after that is element-wise IEEE arithmetic
(+, -, *, /, min, max), which NumPy evaluates identically for any batch
width.  Observation slots that persist across steps are scaled by powers of
two only (replica counts / 16, backlog / 1024), so normalize→denormalize
round-trips are exact and the serial and batched trajectories match
bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.envs.core import Env, StepResult
from repro.envs.spaces import Box, Discrete

#: Scale on the utilization observation slot (rho is capped at this value).
_RHO_CAP = 4.0

_TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class AutoscaleParams:
    """Constants of the traffic/queueing model.

    The normalization scales (``max_replicas``, ``queue_limit``,
    ``arrival_scale``, ``latency_cap``) must be powers of two: observation
    slots store *normalized* values and the dynamics recover the raw ones by
    multiplication, which is only exact for power-of-two scales.
    """

    max_replicas: int = 16              #: fleet ceiling (power of two)
    min_replicas: int = 1               #: scale-down floor
    initial_replicas: int = 4           #: warm replicas at episode start
    cold_start_steps: int = 2           #: steps a new replica warms up for
    service_rate: float = 8.0           #: requests one warm replica serves per step
    base_rate: float = 48.0             #: diurnal-mean arrival rate, requests/step
    diurnal_amplitude: float = 0.5      #: relative swing of the diurnal sinusoid
    diurnal_period: int = 256           #: steps per diurnal cycle
    burst_multiplier: float = 2.0       #: arrival-rate multiple while bursting
    burst_start_probability: float = 0.02
    burst_stop_probability: float = 0.25
    base_latency: float = 0.0625        #: s per request at zero queueing
    slo_latency: float = 0.25           #: s, the latency objective
    latency_cap: float = 4.0            #: s, latency model ceiling (power of two)
    queue_limit: float = 1024.0         #: backlog triggering overload termination
    arrival_scale: float = 256.0        #: observation scale for arrivals
    congestion_floor: float = 0.03125   #: lower clamp on (1 - rho) in the wait law
    latency_weight: float = 0.5         #: reward weight of SLO violation
    cost_weight: float = 0.25           #: reward weight of fleet size

    @property
    def n_state_dims(self) -> int:
        """7 core slots + one cold-start pipeline slot per warm-up step."""
        return 7 + self.cold_start_steps

    def __post_init__(self) -> None:
        if self.cold_start_steps < 1:
            raise ValueError("cold_start_steps must be >= 1")
        if not (1 <= self.min_replicas <= self.initial_replicas <= self.max_replicas):
            raise ValueError(
                "need 1 <= min_replicas <= initial_replicas <= max_replicas")
        for name in ("max_replicas", "queue_limit", "arrival_scale", "latency_cap"):
            value = float(getattr(self, name))
            if value <= 0 or math.log2(value) != int(math.log2(value)):
                raise ValueError(f"{name} must be a positive power of two, got {value}")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")


class AutoscaleEnv(Env):
    """The replica-autoscaling task.

    Observation (``7 + cold_start_steps`` float64 slots, all roughly [0, 1]):

    ======  =======================================================
    slot    meaning
    ======  =======================================================
    0       warm replicas / ``max_replicas``
    1       backlog / ``queue_limit``
    2       last step's arrivals / ``arrival_scale``
    3       last step's latency / ``latency_cap``
    4       burst phase flag (0 or 1)
    5       diurnal phase offset of this episode (drawn at reset)
    6       last step's capped utilization rho / 4
    7..     replicas finishing cold start in 1, 2, ... steps
            (each / ``max_replicas``)
    ======  =======================================================

    Actions: 0 = retire one replica, 1 = hold, 2 = launch one replica
    (enters the cold-start pipeline; ignored at the fleet ceiling).
    """

    #: Capability flag the generic vectorized fast path keys on.
    supports_batch_dynamics = True

    def __init__(self, *, max_episode_steps: int = 400,
                 params: AutoscaleParams = AutoscaleParams(),
                 seed: int = None) -> None:
        super().__init__(seed=seed)
        self.params = params
        self.max_episode_steps = (max_episode_steps if max_episode_steps is None
                                  else int(max_episode_steps))
        dims = params.n_state_dims
        high = np.ones(dims, dtype=np.float64)
        high[1] = np.inf     # the terminal backlog may overshoot queue_limit
        high[2] = np.inf     # a burst draw may exceed arrival_scale
        self.observation_space = Box(np.zeros(dims), high, seed=seed)
        self.action_space = Discrete(3, seed=None if seed is None else seed + 1)
        self.state: np.ndarray = np.zeros(dims)
        self._steps = 0

    # ------------------------------------------------------------------ dynamics
    def _reset(self) -> Tuple[np.ndarray, Dict[str, Any]]:
        p = self.params
        self.state = np.zeros(p.n_state_dims)
        self.state[0] = p.initial_replicas / p.max_replicas
        self.state[5] = float(self._rng.random())   # this episode's diurnal phase
        self._steps = 0
        return self.state.copy(), {}

    @staticmethod
    def batch_dynamics(states: np.ndarray, steps: np.ndarray,
                       actions: np.ndarray, params: AutoscaleParams,
                       rngs: Sequence[np.random.Generator]
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance K sub-envs one step; returns (new_states, rewards, terminated).

        ``steps[i]`` is sub-env i's completed step count this episode (the
        time index of the diurnal clock) and ``rngs[i]`` its generator.  Each
        generator consumes exactly two draws per call — one uniform (burst
        transition), one Poisson (arrivals) — in that order, so the serial
        one-row path and any batched path walk identical streams.
        """
        states = np.asarray(states, dtype=np.float64)
        actions = np.asarray(actions)
        n = len(rngs)

        # Scalar segment: RNG draws + the diurnal transcendental, per env in
        # a fixed order.  Batched NumPy transcendentals may use SIMD code
        # paths whose rounding differs from the scalar libm; keeping sin()
        # here makes batch width irrelevant to the bits.
        burst = states[:, 4].copy()
        arrivals = np.empty(n)
        for i in range(n):
            rng = rngs[i]
            u = rng.random()
            if burst[i] == 1.0:
                if u < params.burst_stop_probability:
                    burst[i] = 0.0
            elif u < params.burst_start_probability:
                burst[i] = 1.0
            phase = (float(steps[i]) / params.diurnal_period + states[i, 5]) * _TWO_PI
            rate = params.base_rate * (1.0 + params.diurnal_amplitude * math.sin(phase))
            if burst[i] == 1.0:
                rate *= params.burst_multiplier
            arrivals[i] = float(rng.poisson(rate))

        # Vectorized segment: element-wise exact arithmetic only from here on.
        max_replicas = float(params.max_replicas)
        replicas = states[:, 0] * max_replicas
        backlog = states[:, 1] * params.queue_limit
        pipeline = states[:, 7:] * max_replicas

        # Replicas finishing cold start join the warm pool; the pipeline shifts.
        replicas = replicas + pipeline[:, 0]
        pipeline = np.concatenate([pipeline[:, 1:], np.zeros((n, 1))], axis=1)

        # Apply the scaling action (0 = down, 1 = hold, 2 = up).
        replicas = np.where(actions == 0,
                            np.maximum(replicas - 1.0, float(params.min_replicas)),
                            replicas)
        pending = pipeline.sum(axis=1)
        launch = (actions == 2) & (replicas + pending < max_replicas)
        pipeline[:, -1] = np.where(launch, pipeline[:, -1] + 1.0, pipeline[:, -1])
        pending = np.where(launch, pending + 1.0, pending)

        # Serve the queue: M/M/c-flavored congestion latency on utilization.
        capacity = replicas * params.service_rate
        demand = backlog + arrivals
        backlog = demand - np.minimum(demand, capacity)
        rho = demand / capacity
        wait = rho / np.maximum(1.0 - rho, params.congestion_floor)
        latency = np.minimum(params.base_latency * (1.0 + wait), params.latency_cap)

        violation = np.minimum(
            np.maximum(latency / params.slo_latency - 1.0, 0.0), 8.0) / 8.0
        cost = (replicas + pending) / max_replicas
        rewards = -(params.latency_weight * violation + params.cost_weight * cost)
        terminated = backlog >= params.queue_limit

        new_states = np.empty_like(states)
        new_states[:, 0] = replicas / max_replicas
        new_states[:, 1] = backlog / params.queue_limit
        new_states[:, 2] = arrivals / params.arrival_scale
        new_states[:, 3] = latency / params.latency_cap
        new_states[:, 4] = burst
        new_states[:, 5] = states[:, 5]
        new_states[:, 6] = np.minimum(rho, _RHO_CAP) / _RHO_CAP
        new_states[:, 7:] = pipeline / max_replicas
        return new_states, rewards, terminated

    def _step(self, action) -> StepResult:
        action = int(np.asarray(action).item())
        new_states, rewards, terminated = self.batch_dynamics(
            self.state[None, :], np.array([self._steps]), np.array([action]),
            self.params, [self._rng])
        self.state = new_states[0]
        self._steps += 1
        term = bool(terminated[0])
        truncated = bool(self.max_episode_steps is not None
                         and self._steps >= self.max_episode_steps)
        return StepResult(self.state.copy(), float(rewards[0]), term, truncated,
                          {"steps": self._steps})


__all__ = ["AutoscaleEnv", "AutoscaleParams"]
