"""Environment wrappers (time limits and episode statistics)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.envs.core import Env, StepResult


class Wrapper(Env):
    """Transparent pass-through wrapper; subclasses override ``reset``/``step``."""

    def __init__(self, env: Env) -> None:
        # Note: deliberately does not call Env.__init__ — the wrapped env owns the RNG.
        self.env = env
        self._episode_started = False

    @property
    def observation_space(self):  # type: ignore[override]
        return self.env.observation_space

    @property
    def action_space(self):  # type: ignore[override]
        return self.env.action_space

    @property
    def spec(self):  # type: ignore[override]
        return self.env.spec

    @property
    def unwrapped(self) -> Env:
        inner = self.env
        while isinstance(inner, Wrapper):
            inner = inner.env
        return inner

    def seed(self, seed: Optional[int] = None) -> int:
        return self.env.seed(seed)

    def reset(self, *, seed: Optional[int] = None) -> Tuple[np.ndarray, Dict[str, Any]]:
        return self.env.reset(seed=seed)

    def step(self, action) -> StepResult:
        return self.env.step(action)

    def close(self) -> None:
        self.env.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__}{self.env!r}>"


class TimeLimit(Wrapper):
    """Truncate episodes after ``max_episode_steps`` steps.

    Used by the registry to impose CartPole-v0's 200-step horizon on
    environments constructed without a built-in limit.
    """

    def __init__(self, env: Env, max_episode_steps: int) -> None:
        super().__init__(env)
        if max_episode_steps <= 0:
            raise ValueError("max_episode_steps must be positive")
        self.max_episode_steps = int(max_episode_steps)
        self._elapsed = 0

    def reset(self, *, seed: Optional[int] = None) -> Tuple[np.ndarray, Dict[str, Any]]:
        self._elapsed = 0
        return super().reset(seed=seed)

    def step(self, action) -> StepResult:
        result = super().step(action)
        self._elapsed += 1
        if self._elapsed >= self.max_episode_steps and not result.terminated:
            result.truncated = True
            result.info.setdefault("TimeLimit.truncated", True)
        return result


class EpisodeStatistics(Wrapper):
    """Record per-episode returns and lengths (the raw data behind Figure 4)."""

    def __init__(self, env: Env) -> None:
        super().__init__(env)
        self.episode_returns: List[float] = []
        self.episode_lengths: List[int] = []
        self._current_return = 0.0
        self._current_length = 0

    def reset(self, *, seed: Optional[int] = None) -> Tuple[np.ndarray, Dict[str, Any]]:
        self._current_return = 0.0
        self._current_length = 0
        return super().reset(seed=seed)

    def step(self, action) -> StepResult:
        result = super().step(action)
        self._current_return += result.reward
        self._current_length += 1
        if result.done:
            self.episode_returns.append(self._current_return)
            self.episode_lengths.append(self._current_length)
            result.info["episode"] = {
                "return": self._current_return,
                "length": self._current_length,
            }
        return result

    @property
    def n_episodes(self) -> int:
        return len(self.episode_returns)
