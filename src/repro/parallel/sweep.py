"""Multi-seed sweep orchestration: fan a (design x env x seed) grid out.

``SweepRunner`` is the entry point the experiments build on.  It expands a
:class:`SweepSpec` into one :class:`SweepTask` per (design, env_id, trial)
cell, derives every task's seed from the sweep's root seed with
:func:`~repro.utils.seeding.spawn_seeds` (reproducible, pairwise
non-overlapping), executes the grid on one of three interchangeable
backends, and aggregates the streamed
:class:`~repro.rl.recording.TrainingResult`s into a :class:`SweepResult`.

Backends
--------
``"vectorized"``
    Lock-step through :meth:`repro.training.Trainer.fit_lockstep`.
    Compatible trials (same lock-step-capable design, env and hidden size)
    train through the batched strategy — stacked agent math plus the
    vectorized environment, the winner whenever trials outnumber cores.
    Every other design (DQN, FPGA, the unregularized OS-ELM variants — see
    :func:`~repro.training.strategies.supports_lockstep`) trains lock-step
    too, through the generic per-agent strategy (vectorized env stepping,
    per-agent math), so the whole grid advances in lock-step batches.
``"process"``
    One serial :meth:`~repro.training.Trainer.fit` call per worker process
    via :func:`~repro.parallel.pool.parallel_map`.  Scales with physical
    cores and handles every design; per-task results are bit-identical to
    serial.
``"serial"``
    The plain loop, for debugging and baselines.  The only backend that
    supports *mid-trial* checkpoint/resume (``checkpoint_every`` with a
    ``store``).
``"distributed"``
    A TCP worker fleet behind :func:`repro.distributed.run_distributed_sweep`:
    tasks are served from a broker in this process to local auto-spawned
    workers (and/or external ``repro worker --connect`` processes), with
    heartbeat/lease requeue on worker death and optional per-trial
    artifact-store checkpointing.  Per-task results are bit-identical to
    serial.
``"auto"``
    ``vectorized`` (its fallback already covers non-batchable designs).
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.designs import design_spec, make_design
from repro.experiments.reporting import format_table
from repro.parallel.pool import parallel_map
from repro.training.config import TrainingConfig
from repro.training.records import TrainingResult
from repro.utils.logging import get_logger
from repro.utils.seeding import spawn_seeds

_LOGGER = get_logger("repro.parallel.sweep")


def _design_supports_lockstep(design: str) -> bool:
    """Mirror of :func:`repro.training.strategies.supports_lockstep` on specs.

    Decides *batched* vs *generic* lock-step grouping: ELM always; OS-ELM
    only with the ridge term (the un-ridged recursive P update amplifies
    batched-vs-serial BLAS rounding chaotically); never DQN/FPGA.  Designs
    outside the batched set still run lock-step — through the generic
    per-agent strategy.
    """
    spec = design_spec(design)
    if spec.family == "elm":
        return True
    return spec.family == "os-elm" and spec.regularization.l2_delta > 0


@dataclass(frozen=True)
class SweepTask:
    """One cell of the sweep grid: a fully specified, picklable trial.

    ``n_states`` / ``n_actions`` default to ``None`` and are derived from the
    env registry's capability metadata
    (:func:`repro.envs.registry.env_dimensions`) at construction.  Passing
    them explicitly still works — unregistered test doubles need it — but an
    explicit value that *contradicts* the registry is a deprecated override:
    it warns now and will become an error once the one-release grace period
    ends (register the env with the right metadata instead).
    """

    design: str
    env_id: str
    n_hidden: int
    gamma: float
    seed: int
    trial: int                        #: trial index within (design, env_id)
    training: TrainingConfig          #: per-trial protocol (seed already embedded)
    n_states: Optional[int] = None    #: env observation dims (registry-derived)
    n_actions: Optional[int] = None   #: env action count (registry-derived)

    def __post_init__(self) -> None:
        from repro.envs.registry import env_dimensions, registry as env_registry

        if self.n_states is None or self.n_actions is None:
            n_states, n_actions = env_dimensions(self.env_id)
            if self.n_states is None:
                object.__setattr__(self, "n_states", n_states)
            if self.n_actions is None:
                object.__setattr__(self, "n_actions", n_actions)
        elif self.env_id in env_registry:
            n_states, n_actions = env_dimensions(self.env_id)
            if (self.n_states, self.n_actions) != (n_states, n_actions):
                import warnings

                warnings.warn(
                    f"SweepTask(env_id={self.env_id!r}) overrides the registry "
                    f"dimensions ({n_states}, {n_actions}) with "
                    f"({self.n_states}, {self.n_actions}); explicit "
                    "n_states/n_actions overrides are deprecated and will be "
                    "removed in the next release — register the environment "
                    "with the intended metadata instead",
                    DeprecationWarning, stacklevel=3)

    def make_agent(self):
        """Instantiate the trial's agent (called inside the executing worker)."""
        return make_design(self.design, n_states=self.n_states,
                           n_actions=self.n_actions, n_hidden=self.n_hidden,
                           gamma=self.gamma, seed=self.seed)

    def key(self) -> Tuple[str, str, int, int]:
        """The grid coordinate identifying this task within one sweep."""
        return (self.design, self.env_id, self.n_hidden, self.trial)


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a sweep grid.

    Every (design, env_id, trial) combination becomes one task; task seeds
    are ``spawn_seeds(root_seed, n_tasks)`` in grid order, so the whole
    sweep is reproducible from ``root_seed`` alone and no two trials share
    a bit-generator stream.
    """

    designs: Sequence[str] = ("OS-ELM-L2-Lipschitz",)
    env_ids: Sequence[str] = ("CartPole-v0",)
    n_seeds: int = 4
    n_hidden: int = 64
    gamma: float = 0.99
    training: TrainingConfig = field(default_factory=lambda: TrainingConfig(max_episodes=300))
    root_seed: int = 1234

    def __post_init__(self) -> None:
        if not self.designs:
            raise ValueError("designs must not be empty")
        if not self.env_ids:
            raise ValueError("env_ids must not be empty")
        if self.n_seeds <= 0:
            raise ValueError("n_seeds must be positive")
        for design in self.designs:
            design_spec(design)  # raises on unknown names up-front

    def tasks(self) -> List[SweepTask]:
        """Expand the grid into seeded tasks (design-major, then env, then trial)."""
        grid = [(design, env_id, trial)
                for design in self.designs
                for env_id in self.env_ids
                for trial in range(self.n_seeds)]
        seeds = spawn_seeds(self.root_seed, len(grid))
        tasks = []
        for (design, env_id, trial), seed in zip(grid, seeds):
            training = replace(self.training, env_id=env_id, seed=seed)
            tasks.append(SweepTask(design=design, env_id=env_id,
                                   n_hidden=self.n_hidden, gamma=self.gamma,
                                   seed=seed, trial=trial, training=training))
        return tasks


def _train_sweep_task(task: SweepTask, callbacks: Sequence = ()):
    """Train one task serially; returns ``(result, trained_agent)``.

    The agent comes back alongside the result so callers that persist
    deployable policies (``save_policies``) get the final weights without a
    second training pass.
    """
    from repro.training.trainer import Trainer

    agent = task.make_agent()
    result = Trainer(callbacks=callbacks).fit(agent, config=task.training,
                                              n_hidden=task.n_hidden)
    return result, agent


def _run_sweep_task(task: SweepTask, callbacks: Sequence = ()) -> TrainingResult:
    """Module-level worker so the process backend can pickle it.

    One serial :meth:`~repro.training.Trainer.fit` per task; ``callbacks``
    (serial backend only — the process backend pickles the bare task) carry
    progress streaming and mid-trial checkpointing.
    """
    result, _ = _train_sweep_task(task, callbacks)
    return result


def _run_sweep_task_saving_policy(task: SweepTask, store_root: str) -> TrainingResult:
    """Process-backend worker that also persists the trained agent.

    Module-level (wrapped in ``functools.partial(store_root=...)``) so the
    pool can pickle it; each child opens its own store handle on the shared
    root — :meth:`ArtifactStore.save_policy` writes are atomic.
    """
    from repro.api.store import ArtifactStore

    result, agent = _train_sweep_task(task)
    ArtifactStore(store_root).save_policy(task, agent)
    return result


@dataclass
class SweepResult:
    """All trials of one sweep, with cross-seed aggregation helpers."""

    entries: List[Tuple[SweepTask, TrainingResult]] = field(default_factory=list)
    backend: str = "serial"
    wall_time_seconds: float = 0.0
    #: Execution path actually taken per entry, aligned with ``entries``:
    #: ``"lockstep"`` (vectorized backend — batched or generic strategy),
    #: ``"process"``, ``"serial"`` or ``"distributed"``.  Makes the sweep
    #: auditable per trial rather than per aggregate.  (``"serial-fallback"``
    #: disappeared in 1.4: the generic lock-step strategy now carries the
    #: designs the batched strategy cannot replay, DQN and FPGA included.)
    backends_used: List[str] = field(default_factory=list)
    #: Autoscaled distributed sweeps only: the
    #: :class:`~repro.fleet.FleetReport` of scale/drain events (``None``
    #: everywhere else).  Informational — results never depend on it.
    fleet_report: Optional[object] = None

    def add(self, task: SweepTask, result: TrainingResult,
            backend_used: Optional[str] = None) -> None:
        self.entries.append((task, result))
        self.backends_used.append(backend_used if backend_used is not None
                                  else self.backend)

    def __len__(self) -> int:
        return len(self.entries)

    def backend_for(self, task: SweepTask) -> str:
        """The execution path one task actually took."""
        for (entry_task, _), backend_used in zip(self.entries, self.backends_used):
            if entry_task.key() == task.key():
                return backend_used
        raise KeyError(f"no entry for task {task.key()!r}")

    def backend_counts(self) -> Dict[str, int]:
        """How many trials each execution path handled, e.g. ``{"lockstep": 3}``."""
        return dict(Counter(self.backends_used))

    # ------------------------------------------------------------------ selection
    def results_for(self, design: Optional[str] = None,
                    env_id: Optional[str] = None) -> List[TrainingResult]:
        """Trials matching a design and/or env, in trial order."""
        matching = [(task, result) for task, result in self.entries
                    if (design is None or task.design == design)
                    and (env_id is None or task.env_id == env_id)]
        matching.sort(key=lambda entry: (entry[0].design, entry[0].env_id,
                                         entry[0].trial))
        return [result for _, result in matching]

    def groups(self) -> List[Tuple[str, str]]:
        """The distinct (design, env_id) cells present, sorted."""
        return sorted({(task.design, task.env_id) for task, _ in self.entries})

    # ------------------------------------------------------------------ aggregation
    @property
    def total_env_steps(self) -> int:
        """Aggregate environment steps executed across every trial."""
        return int(sum(record.steps for _, result in self.entries
                       for record in result.curve.records))

    def solved_fraction(self, design: str, env_id: str) -> float:
        results = self.results_for(design, env_id)
        if not results:
            raise KeyError(f"no trials for ({design!r}, {env_id!r})")
        return float(np.mean([result.solved for result in results]))

    def aggregate_curve(self, design: str, env_id: str) -> Dict[str, np.ndarray]:
        """Mean/std per-episode steps across seeds (the Figure 4 averaging).

        Trials that stopped early (solved) are padded by holding their final
        episode length, so the mean stays defined over the longest trial's
        horizon.
        """
        results = self.results_for(design, env_id)
        if not results:
            raise KeyError(f"no trials for ({design!r}, {env_id!r})")
        horizon = max(len(result.curve) for result in results)
        padded = np.empty((len(results), horizon))
        for row, result in enumerate(results):
            steps = result.curve.steps
            padded[row, :steps.size] = steps
            padded[row, steps.size:] = steps[-1] if steps.size else 0.0
        return {
            "episodes": np.arange(1, horizon + 1),
            "mean_steps": padded.mean(axis=0),
            "std_steps": padded.std(axis=0),
        }

    def summary_rows(self) -> List[Dict[str, object]]:
        rows = []
        group_backends: Dict[Tuple[str, str], set] = defaultdict(set)
        for (task, _), backend_used in zip(self.entries, self.backends_used):
            group_backends[(task.design, task.env_id)].add(backend_used)
        for design, env_id in self.groups():
            results = self.results_for(design, env_id)
            solve_counts = [result.episodes_to_solve for result in results
                            if result.episodes_to_solve is not None]
            rows.append({
                "design": design,
                "env_id": env_id,
                "trials": len(results),
                "backend_used": "+".join(sorted(group_backends[(design, env_id)])),
                "solved": f"{sum(result.solved for result in results)}/{len(results)}",
                "mean_episodes_to_solve": (round(float(np.mean(solve_counts)), 1)
                                           if solve_counts else None),
                "mean_final_avg_steps": round(float(np.mean(
                    [result.curve.final_average() for result in results])), 1),
            })
        return rows

    def render(self) -> str:
        return format_table(self.summary_rows(),
                            title=f"Sweep summary ({len(self.entries)} trials, "
                                  f"backend={self.backend})")


class SweepRunner:
    """Execute a sweep grid on a chosen backend.

    Parameters
    ----------
    spec:
        The sweep grid: either a :class:`SweepSpec` (expanded via
        :meth:`SweepSpec.tasks`) or an explicit sequence of
        :class:`SweepTask` — the form the unified experiment API
        (:mod:`repro.api`) uses so every front door routes trials through
        this one engine.
    backend:
        ``"auto"`` (default), ``"vectorized"``, ``"process"``, ``"serial"``
        or ``"distributed"``.
    max_workers:
        Pool size for the process backend, or the number of auto-spawned
        local workers for the distributed backend; lock-step group size is
        the number of compatible trials, independent of this.
    store:
        An :class:`~repro.api.store.ArtifactStore`.  Distributed backend:
        the broker checkpoints every finished trial into it as it arrives.
        Serial backend: enables *mid-trial* state checkpointing when
        ``checkpoint_every`` is set.
    bind:
        Distributed backend only: ``"HOST:PORT"`` to accept external
        ``repro worker --connect`` processes instead of (or in addition to)
        the auto-spawned local fleet.
    checkpoint_every:
        Serial backend with a ``store``: persist the full mid-trial training
        state every N episodes, so a killed run resumes *inside* a trial
        (bit-for-bit) instead of retraining it.  0 disables (default).
    resume_trial_state:
        Serial backend: load an existing mid-trial state snapshot before
        training (default).  ``False`` (the ``--no-resume`` contract)
        discards any stale snapshot so the trial genuinely retrains;
        checkpoints are still *written* when ``checkpoint_every`` is set.
    lease_batch:
        Distributed backend: tasks leased per worker ``GET`` (connection-
        latency amortization on paper-scale grids).  Default 1 preserves
        the classic one-task-per-request protocol.
    progress_every:
        Serial/vectorized backends: stream per-trial progress to stderr
        every N episodes through a
        :class:`~repro.training.callbacks.ProgressCallback`.  0 disables.
    save_policies:
        Persist every trial's final trained agent into the ``store``
        (:meth:`~repro.api.store.ArtifactStore.save_policy`) so
        ``repro serve`` can load it later.  Requires a ``store``; supported
        on the serial, vectorized and process backends (distributed workers
        train in other processes/hosts — their agents never return to this
        coordinator, so the combination is rejected up front).
    autoscale:
        Distributed backend only: ``True`` or a
        :class:`~repro.fleet.AutoscaleConfig` to run the worker fleet
        under a :class:`~repro.fleet.FleetAutoscaler` instead of a fixed
        ``max_workers`` — the fleet grows on queue backlog and drains idle
        workers gracefully, with byte-identical results either way.  The
        run's :class:`~repro.fleet.FleetReport` lands on
        :attr:`SweepResult.fleet_report`.
    journal:
        Distributed backend only: path to the broker's crash-safety
        write-ahead journal (``repro run --journal``).  An existing file
        is replayed first, so re-running after a broker kill resumes with
        completed trials done and in-flight leases requeued; see
        :class:`~repro.distributed.journal.SweepJournal`.
    """

    BACKENDS = ("auto", "vectorized", "process", "serial", "distributed")

    def __init__(self, spec: Union[SweepSpec, Sequence[SweepTask]], *,
                 backend: str = "auto", max_workers: Optional[int] = None,
                 store: Optional[object] = None,
                 bind: Optional[str] = None,
                 checkpoint_every: int = 0,
                 resume_trial_state: bool = True,
                 lease_batch: int = 1,
                 progress_every: int = 0,
                 save_policies: bool = False,
                 autoscale=None,
                 journal=None) -> None:
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {self.BACKENDS}")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if lease_batch < 1:
            raise ValueError("lease_batch must be >= 1")
        if progress_every < 0:
            raise ValueError("progress_every must be >= 0")
        if save_policies and store is None:
            raise ValueError("save_policies requires a store to write into")
        if save_policies and backend == "distributed":
            raise ValueError(
                "save_policies is not supported on the distributed backend: "
                "worker-trained agents never reach this coordinator; train "
                "with --backend serial/vectorized/process instead")
        if autoscale and backend != "distributed":
            raise ValueError(
                "autoscale only applies to the distributed backend: the "
                "elastic fleet scales broker workers, which no other "
                "backend has")
        if journal and backend != "distributed":
            raise ValueError(
                "journal only applies to the distributed backend: it logs "
                "broker queue transitions, and no other backend has a "
                "broker (serial/vectorized runs resume from the store)")
        if not isinstance(spec, SweepSpec):
            tasks = list(spec)
            bad = [task for task in tasks if not isinstance(task, SweepTask)]
            if bad:
                raise TypeError(
                    f"explicit task lists must contain SweepTask instances, got "
                    f"{type(bad[0]).__name__}"
                )
            if not tasks:
                raise ValueError("explicit task list must not be empty")
            # Keep the materialized list, not the input iterable: a generator
            # argument is already exhausted by the validation above.
            spec = tasks
        self.spec = spec
        self.backend = "vectorized" if backend == "auto" else backend
        self.max_workers = max_workers
        self.store = store
        self.bind = bind
        self.checkpoint_every = checkpoint_every
        self.resume_trial_state = resume_trial_state
        self.lease_batch = lease_batch
        self.progress_every = progress_every
        self.save_policies = save_policies
        self.autoscale = autoscale
        self.journal = journal

    def tasks(self) -> List[SweepTask]:
        """The task list this runner will execute, in grid order."""
        if isinstance(self.spec, SweepSpec):
            return self.spec.tasks()
        return list(self.spec)

    def run(self, callback: Optional[Callable[[SweepTask, TrainingResult], None]] = None
            ) -> SweepResult:
        """Run every task; ``callback(task, result)`` streams completions."""
        tasks = self.tasks()
        sweep = SweepResult(backend=self.backend)
        start = time.perf_counter()
        _LOGGER.info("sweep started", backend=self.backend, tasks=len(tasks))
        if self.backend == "process":
            def stream(index: int, result: TrainingResult) -> None:
                if callback is not None:
                    callback(tasks[index], result)

            if self.save_policies:
                from functools import partial

                worker = partial(_run_sweep_task_saving_policy,
                                 store_root=str(self.store.root))
            else:
                worker = _run_sweep_task
            results = parallel_map(worker, tasks, backend="process",
                                   max_workers=self.max_workers, callback=stream)
            for task, result in zip(tasks, results):
                sweep.add(task, result, backend_used="process")
        elif self.backend == "serial":
            for task in tasks:
                result, agent = _train_sweep_task(
                    task, callbacks=self._serial_callbacks(task))
                if self.save_policies:
                    self.store.save_policy(task, agent)
                if callback is not None:
                    callback(task, result)
                sweep.add(task, result, backend_used="serial")
        elif self.backend == "distributed":
            from repro.distributed import run_distributed_sweep

            def keep_report(report) -> None:
                sweep.fleet_report = report

            pairs = run_distributed_sweep(tasks, n_workers=self.max_workers,
                                          bind=self.bind, store=self.store,
                                          callback=callback,
                                          lease_batch=self.lease_batch,
                                          autoscale=self.autoscale,
                                          on_fleet_report=keep_report,
                                          journal=self.journal)
            for task, (result, backend_used) in zip(tasks, pairs):
                sweep.add(task, result, backend_used=backend_used)
        else:
            self._run_vectorized(tasks, sweep, callback)
        sweep.wall_time_seconds = time.perf_counter() - start
        _LOGGER.info("sweep finished", backend=self.backend,
                     seconds=round(sweep.wall_time_seconds, 2))
        return sweep

    # ------------------------------------------------------------------ callbacks
    def _progress_callbacks(self) -> list:
        callbacks = []
        if self.progress_every:
            from repro.training.callbacks import progress_to_stderr

            callbacks.append(progress_to_stderr(self.progress_every))
        from repro import telemetry

        if telemetry.enabled():
            # Only installed while telemetry is on: TelemetryCallback defines
            # on_step, which switches the trainer to per-step dispatch.
            callbacks.append(telemetry.TelemetryCallback())
        return callbacks

    def _serial_callbacks(self, task: SweepTask) -> list:
        callbacks = self._progress_callbacks()
        if self.store is not None and self.checkpoint_every:
            from repro.training.callbacks import CheckpointCallback

            if not self.resume_trial_state:
                # --no-resume means retrain, full stop: a stale mid-trial
                # snapshot must not sneak the old run's state back in.
                self.store.clear_trial_state(task)
            callbacks.append(CheckpointCallback(self.store, task,
                                                every=self.checkpoint_every))
        return callbacks

    # ------------------------------------------------------------------ vectorized
    def _run_vectorized(self, tasks: Sequence[SweepTask], sweep: SweepResult,
                        callback: Optional[Callable[[SweepTask, TrainingResult], None]]
                        ) -> None:
        """Everything lock-steps: batched strategy groups + generic groups.

        Trials the batched strategy can replay faithfully group by
        (design, env, hidden size); every other design — DQN, FPGA, the
        unregularized OS-ELM variants — groups by environment and advances
        through the generic per-agent strategy, so the whole grid reports
        ``backend_used="lockstep"``.
        """
        from repro.training.trainer import Trainer

        batched: Dict[Tuple[str, str, int], List[SweepTask]] = defaultdict(list)
        generic: Dict[str, List[SweepTask]] = defaultdict(list)
        for task in tasks:
            if _design_supports_lockstep(task.design):
                batched[(task.design, task.env_id, task.n_hidden)].append(task)
            else:
                generic[task.env_id].append(task)
        plans = [(group_tasks, "batched") for group_tasks in batched.values()]
        plans += [(group_tasks, "generic") for group_tasks in generic.values()]
        for group_tasks, strategy in plans:
            agents = [task.make_agent() for task in group_tasks]
            configs = [task.training for task in group_tasks]
            trainer = Trainer(callbacks=self._progress_callbacks())
            results = trainer.fit_lockstep(agents, configs, strategy=strategy)
            for task, agent, result in zip(group_tasks, agents, results):
                if self.save_policies:
                    self.store.save_policy(task, agent)
                if callback is not None:
                    callback(task, result)
                sweep.add(task, result, backend_used="lockstep")
