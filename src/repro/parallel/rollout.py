"""Vectorized greedy rollouts: evaluate one agent over N envs at once.

The serial :func:`repro.rl.runner.evaluate_agent` plays evaluation episodes
one at a time.  ``evaluate_agent_vectorized`` drives a
:class:`~repro.parallel.vector_env.VectorEnv` with the agent's batched
action path (:meth:`~repro.core.agents.QLearningAgent.act_batch`): each
iteration selects actions for all N in-flight episodes with one forward
pass, so the Q-network cost per environment step drops by ~N.

Each sub-env is assigned a fixed quota of ``n_episodes / num_envs``
episodes up front and contributes exactly its first ``quota`` episodes —
crediting episodes in completion order instead would oversample short
episodes (fast envs finish more of them while a long episode is still in
flight) and bias the statistic low.  With a seed, the batch's initial
states derive from ``spawn_seeds`` via the vector env, so results are
reproducible for a fixed ``(seed, num_envs)`` (they intentionally differ
from the serial evaluator's episode stream).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.agents import QLearningAgent
from repro.parallel.vector_env import VectorEnv, make_vector


def evaluate_agent_vectorized(agent: QLearningAgent,
                              env: Union[str, VectorEnv] = "CartPole-v0", *,
                              n_episodes: int = 10, num_envs: int = 4,
                              seed: Optional[int] = None,
                              max_steps: int = 100_000) -> np.ndarray:
    """Greedy evaluation over a vector env; returns ``n_episodes`` lengths.

    Parameters
    ----------
    agent:
        Any agent; ones overriding ``act_batch`` (the ELM family) evaluate
        the whole batch in one forward pass per step.
    env:
        Registered env id (a :class:`SyncVectorEnv` of ``num_envs`` copies
        is built) or an existing vector env.
    n_episodes:
        How many finished episodes to credit.
    num_envs:
        Batch width when ``env`` is an id.
    seed:
        Root seed for the batch's reset streams.
    max_steps:
        Safety valve on total vector steps (guards against a policy that
        never terminates in an env without a time limit).
    """
    if n_episodes <= 0:
        raise ValueError("n_episodes must be positive")
    venv = make_vector(env, num_envs, seed=seed) if isinstance(env, str) else env
    owns_env = isinstance(env, str)
    try:
        observations, _ = venv.reset(seed=seed if not owns_env else None)
        quotas = np.full(venv.num_envs, n_episodes // venv.num_envs, dtype=int)
        quotas[:n_episodes % venv.num_envs] += 1
        collected: list = [[] for _ in range(venv.num_envs)]
        in_flight = np.zeros(venv.num_envs, dtype=int)
        remaining = n_episodes
        for _ in range(max_steps):
            actions = agent.act_batch(observations, explore=False)
            step = venv.step(actions)
            in_flight += 1
            for i in np.flatnonzero(step.dones):
                if len(collected[i]) < quotas[i]:
                    collected[i].append(int(in_flight[i]))
                    remaining -= 1
                in_flight[i] = 0
            observations = step.observations
            if remaining <= 0:
                break
        else:  # pragma: no cover - policy never terminated
            raise RuntimeError(f"evaluation exceeded {max_steps} vector steps")
        return np.asarray([length for env_lengths in collected
                           for length in env_lengths], dtype=int)
    finally:
        if owns_env:
            venv.close()
