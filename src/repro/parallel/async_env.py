"""Asynchronous vector env: overlap subprocess stepping with agent compute.

:class:`SubprocVectorEnv.step` is synchronous — the parent blocks on the
worker pipes while the sub-envs integrate, then the workers idle while the
parent runs agent math.  :class:`AsyncVectorEnv` splits that round-trip
into :meth:`step_async` (ship the actions, return immediately) and
:meth:`step_wait` (collect the results), so the parent's agent update for
transition *t* runs **while** the workers are already integrating step
*t+1*:

    >>> observations, _ = venv.reset(seed=0)            # doctest: +SKIP
    >>> actions = policy(observations)
    >>> venv.step_async(actions)                        # workers stepping...
    >>> result = venv.step_wait()
    >>> venv.step_async(policy(result.observations))    # ...step t+1 launched
    >>> agent_update(observations, actions, result)     # ...overlapped with it

:func:`pipelined_rollout` packages that double-buffered schedule; the
throughput benchmark uses it to measure the overlap win against the
synchronous ``step()`` loop under an identical workload.

Semantics are *unchanged* from the synchronous paths: ``step_async`` +
``step_wait`` is observation-for-observation identical to
``SubprocVectorEnv.step`` (the class literally splits that method in two),
which in turn mirrors :class:`~repro.parallel.vector_env.SyncVectorEnv` —
the equivalence tests pin all three.  ``steps_per_message`` batching
composes: each async round-trip can advance up to k frames per sub-env.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.parallel.subproc import SubprocVectorEnv, _receive
from repro.parallel.vector_env import VectorStepResult


class AsyncVectorEnv(SubprocVectorEnv):
    """A :class:`SubprocVectorEnv` whose step round-trip is splittable.

    All constructor parameters (``env_fns``, ``autoreset``, ``context``,
    ``steps_per_message``) are inherited unchanged.  ``step()`` remains
    available with synchronous semantics (``step_async`` + ``step_wait``
    back to back), so the class is a drop-in superset.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._step_pending = False

    @property
    def step_pending(self) -> bool:
        """True between :meth:`step_async` and its :meth:`step_wait`."""
        return self._step_pending

    # ------------------------------------------------------------------ API
    def step_async(self, actions) -> None:
        """Ship one batch of actions to the workers without waiting.

        Exactly one async step may be in flight: a second ``step_async``
        before :meth:`step_wait` raises, because the pipe protocol pairs
        one reply per command and silently queueing a second batch would
        let the caller's view of "current observation" drift.
        """
        self._ensure_open()
        if self._step_pending:
            raise RuntimeError("step_async() called with a step already in "
                               "flight; call step_wait() first")
        actions = self._check_actions(actions)
        for remote, action in zip(self._remotes, actions):
            remote.send(("step", (action, self.steps_per_message)))
        self._step_pending = True

    def step_wait(self) -> VectorStepResult:
        """Collect the in-flight step launched by :meth:`step_async`."""
        self._ensure_open()
        if not self._step_pending:
            raise RuntimeError("step_wait() called with no step in flight; "
                               "call step_async() first")
        observations = np.empty((self.num_envs, self._obs_dim))
        rewards = np.empty(self.num_envs)
        terminated = np.zeros(self.num_envs, dtype=bool)
        truncated = np.zeros(self.num_envs, dtype=bool)
        infos: List[Dict[str, Any]] = []
        try:
            for i, remote in enumerate(self._remotes):
                obs, reward, term, trunc, info = _receive(remote)
                observations[i] = obs
                rewards[i] = reward
                terminated[i] = term
                truncated[i] = trunc
                infos.append(info)
        finally:
            self._step_pending = False
        return VectorStepResult(observations, rewards, terminated, truncated, infos)

    def step(self, actions) -> VectorStepResult:
        """Synchronous step — ``step_async`` + ``step_wait`` back to back."""
        self.step_async(actions)
        return self.step_wait()

    def reset(self, *, seed: Optional[int] = None
              ) -> Tuple[np.ndarray, List[Dict[str, Any]]]:
        if self._step_pending:        # drop the stale results, then reset
            self.step_wait()
        return super().reset(seed=seed)

    def close(self) -> None:
        if self._step_pending and not self._closed:
            try:
                self.step_wait()
            except Exception:  # pragma: no cover - worker already gone
                self._step_pending = False
        super().close()


def pipelined_rollout(venv: AsyncVectorEnv,
                      policy: Callable[[np.ndarray], np.ndarray],
                      n_steps: int, *,
                      update: Optional[Callable[[np.ndarray, np.ndarray,
                                                 VectorStepResult], None]] = None,
                      seed: Optional[int] = None) -> Dict[str, float]:
    """Drive the double-buffered step/update pipeline for ``n_steps`` rounds.

    Per round the schedule is: collect step *t*, immediately launch step
    *t+1* from its observations, and only then run ``update`` on transition
    *t* — so the update executes concurrently with the workers integrating
    the next step.  With ``update=None`` the loop still exercises the
    overlap (the policy evaluation itself is the overlapped compute).

    Returns aggregate counters: ``env_steps`` (frames advanced, counting
    ``steps_per_message`` batching via the workers' ``frames`` info),
    ``episodes`` (auto-reset completions) and ``total_reward``.
    """
    if n_steps <= 0:
        raise ValueError("n_steps must be positive")
    observations, _ = venv.reset(seed=seed)
    actions = policy(observations)
    venv.step_async(actions)
    env_steps = 0
    episodes = 0
    total_reward = 0.0
    for round_index in range(n_steps):
        result = venv.step_wait()
        last = round_index == n_steps - 1
        if not last:
            next_actions = policy(result.observations)
            venv.step_async(next_actions)
        if update is not None:
            update(observations, actions, result)
        env_steps += sum(info.get("frames", 1) for info in result.infos)
        episodes += int(result.dones.sum())
        total_reward += float(result.rewards.sum())
        observations = result.observations
        if not last:
            actions = next_actions
    return {"env_steps": float(env_steps), "episodes": float(episodes),
            "total_reward": total_reward}


__all__ = ["AsyncVectorEnv", "pipelined_rollout"]
