"""Worker-pool fan-out behind the sweep runner's process backend.

``parallel_map`` is a thin, deterministic-by-construction wrapper around
:class:`concurrent.futures.ProcessPoolExecutor`: results stream back to an
optional callback as they complete, but the returned list is always in
submission order, so callers get identical aggregates regardless of worker
scheduling.  The ``"serial"`` backend runs the same code path without any
pool — useful on single-core machines and for debugging — which keeps the
two modes behaviourally interchangeable.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_max_workers(n_tasks: int) -> int:
    """Worker count: one per task, capped by the visible CPU count."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(n_tasks, cpus))


def parallel_map(fn: Callable[[T], R], items: Sequence[T], *,
                 backend: str = "process", max_workers: Optional[int] = None,
                 callback: Optional[Callable[[int, R], None]] = None) -> List[R]:
    """Apply ``fn`` to every item, optionally across a process pool.

    Parameters
    ----------
    fn:
        A picklable (module-level) callable for the process backend.
    items:
        Work items; results come back in this order.
    backend:
        ``"process"`` fans out over a :class:`ProcessPoolExecutor`;
        ``"serial"`` loops in the calling process.
    max_workers:
        Pool size for the process backend (default: one worker per item,
        capped by the CPU count).
    callback:
        Invoked as ``callback(index, result)`` as each item *completes* —
        streaming progress, not submission order.
    """
    if backend not in ("process", "serial"):
        raise ValueError(f"unknown backend {backend!r}; use 'process' or 'serial'")
    items = list(items)
    if not items:
        return []
    if backend == "serial" or len(items) == 1:
        results = []
        for index, item in enumerate(items):
            result = fn(item)
            if callback is not None:
                callback(index, result)
            results.append(result)
        return results

    workers = max_workers if max_workers is not None else default_max_workers(len(items))
    results: List[Any] = [None] * len(items)
    with ProcessPoolExecutor(max_workers=workers) as executor:
        pending = {executor.submit(fn, item): index
                   for index, item in enumerate(items)}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                results[index] = future.result()
                if callback is not None:
                    callback(index, results[index])
    return results
