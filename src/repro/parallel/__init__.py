"""repro.parallel: vectorized environments and multi-seed sweep orchestration.

The subsystem has three layers (see the README for the architecture sketch
and determinism guarantees):

* **Vector envs** — :class:`SyncVectorEnv` / :class:`SubprocVectorEnv` /
  :class:`AsyncVectorEnv` step N registry environments behind one stacked
  ``reset()``/``step()`` interface with auto-reset (``Async`` adds the
  ``step_async``/``step_wait`` split that overlaps env stepping with agent
  compute); :func:`make_vector` builds any of them from a registered id
  with ``spawn_seeds``-derived per-env seeds.
* **Lock-step training** — :func:`train_agents_lockstep` advances N
  independent ELM-family trials with batched agent math over a vector env
  (the single-core throughput path).
* **Sweep orchestration** — :class:`SweepRunner` fans a
  (design x env x seed) :class:`SweepSpec` grid across the vectorized,
  process-pool, serial or distributed (:mod:`repro.distributed`) backend
  and aggregates the streamed results into a :class:`SweepResult`.
"""

from repro.parallel.async_env import AsyncVectorEnv, pipelined_rollout
from repro.parallel.lockstep import supports_lockstep, train_agents_lockstep
from repro.parallel.pool import parallel_map
from repro.parallel.rollout import evaluate_agent_vectorized
from repro.parallel.subproc import SubprocVectorEnv
from repro.parallel.sweep import SweepResult, SweepRunner, SweepSpec, SweepTask
from repro.parallel.vector_env import (
    EnvFactory,
    SyncVectorEnv,
    VectorEnv,
    VectorStepResult,
    make_vector,
)

__all__ = [
    "AsyncVectorEnv",
    "EnvFactory",
    "SubprocVectorEnv",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SweepTask",
    "SyncVectorEnv",
    "VectorEnv",
    "VectorStepResult",
    "evaluate_agent_vectorized",
    "make_vector",
    "parallel_map",
    "pipelined_rollout",
    "supports_lockstep",
    "train_agents_lockstep",
]
