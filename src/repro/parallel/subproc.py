"""Subprocess vector env: one worker process per sub-env, piped commands.

``SubprocVectorEnv`` mirrors :class:`~repro.parallel.vector_env.SyncVectorEnv`
command-for-command — same auto-reset rule, same seeding contract — so the
two produce *identical* trajectories given identical ``env_fns`` and seeds
(a property the test-suite asserts).  The payoff is different: ``Sync``
amortizes Python overhead inside one process, while ``Subproc`` buys true
OS-level parallelism for environments whose ``step()`` is genuinely
expensive (physics simulators, rendering).  For the micro-second CartPole
steps of this paper the pipe round-trip dominates, which is why the sweep
machinery defaults to the in-process engines — see the README's
"when to use Sync vs Subproc" table.

Workers are started with the default multiprocessing start method
(``fork`` on Linux).  With ``spawn``, the ``env_fns`` must be picklable —
use :class:`~repro.parallel.vector_env.EnvFactory` rather than closures.

For environments where the pipe round-trip still dominates, the
``steps_per_message`` argument batches k env steps into one message
(frame-skip style): each :meth:`SubprocVectorEnv.step` call repeats the
given action up to k times inside the worker — stopping early at episode
end — and ships back the final observation with the summed reward.  One
round-trip then amortizes over k ``step()`` calls of the underlying env.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing.connection import Connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.core import Env
from repro.parallel.vector_env import VectorEnv, VectorStepResult
from repro.telemetry.tracing import span


def _subproc_worker(remote: Connection, parent_remote: Connection,
                    env_fn: Callable[[], Env], autoreset: bool) -> None:
    """Worker loop: owns one sub-env, executes piped commands until 'close'.

    Exceptions raised by the env (step-before-reset, invalid actions) are
    shipped back as ``("error", exc)`` payloads and re-raised in the parent,
    so a misuse surfaces as the underlying error instead of a dead pipe.
    """
    parent_remote.close()
    env = env_fn()
    try:
        while True:
            command, payload = remote.recv()
            if command == "close":
                remote.send(("ok", None))
                break
            try:
                if command == "reset":
                    result = env.reset(seed=payload)
                elif command == "step":
                    action, repeat = payload
                    total_reward = 0.0
                    frames = 0
                    step = None
                    for _ in range(repeat):
                        step = env.step(action)
                        total_reward += step.reward
                        frames += 1
                        if step.done:
                            break
                    observation = step.observation
                    info = dict(step.info)
                    if repeat > 1:
                        info["frames"] = frames
                    if step.done and autoreset:
                        info["final_observation"] = observation.copy()
                        observation, _ = env.reset()
                    result = (observation, total_reward, step.terminated,
                              step.truncated, info)
                elif command == "spaces":
                    result = (env.observation_space, env.action_space,
                              env.n_observations)
                else:  # pragma: no cover - protocol error
                    raise RuntimeError(f"unknown vector-env command {command!r}")
            except Exception as exc:
                remote.send(("error", exc))
                continue
            remote.send(("ok", result))
    finally:
        env.close()
        remote.close()


def _receive(remote: Connection):
    """Unwrap a worker reply, re-raising shipped exceptions in the parent."""
    status, payload = remote.recv()
    if status == "error":
        raise payload
    return payload


class SubprocVectorEnv(VectorEnv):
    """Vector env with each sub-env living in its own worker process.

    Parameters
    ----------
    env_fns:
        One picklable zero-argument constructor per sub-env.
    autoreset:
        Reset finished sub-envs automatically inside the worker (default),
        exposing the terminal observation as ``infos[i]["final_observation"]``.
    context:
        Multiprocessing start method (``"fork"``, ``"spawn"``, ...); ``None``
        uses the platform default.
    steps_per_message:
        Env steps advanced per pipe message (default 1).  With k > 1 each
        :meth:`step` call repeats its action up to k times inside the worker
        (stopping early at episode end; frame-skip semantics), cutting the
        round-trip count by up to k for heavyweight environments.  Rewards
        come back summed over the frames actually advanced and
        ``infos[i]["frames"]`` reports that count.
    """

    def __init__(self, env_fns: Sequence[Callable[[], Env]], *,
                 autoreset: bool = True, context: Optional[str] = None,
                 steps_per_message: int = 1) -> None:
        if not env_fns:
            raise ValueError("SubprocVectorEnv needs at least one env_fn")
        if steps_per_message < 1:
            raise ValueError(
                f"steps_per_message must be >= 1, got {steps_per_message}")
        ctx = mp.get_context(context)
        self.num_envs = len(env_fns)
        self.steps_per_message = int(steps_per_message)
        self.autoreset = bool(autoreset)
        self._remotes: List[Connection] = []
        self._processes: List[mp.Process] = []
        self._closed = False
        for env_fn in env_fns:
            remote, worker_remote = ctx.Pipe()
            process = ctx.Process(
                target=_subproc_worker,
                args=(worker_remote, remote, env_fn, self.autoreset),
                daemon=True,
            )
            process.start()
            worker_remote.close()
            self._remotes.append(remote)
            self._processes.append(process)
        self._remotes[0].send(("spaces", None))
        spaces = _receive(self._remotes[0])
        self.single_observation_space, self.single_action_space, self._obs_dim = spaces

    # ------------------------------------------------------------------ API
    def reset(self, *, seed: Optional[int] = None
              ) -> Tuple[np.ndarray, List[Dict[str, Any]]]:
        self._ensure_open()
        seeds = self._spawn_reset_seeds(seed)
        for remote, env_seed in zip(self._remotes, seeds):
            remote.send(("reset", env_seed))
        observations = np.empty((self.num_envs, self._obs_dim))
        infos: List[Dict[str, Any]] = []
        for i, remote in enumerate(self._remotes):
            obs, info = _receive(remote)
            observations[i] = obs
            infos.append(info)
        return observations, infos

    def step(self, actions) -> VectorStepResult:
        with span("subproc_env.step"):
            self._ensure_open()
            actions = self._check_actions(actions)
            for remote, action in zip(self._remotes, actions):
                remote.send(("step", (action, self.steps_per_message)))
            observations = np.empty((self.num_envs, self._obs_dim))
            rewards = np.empty(self.num_envs)
            terminated = np.zeros(self.num_envs, dtype=bool)
            truncated = np.zeros(self.num_envs, dtype=bool)
            infos: List[Dict[str, Any]] = []
            for i, remote in enumerate(self._remotes):
                obs, reward, term, trunc, info = _receive(remote)
                observations[i] = obs
                rewards[i] = reward
                terminated[i] = term
                truncated[i] = trunc
                infos.append(info)
            return VectorStepResult(observations, rewards, terminated,
                                    truncated, infos)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for remote in self._remotes:
            try:
                remote.send(("close", None))
                remote.recv()
            except (BrokenPipeError, EOFError):  # pragma: no cover - worker died
                pass
            remote.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("SubprocVectorEnv has been closed")

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
