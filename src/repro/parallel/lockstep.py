"""Lock-step batched training of N independent ELM-family trials.

The paper's sweeps average many independent trials (designs x seeds); the
serial path trains them one after another, and every one of those runs is
dominated by Python call overhead around microsecond-scale NumPy kernels
(a 5x32 matmul, a rank-1 update of a 32x32 matrix).  This module advances
all N trials *in lock-step through one process*: each iteration performs

* one batched epsilon-greedy sweep — the hidden layers of all N agents are
  evaluated with stacked ``(N, n_actions, n_inputs) @ (N, n_inputs, H)``
  matmuls instead of N separate Python call chains;
* one vectorized environment step (through
  :class:`~repro.parallel.vector_env.SyncVectorEnv`, including its batched
  CartPole physics);
* one batched OS-ELM sequential update (targets, Sherman–Morrison ``P``
  update and ``beta`` update stacked over the subset of agents whose random
  update gate fired this step).

Semantics are trial-for-trial those of :func:`repro.rl.runner.train_agent`:
each trial keeps its own agent RNG streams (exploration draws, update-gate
draws and weight-reset redraws consume each agent's own generator in the
same order as the serial loop), its own environment stream, its own solved
criterion, stall-reset rule and episode budget.  Trials that finish early
(solved with ``stop_when_solved``) stop consuming agent state while the
rest of the batch runs on.

Scope: agents whose model is a plain :class:`~repro.core.elm.ELM` or
:class:`~repro.core.os_elm.OSELM` (designs 1–5).  The DQN baseline and the
fixed-point FPGA model keep their own update rules and run through the
serial/process backends of :class:`~repro.parallel.sweep.SweepRunner`.

Timing attribution: operation *counts* in each result's breakdown are exact
(they drive the platform latency projections of Figure 5/6); measured
*seconds* of the batched phases are apportioned across trials by their
share of the operation counts, and ``wall_time_seconds`` is the wall time
of the whole batch (all N trials trained concurrently within it).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.agents import ELMQAgent, _ELMFamilyAgent
from repro.core.clipping import shaped_cartpole_reward
from repro.core.elm import ELM
from repro.core.os_elm import OSELM
from repro.parallel.vector_env import EnvFactory, SyncVectorEnv
from repro.rl.recording import EpisodeRecord, TrainingCurve, TrainingResult
from repro.rl.runner import TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.metrics import SolvedCriterion

_LOGGER = get_logger("repro.parallel.lockstep")


def supports_lockstep(agent: object) -> bool:
    """Whether an agent can join a lock-step batch.

    True for the ELM design and the L2-regularized OS-ELM designs.  False
    for DQN (different update rule), the FPGA design (fixed-point core with
    its own state), and the *unregularized* OS-ELM variants: without the
    ridge term the recursive inverse-Gram update is numerically chaotic, so
    the 1-ULP differences between batched and serial BLAS paths amplify
    into visibly different trajectories, breaking the serial-replay
    guarantee.  Unsupported designs run through the sweep's serial/process
    paths instead.
    """
    if not isinstance(agent, _ELMFamilyAgent) or type(agent.model) not in (ELM, OSELM):
        return False
    if isinstance(agent.model, OSELM) and agent.model.regularization.l2_delta <= 0:
        return False
    return True


class _Trial:
    """Per-trial bookkeeping mirrored from the serial training loop."""

    __slots__ = (
        "agent", "config", "criterion", "curve", "episode", "steps",
        "shaped_return", "active", "solved", "episodes_to_solve", "seq_phase",
        "delegate_observe", "acts_init", "acts_seq", "boots", "sequps",
        "n_applied_updates",
    )

    def __init__(self, agent: _ELMFamilyAgent, config: TrainingConfig) -> None:
        self.agent = agent
        self.config = config
        self.criterion = SolvedCriterion(config.solved_threshold,
                                         config.solved_window, config.max_episodes)
        self.curve = TrainingCurve()
        self.episode = 1
        self.steps = 0
        self.shaped_return = 0.0
        self.active = True
        self.solved = False
        self.episodes_to_solve: Optional[int] = None
        #: Whether the trial has entered the batched sequential-update phase.
        self.seq_phase = False
        #: ELM agents retrain in-place on every buffer refill; their observe
        #: path stays on the agent object and only acting is batched.
        self.delegate_observe = isinstance(agent, ELMQAgent)
        self.acts_init = 0
        self.acts_seq = 0
        self.boots = 0
        self.sequps = 0
        self.n_applied_updates = 0


def _validate_batch(agents: Sequence[_ELMFamilyAgent],
                    configs: Sequence[TrainingConfig]) -> None:
    if not agents:
        raise ValueError("train_agents_lockstep needs at least one agent")
    if len(agents) != len(configs):
        raise ValueError(
            f"got {len(agents)} agents but {len(configs)} configs"
        )
    for agent in agents:
        if not supports_lockstep(agent):
            raise TypeError(
                f"{type(agent).__name__} (model {type(getattr(agent, 'model', None)).__name__}) "
                "cannot join a lock-step batch; route it through the serial or "
                "process backend instead"
            )
    first = agents[0].config
    first_activation = agents[0].model.activation.name
    for agent in agents[1:]:
        cfg = agent.config
        if (cfg.input_size, cfg.n_hidden, cfg.n_actions, cfg.n_states) != (
                first.input_size, first.n_hidden, first.n_actions, first.n_states):
            raise ValueError("all agents in a lock-step batch must share layer sizes")
        if agent.model.activation.name != first_activation:
            raise ValueError(
                "all agents in a lock-step batch must share the activation; got "
                f"{agent.model.activation.name!r} and {first_activation!r}"
            )
    env_ids = {config.env_id for config in configs}
    if len(env_ids) != 1:
        raise ValueError(f"all trials in a lock-step batch must share env_id, got {env_ids}")


def _build_vector_env(configs: Sequence[TrainingConfig]) -> SyncVectorEnv:
    env_fns = []
    for config in configs:
        kwargs = ()
        if config.max_steps_per_episode is not None:
            kwargs = (("max_episode_steps", config.max_steps_per_episode),)
        env_fns.append(EnvFactory(config.env_id, seed=config.seed, kwargs=kwargs))
    # The trainer emits guaranteed-valid int64 actions every step, so the
    # per-step validation of the batched path is pure overhead here.
    return SyncVectorEnv(env_fns, validate=False)


def train_agents_lockstep(agents: Sequence[_ELMFamilyAgent],
                          configs: Sequence[TrainingConfig], *,
                          venv: Optional[SyncVectorEnv] = None
                          ) -> List[TrainingResult]:
    """Train N independent trials in lock-step; returns one result per trial.

    Parameters
    ----------
    agents:
        One ELM-family agent per trial (see :func:`supports_lockstep`).
        All must share layer sizes; seeds and RNG state are per-agent.
    configs:
        One :class:`TrainingConfig` per trial.  ``env_id`` must match across
        the batch (one vector env drives all trials); budgets, thresholds
        and seeds may differ per trial.
    venv:
        Pre-built vector env (one sub-env per trial, in trial order).  Built
        from the configs' ``env_id``/seeds when omitted.
    """
    _validate_batch(agents, configs)
    n_trials = len(agents)
    trials = [_Trial(agent, config) for agent, config in zip(agents, configs)]
    if venv is None:
        venv = _build_vector_env(configs)
    if venv.num_envs != n_trials:
        raise ValueError(f"vector env has {venv.num_envs} sub-envs for {n_trials} trials")

    shared = agents[0].config
    n_in, n_hidden = shared.input_size, shared.n_hidden
    n_states, n_actions = shared.n_states, shared.n_actions
    activation = agents[0].model.activation
    if venv.envs[0].n_observations != n_states:
        raise ValueError(
            f"env observations have {venv.envs[0].n_observations} dims but agents "
            f"expect {n_states}"
        )

    # ---------------------------------------------------------------- stacked model state
    alpha = np.stack([agent.model.alpha for agent in agents])       # (N, n_in, H)
    bias = np.stack([agent.model.bias for agent in agents])         # (N, H)
    beta = np.zeros((n_trials, n_hidden, 1))                        # (N, H, 1)
    p_stack = np.zeros((n_trials, n_hidden, n_hidden))              # (N, H, H)
    target_beta = np.zeros((n_trials, n_hidden, 1))                 # (N, H, 1)
    has_beta = np.zeros(n_trials, dtype=bool)
    any_beta = False                    #: event-maintained mirror of has_beta.any()

    gamma = np.array([agent.config.gamma for agent in agents])
    clip_targets = np.array([agent.config.clip_targets for agent in agents])
    clip_low = np.array([agent.config.clip_low for agent in agents])
    clip_high = np.array([agent.config.clip_high for agent in agents])

    # Network-input buffer for the batched action sweep: the action block is
    # constant, only the state slice changes each step.
    sweep_inputs = np.empty((n_trials, n_actions, n_in))
    if shared.one_hot_actions:
        sweep_inputs[:, :, n_states:] = np.eye(n_actions)
    else:
        sweep_inputs[:, :, n_states] = np.arange(n_actions, dtype=float)
    # The hidden tensor relu(encode(states) @ alpha + bias) of each step is
    # computed once and reused three times: the epsilon-greedy sweep reads it
    # against the online beta, the target bootstrap reads next-step rows
    # against theta_2, and the Sherman-Morrison update extracts its input row
    # as the chosen-action slice.  Two buffers ping-pong between "current" and
    # "next" states.
    hidden_a = np.empty((n_trials, n_actions, n_hidden))
    hidden_b = np.empty((n_trials, n_actions, n_hidden))
    q_buf = np.empty((n_trials, n_actions, 1))
    q_zeros = np.zeros((n_trials, n_actions))
    relu = activation.name == "relu"
    uniform_clip = bool(clip_targets.all()) and np.unique(clip_low).size == 1 \
        and np.unique(clip_high).size == 1
    clip_lo_scalar, clip_hi_scalar = float(clip_low[0]), float(clip_high[0])

    def compute_hidden(out: np.ndarray) -> np.ndarray:
        """Hidden layers of all trials for the states currently in sweep_inputs."""
        np.matmul(sweep_inputs, alpha, out=out)
        out += bias[:, None, :]
        if relu:
            np.maximum(out, 0.0, out=out)
        else:
            out[:] = activation.forward(out)
        return out

    # The per-step epsilon-greedy and update-gate decisions are inlined from
    # EpsilonGreedyPolicy.select / RandomUpdateGate.should_update: same RNG
    # objects, same draw order, so trials stay bit-identical to the serial
    # loop while skipping per-call validation overhead.
    policies = [agent.policy for agent in agents]
    gates = [getattr(agent, "update_gate", None) for agent in agents]

    def sync_from_model(i: int) -> None:
        """Copy a freshly initial-trained model's (beta, P, theta_2) into the stacks."""
        nonlocal any_beta
        model = agents[i].model
        beta[i] = model.beta
        if isinstance(model, OSELM) and model._recursive is not None:
            p_stack[i] = model._recursive.p
        if agents[i]._target_beta is not None:
            target_beta[i] = agents[i]._target_beta
        has_beta[i] = True
        any_beta = True

    def flush_to_model(i: int) -> None:
        """Write the stacked (beta, P, theta_2) back into the trial's model."""
        trial = trials[i]
        if trial.delegate_observe or not trial.seq_phase:
            return
        model = agents[i].model
        model.beta = beta[i].copy()
        if isinstance(model, OSELM) and model._recursive is not None:
            model._recursive.beta = model.beta
            model._recursive.p = p_stack[i].copy()
            model._recursive.updates = trial.n_applied_updates
        agents[i]._target_beta = target_beta[i].copy()

    def resync_after_reset(i: int) -> None:
        """Mirror a stall-triggered weight reset (fresh alpha, cleared state)."""
        nonlocal any_beta
        model = agents[i].model
        alpha[i] = model.alpha
        bias[i] = model.bias
        beta[i] = 0.0
        p_stack[i] = 0.0
        target_beta[i] = 0.0
        has_beta[i] = False
        any_beta = bool(has_beta.any())
        trials[i].seq_phase = False
        trials[i].n_applied_updates = 0

    # ---------------------------------------------------------------- main loop
    start_wall = time.perf_counter()
    t_act = t_boot = t_update = 0.0
    for i, agent in enumerate(agents):
        agent.begin_episode(trials[i].episode)
    states, _ = venv.reset()
    actions = np.zeros(n_trials, dtype=np.int64)
    active_indices = list(range(n_trials))
    sweep_inputs[:, :, :n_states] = states[:, None, :]
    hidden_cur = compute_hidden(hidden_a)
    spare = hidden_b

    while active_indices:
        # ---- batched epsilon-greedy action sweep -------------------------
        t0 = time.perf_counter()
        if any_beta:
            q_matrix = np.matmul(hidden_cur, beta, out=q_buf)[:, :, 0]   # (N, A)
        else:
            q_matrix = q_zeros
        t_act += time.perf_counter() - t0
        for i in active_indices:
            trial = trials[i]
            policy = policies[i]
            if policy._rng.random() >= policy.greedy_probability:
                policy.random_selections += 1
                actions[i] = policy._rng.integers(n_actions)
            else:
                policy.greedy_selections += 1
                row = q_matrix[i]
                if n_actions == 2:
                    actions[i] = 0 if row[0] >= row[1] else 1
                else:
                    actions[i] = np.argmax(row)
            if trial.agent.initial_training_done:
                trial.acts_seq += 1
            else:
                trial.acts_init += 1

        # ---- vectorized environment step ---------------------------------
        step = venv.step(actions)
        t0 = time.perf_counter()
        sweep_inputs[:, :, :n_states] = step.observations[:, None, :]
        hidden_next = compute_hidden(spare)
        t_act += time.perf_counter() - t0

        # ---- observe: delegated (buffer/initial-training) and batched seq --
        batched_updates: List[int] = []
        update_rewards: List[float] = []
        update_dones: List[bool] = []
        finished: List[int] = []
        terminated_flags = step.terminated.tolist()
        truncated_flags = step.truncated.tolist()
        for i in active_indices:
            trial = trials[i]
            agent = trial.agent
            trial.steps += 1
            term, trunc = terminated_flags[i], truncated_flags[i]
            done = term or trunc
            next_obs = (step.infos[i]["final_observation"] if done
                        else step.observations[i])
            if trial.config.reward_shaping:
                reward = shaped_cartpole_reward(
                    term, trunc, trial.steps,
                    success_steps=trial.config.success_steps)
            else:
                reward = float(step.rewards[i])
            trial.shaped_return += reward

            if trial.delegate_observe or not trial.seq_phase:
                agent.observe(states[i], actions[i], reward, next_obs, done)
                if trial.delegate_observe:
                    model_beta = agent.model.beta
                    if model_beta is not None:
                        beta[i] = model_beta
                        has_beta[i] = True
                        any_beta = True
                elif agent.initial_training_done:
                    trial.seq_phase = True
                    sync_from_model(i)
            else:
                agent.global_step += 1
                gate = gates[i]
                if gate._rng.random() < gate.update_probability:
                    gate.accepted += 1
                    batched_updates.append(i)
                    update_rewards.append(reward)
                    update_dones.append(done)
                else:
                    gate.rejected += 1
            if done:
                finished.append(i)

        if batched_updates:
            idx = np.asarray(batched_updates)
            # Clipped targets bootstrapped from the stacked theta_2 snapshots.
            # Next-state hidden rows are the slices just computed for the next
            # action sweep, except for episode ends, whose bootstrap state is
            # the terminal observation rather than the auto-reset one.
            t0 = time.perf_counter()
            boot_hidden = np.empty((idx.size, n_actions, n_hidden))
            for pos, i in enumerate(batched_updates):
                if update_dones[pos]:
                    # The target drops the bootstrap on terminal transitions
                    # (q_learning_target's (1 - d_t) factor), so the terminal
                    # state's hidden rows are never needed — zero-fill rather
                    # than evaluate them.
                    boot_hidden[pos] = 0.0
                else:
                    boot_hidden[pos] = hidden_next[i]
            max_next = (boot_hidden @ target_beta[idx])[:, :, 0].max(axis=1)
            not_done = 1.0 - np.asarray(update_dones, dtype=float)
            targets = np.asarray(update_rewards) + gamma[idx] * not_done * max_next
            if uniform_clip:
                np.maximum(targets, clip_lo_scalar, out=targets)
                np.minimum(targets, clip_hi_scalar, out=targets)
            else:
                clip_mask = clip_targets[idx]
                targets[clip_mask] = np.clip(targets[clip_mask],
                                             clip_low[idx][clip_mask],
                                             clip_high[idx][clip_mask])
            t_boot += time.perf_counter() - t0
            # Sherman–Morrison rank-1 update of each gated trial's (P, beta),
            # in place through views of the stacks (copying P in and out via
            # fancy indexing would cost O(H^2) per update).  The input row is
            # the chosen-action slice of the hidden tensor the action sweep
            # already evaluated; the operation sequence per trial is exactly
            # the serial sherman_morrison_update / beta_update pair.
            t0 = time.perf_counter()
            h = hidden_cur[idx, actions[idx]]                            # (U, H)
            for pos, i in enumerate(batched_updates):
                h_row = h[pos]
                p_i = p_stack[i]
                ph = p_i @ h_row
                denom = 1.0 + float(h_row @ ph)
                if denom <= 0:
                    # The serial path raises LinAlgError here and the agent
                    # skips the update (plain OS-ELM's instability).
                    trials[i].agent.skipped_updates += 1
                    continue
                np.subtract(p_i, np.outer(ph, ph) / denom, out=p_i)
                beta_col = beta[i, :, 0]
                residual = targets[pos] - float(h_row @ beta_col)
                beta_col += p_i @ (h_row * residual)
                trials[i].n_applied_updates += 1
            for i in idx:
                trials[i].boots += 1
                trials[i].sequps += 1
            t_update += time.perf_counter() - t0

        # ---- per-trial episode bookkeeping -------------------------------
        for i in finished:
            trial = trials[i]
            agent = trial.agent
            if trial.seq_phase and not trial.delegate_observe:
                agent.episodes_completed += 1
                if agent.episodes_completed % agent.config.target_update_interval == 0:
                    target_beta[i] = beta[i]
            else:
                agent.end_episode(trial.episode)
            now_solved = trial.criterion.update(trial.steps)
            record = EpisodeRecord(
                episode=trial.episode,
                steps=trial.steps,
                shaped_return=trial.shaped_return,
                moving_average=trial.criterion.average,
            )
            if trial.config.record_lipschitz and hasattr(agent, "lipschitz_upper_bound"):
                flush_to_model(i)
                record.lipschitz_bound = agent.lipschitz_upper_bound()
                if hasattr(agent, "beta_norm"):
                    record.beta_norm = agent.beta_norm()
            trial.curve.append(record)

            if now_solved and trial.episodes_to_solve is None:
                trial.episodes_to_solve = trial.episode
                trial.solved = True
                _LOGGER.info("task solved", design=agent.name, episode=trial.episode,
                             n_hidden=agent.config.n_hidden)
                if trial.config.stop_when_solved:
                    trial.active = False
                    continue
            if hasattr(agent, "register_progress"):
                resets_before = agent.weight_resets
                agent.register_progress(now_solved)
                if agent.weight_resets != resets_before:
                    resync_after_reset(i)
                    # The trial's alpha changed, so its next-step hidden rows
                    # (already computed with the old weights) must be redone.
                    pre = sweep_inputs[i] @ alpha[i] + bias[i]
                    hidden_next[i] = (np.maximum(pre, 0.0) if relu
                                      else activation.forward(pre))
            if trial.episode >= trial.config.max_episodes:
                trial.active = False
                continue
            trial.episode += 1
            trial.steps = 0
            trial.shaped_return = 0.0
            agent.begin_episode(trial.episode)
        if finished:
            active_indices = [i for i in active_indices if trials[i].active]
        states = step.observations
        hidden_cur, spare = hidden_next, hidden_cur

    wall_time = time.perf_counter() - start_wall

    # ---------------------------------------------------------------- finalize
    results: List[TrainingResult] = []
    total_acts = sum(t.acts_init + t.acts_seq for t in trials) or 1
    total_boots = sum(t.boots for t in trials) or 1
    total_sequps = sum(t.sequps for t in trials) or 1
    for i, trial in enumerate(trials):
        flush_to_model(i)
        agent = trial.agent
        act_seconds = t_act * (trial.acts_init + trial.acts_seq) / total_acts
        act_total = trial.acts_init + trial.acts_seq or 1
        if trial.acts_init:
            agent._record("predict_init", act_seconds * trial.acts_init / act_total,
                          count=trial.acts_init * n_actions)
        if trial.acts_seq:
            agent._record("predict_seq", act_seconds * trial.acts_seq / act_total,
                          count=trial.acts_seq * n_actions)
        if trial.boots:
            agent._record("predict_seq", t_boot * trial.boots / total_boots,
                          count=trial.boots * n_actions)
        if trial.sequps:
            agent._record("seq_train", t_update * trial.sequps / total_sequps,
                          count=trial.sequps)
        results.append(TrainingResult(
            design=agent.name,
            n_hidden=int(agent.config.n_hidden),
            solved=trial.solved,
            episodes=len(trial.curve),
            episodes_to_solve=trial.episodes_to_solve,
            wall_time_seconds=wall_time,
            curve=trial.curve,
            breakdown=agent.breakdown,
            weight_resets=getattr(agent, "weight_resets", 0),
            seed=trial.config.seed,
        ))
    return results
