"""Deprecated front door of lock-step batched training.

``train_agents_lockstep`` used to implement the batched ELM/OS-ELM training
loop by hand; the loop now lives in
:meth:`repro.training.trainer.Trainer.fit_lockstep` with the batched math
in :class:`repro.training.strategies.BatchedELMStrategy`, and this module
is a thin compatibility wrapper.  Per-trial semantics are those of the
serial trainer — fixed-seed results replay the historical implementation
bit-for-bit (pinned by the equivalence suite).

New code should use::

    from repro.training import Trainer
    results = Trainer().fit_lockstep(agents, configs)          # auto strategy

which additionally trains *any* protocol agent (DQN, FPGA, unregularized
OS-ELM) lock-step through the generic per-agent strategy; this wrapper
keeps the historical batched-only contract (it raises for agents the
batched strategy cannot replay faithfully).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.agents import _ELMFamilyAgent
from repro.parallel.vector_env import SyncVectorEnv
from repro.telemetry.tracing import span
from repro.training.config import TrainingConfig
from repro.training.records import TrainingResult
from repro.training.strategies import supports_lockstep

__all__ = ["supports_lockstep", "train_agents_lockstep"]


def train_agents_lockstep(agents: Sequence[_ELMFamilyAgent],
                          configs: Sequence[TrainingConfig], *,
                          venv: Optional[SyncVectorEnv] = None
                          ) -> List[TrainingResult]:
    """Train N independent trials in lock-step; returns one result per trial.

    .. deprecated:: 1.4
        Thin wrapper over :meth:`repro.training.Trainer.fit_lockstep` with
        ``strategy="batched"`` (identical results).

    Parameters
    ----------
    agents:
        One ELM-family agent per trial (see :func:`supports_lockstep`).
        All must share layer sizes; seeds and RNG state are per-agent.
    configs:
        One :class:`TrainingConfig` per trial.  ``env_id`` must match across
        the batch (one vector env drives all trials); budgets, thresholds
        and seeds may differ per trial.
    venv:
        Pre-built vector env (one sub-env per trial, in trial order).  Built
        from the configs' ``env_id``/seeds when omitted.
    """
    from repro.training.trainer import Trainer

    if not agents:
        raise ValueError("train_agents_lockstep needs at least one agent")
    for agent in agents:
        if not supports_lockstep(agent):
            raise TypeError(
                f"{type(agent).__name__} (model "
                f"{type(getattr(agent, 'model', None)).__name__}) "
                "cannot join a lock-step batch; route it through the serial or "
                "process backend instead"
            )
    with span("lockstep.train"):
        return Trainer().fit_lockstep(agents, configs, venv=venv,
                                      strategy="batched")
