"""Vectorized environments: batched ``reset()``/``step()`` over N sub-envs.

The serial training loop steps one :class:`~repro.envs.core.Env` at a time;
everything the paper sweeps over (designs, seeds, environments) therefore
executes sequentially.  A :class:`VectorEnv` exposes the same episode
semantics over a *batch* of environments: observations come back stacked as
``(N, obs_dim)`` arrays, rewards and the ``terminated``/``truncated`` flags
as length-``N`` vectors, and finished sub-envs are reset automatically so
the batch never stalls (the Gym vector-env convention).

Auto-reset contract
-------------------
When sub-env ``i`` finishes an episode during :meth:`VectorEnv.step`, the
returned ``observations[i]`` is the *initial observation of the next
episode* and the terminal observation is preserved in
``infos[i]["final_observation"]`` — exactly what a Q-learning loop needs to
bootstrap from the true terminal state while continuing the rollout.

:class:`SyncVectorEnv` steps its sub-envs in lock-step inside the calling
process.  When every sub-env is a stock CartPole it transparently switches
to a batched physics path (:meth:`CartPoleEnv.batch_dynamics`) that advances
all N cart-poles with array arithmetic; any other homogeneous batch of an
env class flagging ``supports_batch_dynamics`` (e.g.
:class:`~repro.envs.autoscale.AutoscaleEnv`) goes through the generic
``batch_dynamics(states, steps, actions, params, rngs)`` hook, rewards and
RNG streams included.  The per-env trajectories are identical either way.
:class:`~repro.parallel.subproc.SubprocVectorEnv` offers the same interface
across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.cartpole import CartPoleEnv
from repro.envs.core import Env
from repro.envs.registry import make as make_env
from repro.envs.spaces import Space
from repro.telemetry.tracing import span
from repro.utils.seeding import spawn_seeds


@dataclass
class VectorStepResult:
    """The stacked 5-tuple returned by :meth:`VectorEnv.step`."""

    observations: np.ndarray          #: ``(N, obs_dim)`` next observations (post auto-reset)
    rewards: np.ndarray               #: ``(N,)`` raw environment rewards
    terminated: np.ndarray            #: ``(N,)`` bool, true termination (pole fell, ...)
    truncated: np.ndarray             #: ``(N,)`` bool, time-limit truncation
    infos: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def dones(self) -> np.ndarray:
        """``terminated | truncated`` per sub-env."""
        return self.terminated | self.truncated

    def as_tuple(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                                List[Dict[str, Any]]]:
        return (self.observations, self.rewards, self.terminated, self.truncated,
                self.infos)

    def __iter__(self):
        return iter(self.as_tuple())


@dataclass(frozen=True)
class EnvFactory:
    """A picklable environment constructor bound to a registry id.

    ``SubprocVectorEnv`` ships factories across process boundaries, so plain
    closures over :func:`repro.envs.registry.make` only work with the
    ``fork`` start method; this small callable works everywhere.
    """

    env_id: str
    seed: Optional[int] = None
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __call__(self) -> Env:
        return make_env(self.env_id, seed=self.seed, **dict(self.kwargs))


class VectorEnv:
    """Abstract batched environment: N sub-envs behind one stacked interface."""

    num_envs: int
    single_observation_space: Space
    single_action_space: Space

    def reset(self, *, seed: Optional[int] = None
              ) -> Tuple[np.ndarray, List[Dict[str, Any]]]:
        """Reset every sub-env; returns stacked observations and per-env infos.

        ``seed`` re-seeds the whole batch reproducibly: sub-env ``i`` receives
        the ``i``-th seed of ``spawn_seeds(seed, num_envs)``, so the N initial
        states are independent but fully determined by one root seed.
        """
        raise NotImplementedError

    def step(self, actions) -> VectorStepResult:
        """Advance every sub-env by one timestep (with auto-reset on done)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release sub-env resources (worker processes, pipes)."""

    def _spawn_reset_seeds(self, seed: Optional[int]) -> List[Optional[int]]:
        if seed is None:
            return [None] * self.num_envs
        return list(spawn_seeds(seed, self.num_envs))

    def _check_actions(self, actions) -> np.ndarray:
        actions = np.asarray(actions)
        if actions.shape != (self.num_envs,):
            raise ValueError(
                f"expected {self.num_envs} actions (one per sub-env), got shape {actions.shape}"
            )
        return actions

    def __len__(self) -> int:
        return self.num_envs

    def __enter__(self) -> "VectorEnv":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} num_envs={self.num_envs}>"


class SyncVectorEnv(VectorEnv):
    """Lock-step vector env: N sub-envs stepped inside the calling process.

    Parameters
    ----------
    env_fns:
        One zero-argument constructor per sub-env (e.g. :class:`EnvFactory`
        instances, or closures over ``make``).
    autoreset:
        Reset finished sub-envs automatically during :meth:`step` (default).
        With ``autoreset=False`` a finished sub-env raises on the next step
        unless :meth:`reset` is called, mirroring the scalar ``Env`` contract.
    batch_physics:
        Use the vectorized CartPole dynamics when every sub-env is a stock
        :class:`CartPoleEnv` with identical parameters.  Trajectories are
        identical to the per-env path; this only changes speed.
    validate:
        Check per-step preconditions (reset-before-step, action membership)
        on the batched path.  Trusted internal drivers that construct
        guaranteed-valid integer actions (the lock-step trainer) disable
        this; invalid actions then silently behave like "not the push-right
        action" instead of raising.
    """

    def __init__(self, env_fns: Sequence[Callable[[], Env]], *,
                 autoreset: bool = True, batch_physics: bool = True,
                 validate: bool = True) -> None:
        if not env_fns:
            raise ValueError("SyncVectorEnv needs at least one env_fn")
        self.envs: List[Env] = [fn() for fn in env_fns]
        self.num_envs = len(self.envs)
        self.autoreset = bool(autoreset)
        self.validate = bool(validate)
        self.single_observation_space = self.envs[0].observation_space
        self.single_action_space = self.envs[0].action_space
        obs_shapes = {env.observation_space.shape for env in self.envs}
        if len(obs_shapes) != 1:
            raise ValueError(f"sub-envs have mismatched observation shapes: {obs_shapes}")
        self._obs_dim = self.envs[0].n_observations
        self._batch_physics = bool(batch_physics) and self._cartpole_fast_path_ok()
        self._batch_dynamics = (bool(batch_physics) and not self._batch_physics
                                and self._generic_fast_path_ok())
        # Fast-path mirrors of the per-env state; refreshed on every reset().
        # While batched stepping is active, these arrays are authoritative and
        # the sub-env objects are only guaranteed current at reset boundaries.
        self._states = np.zeros((self.num_envs, self._obs_dim))
        self._steps = np.zeros(self.num_envs, dtype=np.int64)
        self._started = np.zeros(self.num_envs, dtype=bool)
        self._unit_rewards = np.ones(self.num_envs)

    # ------------------------------------------------------------------ fast path
    def _cartpole_fast_path_ok(self) -> bool:
        if not all(type(env) is CartPoleEnv for env in self.envs):
            return False
        from repro.envs.spaces import Discrete

        first = self.envs[0]
        return (isinstance(first.action_space, Discrete)
                and first.action_space.start == 0
                and all(env.params == first.params
                        and env.max_episode_steps == first.max_episode_steps
                        for env in self.envs))

    def _generic_fast_path_ok(self) -> bool:
        """Homogeneous batch of a capability-flagged env class?

        Any :class:`~repro.envs.core.Env` subclass that sets
        ``supports_batch_dynamics = True`` and provides the
        ``batch_dynamics(states, steps, actions, params, rngs)`` hook (e.g.
        :class:`~repro.envs.autoscale.AutoscaleEnv`) is stepped through one
        vectorized call instead of N scalar ``step()``s.  CartPole keeps its
        dedicated path above (different hook signature, scalar small-batch
        twin); this generic gate deliberately excludes it.
        """
        first = self.envs[0]
        cls = type(first)
        if not getattr(cls, "supports_batch_dynamics", False):
            return False
        if not all(type(env) is cls for env in self.envs):
            return False
        from repro.envs.spaces import Discrete

        return (isinstance(first.action_space, Discrete)
                and first.action_space.start == 0
                and all(env.params == first.params
                        and env.max_episode_steps == first.max_episode_steps
                        for env in self.envs))

    @property
    def uses_batch_physics(self) -> bool:
        """Whether steps go through the vectorized CartPole dynamics."""
        return self._batch_physics

    @property
    def uses_batch_dynamics(self) -> bool:
        """Whether steps go through a vectorized path (CartPole's or generic)."""
        return self._batch_physics or self._batch_dynamics

    # ------------------------------------------------------------------ API
    def reset(self, *, seed: Optional[int] = None
              ) -> Tuple[np.ndarray, List[Dict[str, Any]]]:
        with span("vector_env.reset"):
            seeds = self._spawn_reset_seeds(seed)
            observations = np.empty((self.num_envs, self._obs_dim))
            infos: List[Dict[str, Any]] = []
            for i, env in enumerate(self.envs):
                obs, info = env.reset(seed=seeds[i])
                observations[i] = obs
                infos.append(info)
            self._states = observations.copy()
            self._steps[:] = 0
            self._started[:] = True
            return observations, infos

    def step(self, actions) -> VectorStepResult:
        with span("vector_env.step"):
            actions = self._check_actions(actions)
            if self._batch_physics:
                return self._step_batched(actions)
            if self._batch_dynamics:
                return self._step_batched_generic(actions)
            result = self._step_loop(actions)
            if self.autoreset:
                self._autoreset(result)
            return result

    def close(self) -> None:
        for env in self.envs:
            env.close()

    # ------------------------------------------------------------------ stepping
    def _step_loop(self, actions: np.ndarray) -> VectorStepResult:
        observations = np.empty((self.num_envs, self._obs_dim))
        rewards = np.empty(self.num_envs)
        terminated = np.zeros(self.num_envs, dtype=bool)
        truncated = np.zeros(self.num_envs, dtype=bool)
        infos: List[Dict[str, Any]] = []
        for i, env in enumerate(self.envs):
            step = env.step(actions[i])
            observations[i] = step.observation
            rewards[i] = step.reward
            terminated[i] = step.terminated
            truncated[i] = step.truncated
            infos.append(dict(step.info))
        return VectorStepResult(observations, rewards, terminated, truncated, infos)

    def _step_batched(self, actions: np.ndarray) -> VectorStepResult:
        """Vectorized CartPole stepping over the persistent state mirror.

        Produces trajectories identical to the per-env loop; the sub-env
        objects themselves are refreshed at episode boundaries only (their
        ``state`` attribute is stale between resets on this path).  Small
        batches integrate the dynamics with a scalar Python loop (NumPy ufunc
        dispatch costs more than the arithmetic below ~16 cart-poles); large
        batches go through :meth:`CartPoleEnv.batch_dynamics`.  Both evaluate
        the identical Euler step.
        """
        if self.validate:
            self._validate_batch_actions(actions)
        env0 = self.envs[0]
        params = env0.params
        max_steps = env0.max_episode_steps
        self._steps += 1
        if self.num_envs <= 16:
            new_states, term_flags = self._scalar_dynamics(actions, params)
            terminated = np.array(term_flags)
        else:
            new_states = CartPoleEnv.batch_dynamics(self._states, actions, params)
            terminated = (np.abs(new_states[:, 0]) > params.position_threshold) \
                | (np.abs(new_states[:, 2]) > params.angle_threshold)
        self._states = new_states
        if max_steps is None:
            dones = terminated
            truncated = np.zeros(self.num_envs, dtype=bool)
        else:
            truncated = self._steps >= max_steps
            dones = terminated | truncated
        observations = new_states.copy()
        # Same per-step infos as CartPoleEnv._step produces on the loop path,
        # so the two paths stay interchangeable for info consumers too.
        steps_list = self._steps.tolist()
        infos: List[Dict[str, Any]] = [{"steps": steps_list[i]}
                                       for i in range(self.num_envs)]
        if dones.any():
            for i in np.flatnonzero(dones):
                if self.autoreset:
                    infos[i]["final_observation"] = new_states[i].copy()
                    obs, _ = self.envs[i].reset()
                    self._states[i] = obs
                    observations[i] = obs
                    self._steps[i] = 0
                else:
                    self._started[i] = False
        return VectorStepResult(observations, self._unit_rewards.copy(),
                                terminated, truncated, infos)

    def _validate_batch_actions(self, actions: np.ndarray) -> None:
        """Batched mirror of the per-env step preconditions."""
        if not self._started.all():
            i = int(np.flatnonzero(~self._started)[0])
            raise RuntimeError(f"step() called before reset() on sub-env {i}")
        space = self.single_action_space
        if actions.dtype.kind not in "iu":
            # Discrete spaces reject floats/bools element-wise on the
            # per-env path; mirror that wholesale for the batch.
            raise ValueError(
                f"actions must be an integer array for {space}, got dtype "
                f"{actions.dtype}"
            )
        if ((actions < 0) | (actions >= space.n)).any():
            bad = next(a for a in actions if not space.contains(int(a)))
            raise ValueError(f"action {bad!r} is not contained in {space}")

    def _step_batched_generic(self, actions: np.ndarray) -> VectorStepResult:
        """One vectorized step through the env class's ``batch_dynamics`` hook.

        The hook receives the persistent state/step mirrors plus each
        sub-env's own generator (in sub-env order), so the RNG streams
        advance exactly as N scalar ``step()`` calls would — the serial
        ``_step`` of a capability-flagged env delegates to the same function
        on a one-row batch, which is what makes the two paths bit-identical.
        Unlike the CartPole path, rewards come from the dynamics, not a
        constant.
        """
        if self.validate:
            self._validate_batch_actions(actions)
        env0 = self.envs[0]
        new_states, rewards, terminated = type(env0).batch_dynamics(
            self._states, self._steps, actions, env0.params,
            [env._rng for env in self.envs])
        self._steps += 1
        max_steps = env0.max_episode_steps
        terminated = np.asarray(terminated, dtype=bool)
        if max_steps is None:
            truncated = np.zeros(self.num_envs, dtype=bool)
        else:
            truncated = self._steps >= max_steps
        dones = terminated | truncated
        self._states = np.asarray(new_states, dtype=np.float64)
        observations = self._states.copy()
        steps_list = self._steps.tolist()
        infos: List[Dict[str, Any]] = [{"steps": steps_list[i]}
                                       for i in range(self.num_envs)]
        if dones.any():
            for i in np.flatnonzero(dones):
                if self.autoreset:
                    infos[i]["final_observation"] = self._states[i].copy()
                    obs, _ = self.envs[i].reset()
                    self._states[i] = obs
                    observations[i] = obs
                    self._steps[i] = 0
                else:
                    self._started[i] = False
        return VectorStepResult(observations, np.asarray(rewards, dtype=np.float64),
                                terminated, truncated, infos)

    def _scalar_dynamics(self, actions: np.ndarray,
                         params) -> Tuple[np.ndarray, List[bool]]:
        """Per-env Euler step in scalar Python — same arithmetic, no ufunc dispatch."""
        rows, term_flags = CartPoleEnv.batch_dynamics_scalar(
            self._states.tolist(), actions.tolist(), params)
        return np.array(rows), term_flags

    def _autoreset(self, result: VectorStepResult) -> None:
        for i in np.flatnonzero(result.dones):
            result.infos[i]["final_observation"] = result.observations[i].copy()
            obs, _ = self.envs[i].reset()
            result.observations[i] = obs


def make_vector(env_id: str, num_envs: int, *, seed: Optional[int] = None,
                vectorization: str = "sync", **kwargs: Any) -> VectorEnv:
    """Build a vector env of ``num_envs`` registry environments.

    Parameters
    ----------
    env_id:
        Registered id, e.g. ``"CartPole-v0"``.
    num_envs:
        Batch size N.
    seed:
        Root seed; sub-env ``i`` is constructed with the ``i``-th seed of
        ``spawn_seeds(seed, num_envs)`` so the batch is reproducible and the
        per-env streams never overlap.
    vectorization:
        ``"sync"`` (in-process lock-step), ``"subproc"`` (one worker
        process per sub-env) or ``"async"`` (subproc workers with the
        ``step_async``/``step_wait`` split of
        :class:`~repro.parallel.async_env.AsyncVectorEnv`).
    kwargs:
        Forwarded to the environment constructor (e.g. ``max_episode_steps``).
    """
    if num_envs <= 0:
        raise ValueError(f"num_envs must be positive, got {num_envs}")
    seeds: List[Optional[int]] = (list(spawn_seeds(seed, num_envs))
                                  if seed is not None else [None] * num_envs)
    factory_kwargs = tuple(sorted(kwargs.items()))
    env_fns = [EnvFactory(env_id, seed=seeds[i], kwargs=factory_kwargs)
               for i in range(num_envs)]
    if vectorization == "sync":
        return SyncVectorEnv(env_fns)
    if vectorization == "subproc":
        from repro.parallel.subproc import SubprocVectorEnv

        return SubprocVectorEnv(env_fns)
    if vectorization == "async":
        from repro.parallel.async_env import AsyncVectorEnv

        return AsyncVectorEnv(env_fns)
    raise ValueError(f"unknown vectorization {vectorization!r}; "
                     "use 'sync', 'subproc' or 'async'")
