"""A lightweight fixed-point ndarray wrapper.

:class:`FixedPointArray` stores the raw integer words of a :class:`QFormat`
and exposes real-valued views.  It intentionally supports only the operations
the paper's FPGA core needs (add, multiply, divide, matmul via
:mod:`repro.fixedpoint.ops`), each of which re-quantizes its result exactly
like a fixed-width hardware datapath.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np

from repro.fixedpoint.qformat import Q20, QFormat

ArrayLike = Union[float, int, Iterable, np.ndarray]


def quantize_array(value: ArrayLike, fmt: QFormat = Q20) -> np.ndarray:
    """Quantize real values onto ``fmt``'s grid and return them as float64."""
    return fmt.quantize(np.asarray(value, dtype=np.float64))


class FixedPointArray:
    """An n-dimensional array of fixed-point numbers.

    Parameters
    ----------
    value:
        Real-valued data to quantize, or raw integer words when ``raw=True``.
    fmt:
        The fixed-point format (defaults to the paper's 32-bit Q20).
    raw:
        When true, ``value`` is interpreted as raw words rather than reals.
    """

    __slots__ = ("fmt", "_raw")

    def __init__(self, value: ArrayLike, fmt: QFormat = Q20, *, raw: bool = False) -> None:
        self.fmt = fmt
        if raw:
            self._raw = np.asarray(value, dtype=np.int64).copy()
        else:
            self._raw = fmt.to_raw(np.asarray(value, dtype=np.float64))

    # ------------------------------------------------------------------ constructors
    @classmethod
    def zeros(cls, shape: Union[int, Tuple[int, ...]], fmt: QFormat = Q20) -> "FixedPointArray":
        return cls(np.zeros(shape, dtype=np.int64), fmt, raw=True)

    @classmethod
    def eye(cls, n: int, fmt: QFormat = Q20, *, scale: float = 1.0) -> "FixedPointArray":
        return cls(np.eye(n) * scale, fmt)

    @classmethod
    def from_raw(cls, raw: np.ndarray, fmt: QFormat = Q20) -> "FixedPointArray":
        return cls(raw, fmt, raw=True)

    # ------------------------------------------------------------------ views
    @property
    def raw(self) -> np.ndarray:
        """Raw integer words (int64 view, do not mutate)."""
        return self._raw

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._raw.shape

    @property
    def ndim(self) -> int:
        return self._raw.ndim

    @property
    def size(self) -> int:
        return int(self._raw.size)

    @property
    def nbytes(self) -> int:
        """Storage footprint at the nominal word width (not the int64 host width)."""
        return self.size * ((self.fmt.total_bits + 7) // 8)

    def to_float(self) -> np.ndarray:
        """Real-valued (float64) copy of the array."""
        return self.fmt.from_raw(self._raw)

    def __array__(self, dtype=None) -> np.ndarray:
        arr = self.to_float()
        return arr.astype(dtype) if dtype is not None else arr

    # ------------------------------------------------------------------ indexing
    def __getitem__(self, key) -> "FixedPointArray":
        sub = self._raw[key]
        if np.isscalar(sub) or sub.ndim == 0:
            return FixedPointArray(np.asarray(sub), self.fmt, raw=True)
        return FixedPointArray(sub, self.fmt, raw=True)

    def __setitem__(self, key, value) -> None:
        if isinstance(value, FixedPointArray):
            if value.fmt != self.fmt:
                value = FixedPointArray(value.to_float(), self.fmt)
            self._raw[key] = value.raw
        else:
            self._raw[key] = self.fmt.to_raw(np.asarray(value, dtype=np.float64))

    # ------------------------------------------------------------------ helpers
    def copy(self) -> "FixedPointArray":
        return FixedPointArray(self._raw.copy(), self.fmt, raw=True)

    def item(self) -> float:
        return float(self.fmt.from_raw(self._raw).item())

    def max_abs_error_vs(self, reference: np.ndarray) -> float:
        """Maximum absolute difference between this array and a float reference."""
        return float(np.max(np.abs(self.to_float() - np.asarray(reference, dtype=np.float64))))

    def __len__(self) -> int:
        return len(self._raw)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FixedPointArray(shape={self.shape}, fmt={self.fmt.name})"

    # ------------------------------------------------------------------ arithmetic (delegates to ops)
    def __add__(self, other: Union["FixedPointArray", ArrayLike]) -> "FixedPointArray":
        from repro.fixedpoint.ops import fixed_add
        return fixed_add(self, _coerce(other, self.fmt), fmt=self.fmt)

    def __sub__(self, other: Union["FixedPointArray", ArrayLike]) -> "FixedPointArray":
        from repro.fixedpoint.ops import fixed_add
        negated = FixedPointArray(-_coerce(other, self.fmt).to_float(), self.fmt)
        return fixed_add(self, negated, fmt=self.fmt)

    def __mul__(self, other: Union["FixedPointArray", ArrayLike]) -> "FixedPointArray":
        from repro.fixedpoint.ops import fixed_multiply
        return fixed_multiply(self, _coerce(other, self.fmt), fmt=self.fmt)

    def __matmul__(self, other: Union["FixedPointArray", ArrayLike]) -> "FixedPointArray":
        from repro.fixedpoint.ops import fixed_matmul
        return fixed_matmul(self, _coerce(other, self.fmt), fmt=self.fmt)

    def __truediv__(self, other: Union["FixedPointArray", ArrayLike]) -> "FixedPointArray":
        from repro.fixedpoint.ops import fixed_divide
        return fixed_divide(self, _coerce(other, self.fmt), fmt=self.fmt)


def _coerce(value: Union[FixedPointArray, ArrayLike], fmt: QFormat) -> FixedPointArray:
    if isinstance(value, FixedPointArray):
        if value.fmt == fmt:
            return value
        return FixedPointArray(value.to_float(), fmt)
    return FixedPointArray(value, fmt)
