"""Fixed-point arithmetic modelling the paper's FPGA number format.

Section 4.2 states that the OS-ELM Q-Network core uses a **32-bit Q20
fixed-point format** (20 fractional bits, 11 integer bits, 1 sign bit) for
input data, the weight matrices ``alpha`` and ``beta`` and all intermediate
results.  This subpackage provides:

* :class:`QFormat` — a signed Qm.n format descriptor with quantization,
  saturation and rounding,
* :class:`FixedPointArray` — an ndarray wrapper that stores raw integer
  words and exposes real-valued views,
* :mod:`repro.fixedpoint.ops` — matrix add / multiply / divide kernels that
  quantize every intermediate exactly the way a single-accumulator hardware
  datapath would, so the functional FPGA simulation reproduces the numerical
  behaviour (including rounding error) of the Verilog core.
"""

from repro.fixedpoint.qformat import OverflowPolicy, Q20, QFormat, RoundingMode
from repro.fixedpoint.array import FixedPointArray, quantize_array
from repro.fixedpoint.ops import (
    fixed_add,
    fixed_divide,
    fixed_dot,
    fixed_matmul,
    fixed_multiply,
    fixed_outer,
    fixed_reciprocal,
    quantization_error,
)

__all__ = [
    "OverflowPolicy",
    "Q20",
    "QFormat",
    "RoundingMode",
    "FixedPointArray",
    "quantize_array",
    "fixed_add",
    "fixed_divide",
    "fixed_dot",
    "fixed_matmul",
    "fixed_multiply",
    "fixed_outer",
    "fixed_reciprocal",
    "quantization_error",
]
