"""Signed Qm.n fixed-point format descriptor.

A ``QFormat(total_bits, frac_bits)`` value is stored as a signed integer of
``total_bits`` bits whose real value is ``raw / 2**frac_bits``.  The paper's
core uses ``QFormat(32, 20)`` ("32-bit Q20 number"), giving a resolution of
about 9.5e-7 and a representable range of roughly ±2048.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.utils.exceptions import ConfigurationError, FixedPointOverflowError

ArrayLike = Union[float, int, np.ndarray]


class RoundingMode(enum.Enum):
    """How real values are mapped onto the fixed-point grid."""

    NEAREST = "nearest"       #: round half away from zero (DSP-style rounding)
    FLOOR = "floor"           #: truncate toward negative infinity (cheapest in hardware)
    ZERO = "zero"             #: truncate toward zero


class OverflowPolicy(enum.Enum):
    """What happens when a value exceeds the representable range."""

    SATURATE = "saturate"     #: clamp to the min/max representable value (typical DSP behaviour)
    WRAP = "wrap"             #: two's-complement wrap-around
    ERROR = "error"           #: raise :class:`FixedPointOverflowError`


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format with ``total_bits`` bits, ``frac_bits`` fractional.

    Attributes
    ----------
    total_bits:
        Word width including the sign bit (the paper uses 32).
    frac_bits:
        Number of fractional bits (the paper uses 20).
    rounding:
        Rounding mode applied during quantization.
    overflow:
        Overflow handling policy.
    """

    total_bits: int = 32
    frac_bits: int = 20
    rounding: RoundingMode = RoundingMode.NEAREST
    overflow: OverflowPolicy = OverflowPolicy.SATURATE

    def __post_init__(self) -> None:
        if self.total_bits < 2 or self.total_bits > 64:
            raise ConfigurationError(f"total_bits must be in [2, 64], got {self.total_bits}")
        if self.frac_bits < 0 or self.frac_bits >= self.total_bits:
            raise ConfigurationError(
                f"frac_bits must be in [0, total_bits), got {self.frac_bits} for {self.total_bits} bits"
            )

    # ------------------------------------------------------------------ properties
    @property
    def int_bits(self) -> int:
        """Integer bits excluding the sign bit."""
        return self.total_bits - self.frac_bits - 1

    @property
    def scale(self) -> float:
        """Real value of one least-significant bit (2**-frac_bits)."""
        return float(2.0 ** (-self.frac_bits))

    @property
    def raw_min(self) -> int:
        return -(1 << (self.total_bits - 1))

    @property
    def raw_max(self) -> int:
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.scale

    @property
    def resolution(self) -> float:
        """Alias for :attr:`scale` — the quantization step."""
        return self.scale

    @property
    def name(self) -> str:
        return f"Q{self.int_bits}.{self.frac_bits} ({self.total_bits}-bit)"

    # ------------------------------------------------------------------ conversion
    def _round(self, scaled: np.ndarray) -> np.ndarray:
        if self.rounding is RoundingMode.NEAREST:
            return np.where(scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5))
        if self.rounding is RoundingMode.FLOOR:
            return np.floor(scaled)
        return np.trunc(scaled)

    def _handle_overflow(self, raw: np.ndarray) -> np.ndarray:
        if self.overflow is OverflowPolicy.SATURATE:
            return np.clip(raw, self.raw_min, self.raw_max)
        if self.overflow is OverflowPolicy.WRAP:
            span = 1 << self.total_bits
            wrapped = np.mod(raw - self.raw_min, span) + self.raw_min
            return wrapped
        overflow = (raw < self.raw_min) | (raw > self.raw_max)
        if np.any(overflow):
            bad = np.asarray(raw)[overflow]
            raise FixedPointOverflowError(
                f"{bad.size} value(s) overflow {self.name}; first offending raw value {bad.flat[0]}"
            )
        return raw

    def to_raw(self, value: ArrayLike) -> np.ndarray:
        """Quantize real values to raw integer words (int64)."""
        arr = np.asarray(value, dtype=np.float64)
        if arr.size and not np.all(np.isfinite(arr)):
            raise ValueError("cannot quantize NaN or Inf values")
        scaled = arr * (2.0 ** self.frac_bits)
        raw = self._round(scaled)
        raw = self._handle_overflow(raw)
        return raw.astype(np.int64)

    def from_raw(self, raw: ArrayLike) -> np.ndarray:
        """Convert raw integer words back to real values (float64)."""
        return np.asarray(raw, dtype=np.float64) * self.scale

    def quantize(self, value: ArrayLike) -> np.ndarray:
        """Round-trip real values through the fixed-point grid."""
        return self.from_raw(self.to_raw(value))

    def representable(self, value: ArrayLike, *, tol: float = 0.0) -> np.ndarray:
        """Element-wise check that values survive quantization unchanged (within ``tol``)."""
        arr = np.asarray(value, dtype=np.float64)
        return np.abs(self.quantize(arr) - arr) <= tol + 1e-15

    def with_policy(self, *, rounding: RoundingMode = None,
                    overflow: OverflowPolicy = None) -> "QFormat":
        """Return a copy with a different rounding and/or overflow policy."""
        return QFormat(
            self.total_bits,
            self.frac_bits,
            rounding if rounding is not None else self.rounding,
            overflow if overflow is not None else self.overflow,
        )

    def __str__(self) -> str:
        return self.name


#: The paper's number format: 32-bit word with 20 fractional bits.
Q20 = QFormat(total_bits=32, frac_bits=20)
