"""Fixed-point matrix kernels mirroring the FPGA core's datapath.

The paper's OS-ELM Q-Network core implements the predict and seq_train
modules "with matrix add, mult, and div operations" using a *single* add,
mult and div unit (Section 4.2).  The kernels below reproduce that datapath's
numerical behaviour: every elementary product/sum is re-quantized to the
target Q-format, so quantization error accumulates the same way it would in
the hardware's 32-bit Q20 accumulator.

A ``precise_accumulate`` flag allows modelling a wider accumulator (e.g. a
48-bit DSP accumulator that only rounds once at the output), which is the
configuration used for the ablation in ``benchmarks/bench_ablation_fixedpoint.py``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.fixedpoint.array import FixedPointArray, _coerce
from repro.fixedpoint.qformat import Q20, QFormat

FixedOrArray = Union[FixedPointArray, np.ndarray, float, int]


def _as_fixed(value: FixedOrArray, fmt: QFormat) -> FixedPointArray:
    return _coerce(value, fmt)


def fixed_add(a: FixedOrArray, b: FixedOrArray, *, fmt: QFormat = Q20) -> FixedPointArray:
    """Element-wise addition with saturation in the target format.

    Addition of two Qm.n numbers is exact unless it overflows, so this is a
    raw integer addition followed by overflow handling.
    """
    fa, fb = _as_fixed(a, fmt), _as_fixed(b, fmt)
    raw = fa.raw + fb.raw
    raw = fmt._handle_overflow(raw)
    return FixedPointArray(raw, fmt, raw=True)


def fixed_multiply(a: FixedOrArray, b: FixedOrArray, *, fmt: QFormat = Q20) -> FixedPointArray:
    """Element-wise multiplication with post-product rounding to the target format.

    The full product of two Qm.n words has 2n fractional bits; hardware shifts
    it right by n bits (with rounding) to return to Qm.n.
    """
    fa, fb = _as_fixed(a, fmt), _as_fixed(b, fmt)
    product = fa.to_float() * fb.to_float()
    return FixedPointArray(product, fmt)


def fixed_divide(a: FixedOrArray, b: FixedOrArray, *, fmt: QFormat = Q20) -> FixedPointArray:
    """Element-wise division, quantized to the target format.

    Division by a value that quantizes to zero raises ``ZeroDivisionError``
    (the hardware would flag this as an error condition).
    """
    fa, fb = _as_fixed(a, fmt), _as_fixed(b, fmt)
    denom = fb.to_float()
    if np.any(denom == 0.0):
        raise ZeroDivisionError("fixed-point division by a value that quantizes to zero")
    return FixedPointArray(fa.to_float() / denom, fmt)


def fixed_reciprocal(value: FixedOrArray, *, fmt: QFormat = Q20) -> FixedPointArray:
    """Reciprocal ``1/x`` in fixed point.

    This is the scalar operation that replaces the pseudo-inverse in the
    batch-size-1 OS-ELM update (Section 2.2) — the reason the FPGA core needs
    no SVD/QRD unit.
    """
    return fixed_divide(1.0, value, fmt=fmt)


def fixed_dot(a: FixedOrArray, b: FixedOrArray, *, fmt: QFormat = Q20,
              precise_accumulate: bool = False) -> FixedPointArray:
    """Inner product of two vectors with per-MAC re-quantization.

    With ``precise_accumulate=False`` (default, matching a Q20 accumulator)
    each partial product is rounded to the target format before being added;
    with ``precise_accumulate=True`` the accumulation happens in double
    precision and only the final sum is rounded.
    """
    fa, fb = _as_fixed(a, fmt), _as_fixed(b, fmt)
    va, vb = fa.to_float().reshape(-1), fb.to_float().reshape(-1)
    if va.shape != vb.shape:
        raise ValueError(f"vector shapes {va.shape} and {vb.shape} do not match")
    if precise_accumulate:
        return FixedPointArray(float(va @ vb), fmt)
    products = fmt.quantize(va * vb)
    # Sequential accumulation with re-quantization after every addition models
    # the single-adder datapath.  Because addition on the Q-grid is exact
    # (absent overflow), quantizing the running sum once is equivalent.
    total = fmt.quantize(np.sum(products))
    return FixedPointArray(total, fmt)


def fixed_matmul(a: FixedOrArray, b: FixedOrArray, *, fmt: QFormat = Q20,
                 precise_accumulate: bool = False) -> FixedPointArray:
    """Matrix product with per-element rounding consistent with :func:`fixed_dot`."""
    fa, fb = _as_fixed(a, fmt), _as_fixed(b, fmt)
    va, vb = fa.to_float(), fb.to_float()
    if va.ndim == 1:
        va = va.reshape(1, -1)
    if vb.ndim == 1:
        vb = vb.reshape(-1, 1)
    if va.shape[1] != vb.shape[0]:
        raise ValueError(f"matmul shape mismatch: {va.shape} @ {vb.shape}")
    if precise_accumulate:
        return FixedPointArray(va @ vb, fmt)
    # Quantize each elementary product, then sum.  Vectorized over the output
    # matrix: products[i, j, :] = va[i, :] * vb[:, j].
    products = fmt.quantize(va[:, None, :] * vb.T[None, :, :])
    result = products.sum(axis=2)
    return FixedPointArray(result, fmt)


def fixed_outer(a: FixedOrArray, b: FixedOrArray, *, fmt: QFormat = Q20) -> FixedPointArray:
    """Outer product of two vectors, quantized per element (used by seq_train's P update)."""
    fa, fb = _as_fixed(a, fmt), _as_fixed(b, fmt)
    va, vb = fa.to_float().reshape(-1), fb.to_float().reshape(-1)
    return FixedPointArray(np.outer(va, vb), fmt)


def quantization_error(value: Union[np.ndarray, float], fmt: QFormat = Q20) -> float:
    """Maximum absolute error introduced by quantizing ``value`` to ``fmt``."""
    arr = np.asarray(value, dtype=np.float64)
    return float(np.max(np.abs(fmt.quantize(arr) - arr))) if arr.size else 0.0
