"""Q-value clipping and the Q-learning target (Section 3.1).

ELM / OS-ELM drive their training error to zero for whatever target they are
given, so an outlier target (caused by an unstable network output on an
unseen input) is memorised instead of damped.  The paper therefore clips the
bootstrapped target ``r_t + gamma * (1 - d_t) * max_a Q_theta2(s_{t+1}, a)``
into ``[-1, 1]`` — the range of the environment's shaped rewards — before it
is used to update beta.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def clip_q_target(value: float, low: float = -1.0, high: float = 1.0) -> float:
    """Clip a scalar target into ``[low, high]`` (the paper uses [-1, 1])."""
    if low > high:
        raise ValueError(f"low ({low}) must be <= high ({high})")
    return float(np.clip(value, low, high))


def q_learning_target(reward: float, done: bool, max_next_q: float, *,
                      gamma: float = 0.99, clip: bool = True,
                      clip_low: float = -1.0, clip_high: float = 1.0) -> float:
    """The (optionally clipped) one-step Q-learning target of Algorithm 1.

    ``target = r_t + gamma * (1 - d_t) * max_a Q_theta2(s_{t+1}, a)`` —
    when the episode has ended (``done``) the bootstrap term is dropped, and
    when ``clip`` is set the result is clipped into ``[clip_low, clip_high]``
    (lines 19 and 22 of Algorithm 1).
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    target = float(reward) + gamma * (0.0 if done else 1.0) * float(max_next_q)
    if clip:
        target = clip_q_target(target, clip_low, clip_high)
    return target


def shaped_cartpole_reward(terminated: bool, truncated: bool, step_in_episode: int,
                           *, success_steps: int = 195) -> float:
    """Reward shaping used with the clipped Q-targets on CartPole.

    The paper relies on the convention that "the maximum reward given by the
    environment is 1 and the minimum reward is -1": instead of the raw +1 per
    step, the agent receives 0 on ordinary steps, -1 when the pole falls
    before ``success_steps`` steps, and +1 when the episode reaches the time
    limit (or survives at least ``success_steps`` steps).  This keeps every
    achievable Q-target inside the clipping range, which is what makes the
    clipping technique a stabiliser rather than a source of bias.
    """
    if terminated and step_in_episode < success_steps:
        return -1.0
    if truncated or (terminated and step_in_episode >= success_steps):
        return 1.0
    return 0.0


def make_reward_shaper(success_steps: int = 195) -> Callable[[bool, bool, int], float]:
    """Return a reward-shaping callable with a fixed success threshold."""
    def shaper(terminated: bool, truncated: bool, step_in_episode: int) -> float:
        return shaped_cartpole_reward(
            terminated, truncated, step_in_episode, success_steps=success_steps
        )
    return shaper
