"""The small buffer ``D`` used for initial training (Algorithm 1, Store state).

Unlike DQN's experience-replay buffer (tens of thousands of transitions,
sampled repeatedly), the paper's buffer D only needs to hold ``N-tilde``
transitions — just enough to perform the one-shot initial training of ELM /
OS-ELM — which is what makes the approach feasible on a memory-limited FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class Transition:
    """One environment interaction ``(s_t, a_t, r_t, s_{t+1}, d_t)``."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool

    def astuple(self) -> Tuple[np.ndarray, int, float, np.ndarray, bool]:
        return (self.state, self.action, self.reward, self.next_state, self.done)


class InitialTrainingBuffer:
    """A bounded FIFO buffer of transitions with batch extraction helpers."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._storage: List[Transition] = []

    def add(self, transition: Transition) -> None:
        """Append a transition; the oldest entry is dropped when full."""
        if len(self._storage) >= self.capacity:
            self._storage.pop(0)
        self._storage.append(transition)

    def store(self, state: np.ndarray, action: int, reward: float,
              next_state: np.ndarray, done: bool) -> None:
        """Convenience form of :meth:`add` matching Algorithm 1's Store state."""
        self.add(Transition(np.asarray(state, dtype=float).copy(), int(action),
                            float(reward), np.asarray(next_state, dtype=float).copy(),
                            bool(done)))

    def __len__(self) -> int:
        return len(self._storage)

    def __iter__(self) -> Iterator[Transition]:
        return iter(self._storage)

    def __getitem__(self, index: int) -> Transition:
        return self._storage[index]

    @property
    def full(self) -> bool:
        return len(self._storage) == self.capacity

    def clear(self) -> None:
        self._storage.clear()

    def as_batches(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stack the stored transitions into dense arrays.

        Returns ``(states, actions, rewards, next_states, dones)`` with shapes
        ``(k, n_state)``, ``(k,)``, ``(k,)``, ``(k, n_state)`` and ``(k,)``.
        """
        if not self._storage:
            raise ValueError("buffer is empty")
        states = np.stack([t.state for t in self._storage])
        actions = np.array([t.action for t in self._storage], dtype=np.int64)
        rewards = np.array([t.reward for t in self._storage], dtype=np.float64)
        next_states = np.stack([t.next_state for t in self._storage])
        dones = np.array([t.done for t in self._storage], dtype=bool)
        return states, actions, rewards, next_states, dones

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the stored transitions (float64 host storage)."""
        if not self._storage:
            return 0
        sample = self._storage[0]
        per_transition = sample.state.nbytes + sample.next_state.nbytes + 8 + 8 + 1
        return per_transition * len(self._storage)
