"""The paper's primary contribution: ELM / OS-ELM Q-Networks for on-device RL.

Public surface:

* :class:`ELM`, :class:`OSELM` — the single-hidden-layer regressors
  (Sections 2.1–2.3), including the ReOS-ELM L2-regularized initial training
  and the spectral normalization of the input weights.
* :class:`QFunction` — the simplified output model of Section 3.1:
  ``(state, action) -> scalar Q``.
* :class:`ELMQAgent`, :class:`OSELMQAgent` — Algorithm 1 (Determine /
  Observe / Store / Update) with Q-value clipping, random update and the
  fixed target network.
* :func:`make_design`, :data:`DESIGN_NAMES` — factory for the seven designs
  compared in Section 4 (ELM, OS-ELM, OS-ELM-L2, OS-ELM-Lipschitz,
  OS-ELM-L2-Lipschitz, DQN, FPGA).
"""

from repro.core.clipping import clip_q_target, q_learning_target
from repro.core.elm import ELM
from repro.core.os_elm import OSELM
from repro.core.policies import EpsilonGreedyPolicy, RandomUpdateGate
from repro.core.qfunction import QFunction
from repro.core.regularization import RegularizationConfig, lipschitz_bound
from repro.core.replay import InitialTrainingBuffer, Transition
from repro.core.agents import AgentConfig, ELMQAgent, OSELMQAgent, QLearningAgent
from repro.core.designs import DESIGN_NAMES, DesignSpec, design_spec, make_design

__all__ = [
    "clip_q_target",
    "q_learning_target",
    "ELM",
    "OSELM",
    "EpsilonGreedyPolicy",
    "RandomUpdateGate",
    "QFunction",
    "RegularizationConfig",
    "lipschitz_bound",
    "InitialTrainingBuffer",
    "Transition",
    "AgentConfig",
    "ELMQAgent",
    "OSELMQAgent",
    "QLearningAgent",
    "DESIGN_NAMES",
    "DesignSpec",
    "design_spec",
    "make_design",
]
