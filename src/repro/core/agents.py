"""ELM and OS-ELM Q-Network agents (Algorithm 1).

Both agents follow the paper's four-state loop:

* **Determine** — epsilon-greedy over the simplified Q-function (greedy with
  probability ``epsilon_1``).
* **Observe** — the environment transition is received from the runner.
* **Store** — the transition is appended to the small buffer ``D`` (capacity
  ``N-tilde``).
* **Update** — once ``global_step >= N-tilde``:

  * when the buffer holds exactly ``N-tilde`` transitions, the *initial
    training* is performed on the whole buffer with clipped targets computed
    from the fixed target network theta_2 (lines 17–19);
  * afterwards (OS-ELM only) each step triggers, with probability
    ``epsilon_2``, one batch-size-1 *sequential training* step on the current
    transition (lines 20–22, the random update of Section 3.2);
  * theta_2 is re-synchronised with theta_1 every ``UPDATE_STEP`` episodes
    (lines 23–24).

Every operation is attributed to the paper's Figure 5/6 labels
(``predict_init``, ``predict_seq``, ``init_train``, ``seq_train``) in a
:class:`~repro.utils.timer.TimeBreakdown`, with both wall-clock seconds and
invocation counts, so the execution-time experiments can either report
measured times or project them through the platform latency models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.core.clipping import q_learning_target
from repro.core.elm import ELM
from repro.core.os_elm import OSELM
from repro.core.policies import EpsilonGreedyPolicy, RandomUpdateGate
from repro.core.qfunction import QFunction, state_action_input_size
from repro.core.regularization import RegularizationConfig
from repro.core.replay import InitialTrainingBuffer, Transition
from repro.utils.seeding import np_random
from repro.utils.timer import TimeBreakdown
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class AgentConfig:
    """Hyper-parameters shared by the ELM / OS-ELM Q-Network agents.

    Defaults follow Section 4.1: ``epsilon_1 = 0.7``, ``epsilon_2 = 0.5``,
    ``UPDATE_STEP = 2``, ReLU activation; the regularization deltas are set
    per design by :mod:`repro.core.designs`.
    """

    n_states: int
    n_actions: int
    n_hidden: int = 64
    gamma: float = 0.99
    greedy_probability: float = 0.7       #: epsilon_1 — probability of the greedy action
    update_probability: float = 0.5       #: epsilon_2 — probability of a sequential update
    target_update_interval: int = 2       #: UPDATE_STEP — episodes between theta_2 syncs
    clip_targets: bool = True
    clip_low: float = -1.0
    clip_high: float = 1.0
    activation: str = "relu"
    regularization: RegularizationConfig = field(default_factory=RegularizationConfig)
    one_hot_actions: bool = False
    reset_after_episodes: Optional[int] = 300   #: reset rule of Section 4.3 (None disables)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_states <= 0 or self.n_actions <= 0 or self.n_hidden <= 0:
            raise ValueError("n_states, n_actions and n_hidden must be positive")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        check_probability(self.greedy_probability, name="greedy_probability")
        check_probability(self.update_probability, name="update_probability")
        if self.target_update_interval <= 0:
            raise ValueError("target_update_interval must be positive")
        if self.clip_low > self.clip_high:
            raise ValueError("clip_low must be <= clip_high")
        if self.reset_after_episodes is not None and self.reset_after_episodes <= 0:
            raise ValueError("reset_after_episodes must be positive or None")

    @property
    def input_size(self) -> int:
        """Input size of the simplified output model (5 for CartPole)."""
        return state_action_input_size(self.n_states, self.n_actions,
                                       one_hot=self.one_hot_actions)

    def with_updates(self, **changes) -> "AgentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


class QLearningAgent:
    """Common interface shared by the ELM/OS-ELM agents and the DQN baseline.

    The training runner drives agents exclusively through this interface:
    ``begin_episode`` / ``act`` / ``observe`` / ``end_episode`` plus the
    weight-reset hook used by the paper's stall-reset rule.
    """

    #: Display name used in experiment tables (overridden per design).
    name: str = "agent"

    def __init__(self) -> None:
        self.breakdown = TimeBreakdown()
        self.global_step = 0
        self.episodes_completed = 0

    # -- hooks ---------------------------------------------------------------
    def begin_episode(self, episode_index: int) -> None:
        """Called by the runner before each episode starts."""

    def act(self, state: np.ndarray, *, explore: bool = True) -> int:
        raise NotImplementedError

    def act_batch(self, states: np.ndarray, *, explore: bool = True) -> np.ndarray:
        """Choose one action per row of a ``(B, n_states)`` batch.

        The base implementation falls back to per-state :meth:`act` calls;
        agents with a batchable Q-function override it with a single forward
        pass (the path the vectorized rollout engine uses).
        """
        states = np.asarray(states, dtype=float)
        if states.ndim == 1:
            states = states.reshape(1, -1)
        return np.array([self.act(state, explore=explore) for state in states],
                        dtype=np.int64)

    def observe(self, state: np.ndarray, action: int, reward: float,
                next_state: np.ndarray, done: bool) -> None:
        raise NotImplementedError

    def end_episode(self, episode_index: int) -> None:
        """Called by the runner after each episode finishes."""
        self.episodes_completed += 1

    def reset_weights(self) -> None:
        """Re-initialise all trainable state (the paper's 300-episode reset rule)."""
        raise NotImplementedError

    # -- bookkeeping -----------------------------------------------------------
    def _record(self, operation: str, seconds: float, count: int = 1) -> None:
        self.breakdown.add(operation, seconds, count)


class _ELMFamilyAgent(QLearningAgent):
    """Shared machinery for the ELM and OS-ELM Q-Network agents."""

    model_class = ELM

    def __init__(self, config: AgentConfig, *, model: Optional[ELM] = None) -> None:
        super().__init__()
        self.config = config
        self._rng, _ = np_random(config.seed)
        if model is None:
            model = self.model_class(
                config.input_size, config.n_hidden, 1,
                activation=config.activation,
                regularization=config.regularization,
                rng=self._rng,
            )
        self.model = model
        self.q_online = QFunction(self.model, config.n_states, config.n_actions,
                                  one_hot_actions=config.one_hot_actions)
        # theta_2: only beta differs from theta_1 (alpha and the bias are shared),
        # so the target network is represented by a snapshot of beta.
        self._target_beta: Optional[np.ndarray] = None
        self.policy = EpsilonGreedyPolicy(config.greedy_probability, config.n_actions,
                                          rng=self._rng)
        self.buffer = InitialTrainingBuffer(config.n_hidden)
        self.initial_training_done = False
        self._episodes_since_progress = 0
        self.weight_resets = 0

    # ------------------------------------------------------------------ target network
    def _sync_target(self) -> None:
        """theta_2 <- theta_1 (Algorithm 1 lines 23–24)."""
        if self.model.beta is not None:
            self._target_beta = self.model.beta.copy()

    def _target_max_q(self, state: np.ndarray) -> float:
        """``max_a Q_theta2(state, a)`` using the target beta snapshot."""
        if self._target_beta is None:
            return 0.0
        rows = np.stack([self.q_online.encode(state, a)
                         for a in range(self.config.n_actions)])
        hidden = self.model.hidden(rows)
        return float(np.max(hidden @ self._target_beta))

    # ------------------------------------------------------------------ acting
    def act(self, state: np.ndarray, *, explore: bool = True) -> int:
        start = time.perf_counter()
        q_values = self.q_online.q_values(state)
        elapsed = time.perf_counter() - start
        label = "predict_seq" if self.initial_training_done else "predict_init"
        self._record(label, elapsed, count=self.config.n_actions)
        return self.policy.select(q_values, explore=explore)

    def act_batch(self, states: np.ndarray, *, explore: bool = True) -> np.ndarray:
        """Epsilon-greedy actions for a batch of states in one forward pass.

        All ``B * n_actions`` Q-values come out of a single matrix multiply
        (the batched :meth:`QFunction.q_values` path) instead of ``B``
        separate network evaluations.
        """
        states = np.asarray(states, dtype=float)
        if states.ndim == 1:
            states = states.reshape(1, -1)
        start = time.perf_counter()
        q_matrix = self.q_online.q_values(states)
        elapsed = time.perf_counter() - start
        label = "predict_seq" if self.initial_training_done else "predict_init"
        self._record(label, elapsed, count=states.shape[0] * self.config.n_actions)
        return self.policy.select_batch(q_matrix, explore=explore)

    # ------------------------------------------------------------------ training helpers
    def _compute_targets(self, rewards: np.ndarray, dones: np.ndarray,
                         next_states: np.ndarray) -> np.ndarray:
        """Clipped one-step targets for a batch, using the theta_2 bootstrap."""
        start = time.perf_counter()
        targets = np.empty(rewards.shape[0])
        for i in range(rewards.shape[0]):
            max_next = self._target_max_q(next_states[i])
            targets[i] = q_learning_target(
                rewards[i], bool(dones[i]), max_next,
                gamma=self.config.gamma, clip=self.config.clip_targets,
                clip_low=self.config.clip_low, clip_high=self.config.clip_high,
            )
        label = "predict_seq" if self.initial_training_done else "predict_init"
        self._record(label, time.perf_counter() - start,
                     count=rewards.shape[0] * self.config.n_actions)
        return targets

    def _initial_training(self) -> None:
        """Lines 17–19: one-shot training on the full buffer with clipped targets."""
        states, actions, rewards, next_states, dones = self.buffer.as_batches()
        targets = self._compute_targets(rewards, dones, next_states)
        start = time.perf_counter()
        self.q_online.fit_batch(states, actions, targets)
        self._record("init_train", time.perf_counter() - start)
        self.initial_training_done = True
        if self._target_beta is None:
            self._sync_target()

    # ------------------------------------------------------------------ reset rule
    def end_episode(self, episode_index: int) -> None:
        super().end_episode(episode_index)
        if self.episodes_completed % self.config.target_update_interval == 0:
            self._sync_target()

    def register_progress(self, solved: bool) -> None:
        """Inform the agent whether the run has completed the task (for the reset rule)."""
        if solved:
            self._episodes_since_progress = 0
            return
        self._episodes_since_progress += 1
        limit = self.config.reset_after_episodes
        if limit is not None and self._episodes_since_progress >= limit:
            self.reset_weights()
            self._episodes_since_progress = 0

    def reset_weights(self) -> None:
        self.model.reset(self._rng)
        self._target_beta = None
        self.buffer.clear()
        self.initial_training_done = False
        self.global_step = 0
        self.weight_resets += 1

    # ------------------------------------------------------------------ diagnostics
    def lipschitz_upper_bound(self) -> float:
        """Current bound on the Q-network's Lipschitz constant."""
        return self.model.lipschitz_upper_bound()

    def beta_norm(self) -> float:
        return self.model.beta_frobenius_norm()


class ELMQAgent(_ELMFamilyAgent):
    """ELM Q-Network (design 1): batch training only.

    The model is (re)trained from scratch each time the buffer fills with
    ``N-tilde`` fresh transitions; there is no sequential update and no
    random-update gate.  After each batch fit the target network is
    synchronised so subsequent targets use the newly fitted weights (the
    episode-interval sync of lines 23–24 is specific to OS-ELM).
    """

    model_class = ELM
    name = "ELM"

    def observe(self, state: np.ndarray, action: int, reward: float,
                next_state: np.ndarray, done: bool) -> None:
        self.global_step += 1
        self.buffer.store(state, action, reward, next_state, done)
        if self.global_step >= self.config.n_hidden and self.buffer.full:
            self._initial_training()
            self._sync_target()
            self.buffer.clear()


class OSELMQAgent(_ELMFamilyAgent):
    """OS-ELM Q-Network (designs 2–5 and the FPGA design's algorithmic core).

    The first full buffer triggers the initial training (Equation 7/8); every
    later step performs, with probability ``epsilon_2``, a batch-size-1
    sequential update (Equations 5–6) on the current transition with a
    clipped target bootstrapped from theta_2.
    """

    model_class = OSELM
    name = "OS-ELM"

    def __init__(self, config: AgentConfig, *, model: Optional[OSELM] = None) -> None:
        super().__init__(config, model=model)
        self.update_gate = RandomUpdateGate(config.update_probability, rng=self._rng)
        #: Sequential updates skipped because the P update lost positive definiteness.
        #: Plain OS-ELM (no L2 regularization) is prone to this — it is the numerical
        #: face of the instability the paper reports for the unregularized design.
        self.skipped_updates = 0

    def observe(self, state: np.ndarray, action: int, reward: float,
                next_state: np.ndarray, done: bool) -> None:
        self.global_step += 1
        if not self.initial_training_done:
            self.buffer.store(state, action, reward, next_state, done)
            if self.global_step >= self.config.n_hidden and self.buffer.full:
                self._initial_training()
            return
        if not self.update_gate.should_update():
            return
        # Sequential update on the current transition (lines 20–22).
        max_next = self._predict_target_bootstrap(next_state)
        target = q_learning_target(
            reward, done, max_next,
            gamma=self.config.gamma, clip=self.config.clip_targets,
            clip_low=self.config.clip_low, clip_high=self.config.clip_high,
        )
        start = time.perf_counter()
        try:
            self.q_online.update(state, action, target)
        except np.linalg.LinAlgError:
            # The inverse-Gram state P became indefinite (possible without the
            # L2 term when the initial Gram matrix is near-singular).  The real
            # device would keep running with a corrupted P; we skip the update
            # and count the event so experiments can report the instability.
            self.skipped_updates += 1
        self._record("seq_train", time.perf_counter() - start)

    def _predict_target_bootstrap(self, next_state: np.ndarray) -> float:
        start = time.perf_counter()
        max_next = self._target_max_q(next_state)
        self._record("predict_seq", time.perf_counter() - start,
                     count=self.config.n_actions)
        return max_next

    def reset_weights(self) -> None:
        super().reset_weights()
        # A fresh OS-ELM also discards its recursive (P, beta) state, which
        # ``ELM.reset`` already cleared via ``OSELM.reset``; nothing extra to do,
        # but keep the update-gate statistics meaningful across resets.
        self.update_gate.reset_counters()


__all__ = ["AgentConfig", "QLearningAgent", "ELMQAgent", "OSELMQAgent", "Transition"]
