"""Regularization / normalization configuration (Section 3.3).

The paper stabilises the OS-ELM Q-Network with two complementary constraints:

* **Spectral normalization of alpha** — the random input weights are divided
  by their largest singular value once, offline (Algorithm 1 lines 2–3).
  Because alpha never changes afterwards, this costs nothing at runtime and
  bounds the contribution of the input layer to the network's Lipschitz
  constant by 1.
* **L2 regularization of beta** — the ReOS-ELM initial training adds
  ``delta * I`` to the Gram matrix (Equation 8).  Relation 13
  (``sigma_max(A)^2 <= ||A||_F^2``) shows the L2 penalty dominates the
  spectral penalty, so shrinking the Frobenius norm of beta also shrinks its
  spectral norm — without the per-update SVD that a true spectral
  regularization of beta would require (Equation 12).

Together the network's Lipschitz constant is bounded by ``sigma_max(beta)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.linalg.spectral import spectral_norm
from repro.nn.activations import get_activation


@dataclass(frozen=True)
class RegularizationConfig:
    """Which of the paper's stabilisation techniques are enabled.

    Attributes
    ----------
    l2_delta:
        Ridge parameter ``delta`` of the ReOS-ELM initial training
        (Equation 8).  ``0`` disables the L2 regularization.  The paper uses
        1.0 for OS-ELM-L2 and 0.5 for OS-ELM-L2-Lipschitz.
    spectral_normalize_alpha:
        Whether to divide alpha by its largest singular value at
        initialisation (the "Lipschitz" suffix of the design names).
    spectral_norm_target:
        The spectral norm alpha is normalized to (1.0 in the paper).
    """

    l2_delta: float = 0.0
    spectral_normalize_alpha: bool = False
    spectral_norm_target: float = 1.0

    def __post_init__(self) -> None:
        if self.l2_delta < 0:
            raise ValueError(f"l2_delta must be non-negative, got {self.l2_delta}")
        if self.spectral_norm_target <= 0:
            raise ValueError(
                f"spectral_norm_target must be positive, got {self.spectral_norm_target}"
            )

    @property
    def uses_l2(self) -> bool:
        return self.l2_delta > 0

    @property
    def uses_spectral_normalization(self) -> bool:
        return self.spectral_normalize_alpha

    @property
    def label(self) -> str:
        """Short suffix used in design names: '', '-L2', '-Lipschitz' or '-L2-Lipschitz'."""
        parts = []
        if self.uses_l2:
            parts.append("L2")
        if self.uses_spectral_normalization:
            parts.append("Lipschitz")
        return ("-" + "-".join(parts)) if parts else ""

    @classmethod
    def none(cls) -> "RegularizationConfig":
        return cls()

    @classmethod
    def l2(cls, delta: float = 1.0) -> "RegularizationConfig":
        return cls(l2_delta=delta)

    @classmethod
    def lipschitz(cls) -> "RegularizationConfig":
        return cls(spectral_normalize_alpha=True)

    @classmethod
    def l2_lipschitz(cls, delta: float = 0.5) -> "RegularizationConfig":
        return cls(l2_delta=delta, spectral_normalize_alpha=True)


def lipschitz_bound(alpha: np.ndarray, beta: np.ndarray,
                    activation: str = "relu",
                    bias: Optional[np.ndarray] = None) -> float:
    """Upper bound on the Lipschitz constant of a single-hidden-layer network.

    The bound is ``sigma_max(alpha) * L_G * sigma_max(beta)`` where ``L_G`` is
    the activation's Lipschitz constant (1 for ReLU/tanh).  After spectral
    normalization of alpha the bound reduces to ``sigma_max(beta)``, which is
    the quantity the paper's Section 3.3 controls via L2 regularization.
    The bias does not affect the Lipschitz constant; it is accepted for
    interface symmetry only.
    """
    activation_constant = get_activation(activation).lipschitz_constant
    return float(
        spectral_norm(np.asarray(alpha, dtype=float))
        * activation_constant
        * spectral_norm(np.asarray(beta, dtype=float))
    )
