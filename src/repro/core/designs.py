"""Factory for the seven designs compared in Section 4.1.

The paper evaluates:

1. **ELM** — ELM Q-Network with the simplified output model and Q-value clipping.
2. **OS-ELM** — OS-ELM Q-Network adding the random update.
3. **OS-ELM-L2** — plus L2 regularization of beta (delta = 1).
4. **OS-ELM-Lipschitz** — plus spectral normalization of alpha.
5. **OS-ELM-L2-Lipschitz** — both (delta = 0.5).
6. **DQN** — the three-layer DQN baseline (Adam lr=0.01, Huber loss,
   experience replay, fixed target network).
7. **FPGA** — the same algorithm as OS-ELM-L2-Lipschitz with prediction and
   sequential training executed by the fixed-point (32-bit Q20) FPGA core
   model, timed with the programmable-logic latency model.

:func:`make_design` returns a ready-to-train agent for any design name; the
imports of the DQN baseline and the FPGA accelerator are deferred so this
module stays import-cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.agents import AgentConfig, ELMQAgent, OSELMQAgent, QLearningAgent
from repro.core.regularization import RegularizationConfig

#: Canonical design names, in the order the paper lists them.
DESIGN_NAMES: Tuple[str, ...] = (
    "ELM",
    "OS-ELM",
    "OS-ELM-L2",
    "OS-ELM-Lipschitz",
    "OS-ELM-L2-Lipschitz",
    "DQN",
    "FPGA",
)

#: The subset of designs that run as software on the CPU (Figure 4's curves).
SOFTWARE_DESIGNS: Tuple[str, ...] = DESIGN_NAMES[:6]

#: L2 regularization strengths from Section 4.1.
L2_DELTA_OS_ELM_L2 = 1.0
L2_DELTA_OS_ELM_L2_LIPSCHITZ = 0.5


@dataclass(frozen=True)
class DesignSpec:
    """Static description of one of the seven designs."""

    name: str
    family: str                       #: "elm", "os-elm", "dqn" or "fpga"
    regularization: RegularizationConfig
    uses_random_update: bool
    runs_on_fpga: bool

    @property
    def is_proposed(self) -> bool:
        """Whether the design is one of the paper's proposals (everything but DQN)."""
        return self.family != "dqn"


def design_spec(name: str) -> DesignSpec:
    """Return the :class:`DesignSpec` for a canonical design name."""
    if name == "ELM":
        return DesignSpec(name, "elm", RegularizationConfig.none(), False, False)
    if name == "OS-ELM":
        return DesignSpec(name, "os-elm", RegularizationConfig.none(), True, False)
    if name == "OS-ELM-L2":
        return DesignSpec(name, "os-elm", RegularizationConfig.l2(L2_DELTA_OS_ELM_L2),
                          True, False)
    if name == "OS-ELM-Lipschitz":
        return DesignSpec(name, "os-elm", RegularizationConfig.lipschitz(), True, False)
    if name == "OS-ELM-L2-Lipschitz":
        return DesignSpec(name, "os-elm",
                          RegularizationConfig.l2_lipschitz(L2_DELTA_OS_ELM_L2_LIPSCHITZ),
                          True, False)
    if name == "DQN":
        return DesignSpec(name, "dqn", RegularizationConfig.none(), False, False)
    if name == "FPGA":
        return DesignSpec(name, "fpga",
                          RegularizationConfig.l2_lipschitz(L2_DELTA_OS_ELM_L2_LIPSCHITZ),
                          True, True)
    raise ValueError(f"unknown design {name!r}; choose from {DESIGN_NAMES}")


def make_design(name: str, *, n_states: int = 4, n_actions: int = 2,
                n_hidden: int = 64, gamma: float = 0.99,
                seed: Optional[int] = None, **config_overrides) -> QLearningAgent:
    """Construct a ready-to-train agent for one of the seven designs.

    Parameters
    ----------
    name:
        One of :data:`DESIGN_NAMES`.
    n_states, n_actions:
        Environment dimensions (4 and 2 for CartPole).
    n_hidden:
        Hidden-layer size ``N-tilde`` (the paper sweeps 32–192; DQN uses the
        same width for both hidden layers).
    gamma:
        Discount factor.
    seed:
        Seed for all of the agent's randomness.
    config_overrides:
        Additional :class:`~repro.core.agents.AgentConfig` fields
        (``greedy_probability``, ``update_probability``, ...); for the DQN
        design they are forwarded to
        :class:`~repro.baselines.dqn.DQNConfig` when the field exists there.
    """
    spec = design_spec(name)
    if spec.family == "dqn":
        from repro.baselines.dqn import DQNAgent, DQNConfig

        dqn_fields = set(DQNConfig.__dataclass_fields__)
        overrides = {k: v for k, v in config_overrides.items() if k in dqn_fields}
        config = DQNConfig(n_states=n_states, n_actions=n_actions, n_hidden=n_hidden,
                           gamma=gamma, seed=seed, **overrides)
        return DQNAgent(config)

    agent_fields = set(AgentConfig.__dataclass_fields__)
    overrides = {k: v for k, v in config_overrides.items() if k in agent_fields}
    config = AgentConfig(n_states=n_states, n_actions=n_actions, n_hidden=n_hidden,
                         gamma=gamma, regularization=spec.regularization, seed=seed,
                         **overrides)
    if spec.family == "elm":
        return ELMQAgent(config)
    if spec.family == "os-elm":
        agent = OSELMQAgent(config)
        agent.name = name
        return agent
    # FPGA: the OS-ELM-L2-Lipschitz algorithm running on the fixed-point core.
    from repro.fpga.accelerator import FPGAAcceleratedOSELM

    fpga_kwargs = {k: v for k, v in config_overrides.items()
                   if k in {"qformat", "clock_mhz", "device"}}
    model = FPGAAcceleratedOSELM(
        config.input_size, n_hidden, 1,
        activation=config.activation,
        regularization=spec.regularization,
        seed=seed,
        **fpga_kwargs,
    )
    agent = OSELMQAgent(config, model=model)
    agent.name = "FPGA"
    return agent


__all__ = ["DESIGN_NAMES", "SOFTWARE_DESIGNS", "DesignSpec", "design_spec", "make_design"]
