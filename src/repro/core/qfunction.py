"""The simplified output model: ``Q(state, action)`` as a scalar regression.

DQN maps the state to one Q-value per action (Figure 2, left).  Because ELM /
OS-ELM are single-hidden-layer networks aimed at tiny FPGAs, the paper instead
feeds the action *into* the network and reads a single scalar out (Figure 2,
right): the input vector is the concatenation of the state and the action
index, so its size is ``n_states + 1`` (five for CartPole — four state
variables plus one action value), and the output size is 1.

:class:`QFunction` wraps an :class:`~repro.core.elm.ELM` or
:class:`~repro.core.os_elm.OSELM` regressor (or any object exposing the same
``predict`` interface, e.g. the fixed-point FPGA core) and provides the
action-space sweeps (``q_values``, ``greedy_action``, ``max_q``) needed by
Q-learning.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.elm import ELM
from repro.utils.exceptions import NotFittedError


def encode_state_action(state: np.ndarray, action: int,
                        n_actions: Optional[int] = None, *,
                        one_hot: bool = False) -> np.ndarray:
    """Concatenate a state vector and an action into one network input row.

    By default the action is appended as a single scalar (the paper's
    five-input CartPole encoding).  ``one_hot=True`` appends a one-hot action
    block instead (requires ``n_actions``), which is useful for environments
    with more than two actions where the scalar encoding imposes an
    artificial ordering.
    """
    state = np.asarray(state, dtype=float).reshape(-1)
    if one_hot:
        if n_actions is None:
            raise ValueError("one_hot encoding requires n_actions")
        action_block = np.zeros(int(n_actions))
        action_block[int(action)] = 1.0
    else:
        action_block = np.array([float(action)])
    return np.concatenate([state, action_block])


def state_action_input_size(n_states: int, n_actions: int, *, one_hot: bool = False) -> int:
    """Input dimensionality of the simplified output model."""
    if n_states <= 0 or n_actions <= 0:
        raise ValueError("n_states and n_actions must be positive")
    return int(n_states) + (int(n_actions) if one_hot else 1)


class QFunction:
    """A scalar Q-function backed by an ELM-family regressor.

    Parameters
    ----------
    model:
        A fitted (or fittable) regressor exposing ``predict`` over inputs of
        size ``state_action_input_size(n_states, n_actions, one_hot)``.
    n_states, n_actions:
        Environment dimensions.
    one_hot_actions:
        Whether actions are one-hot encoded in the network input.
    default_value:
        Q-value returned before the model has been trained (Algorithm 1 needs
        greedy actions even before the initial training completes; the paper
        simply acts on the untrained network, which we represent with a
        constant until beta exists).
    """

    def __init__(self, model: ELM, n_states: int, n_actions: int, *,
                 one_hot_actions: bool = False, default_value: float = 0.0) -> None:
        if n_states <= 0 or n_actions <= 0:
            raise ValueError("n_states and n_actions must be positive")
        expected = state_action_input_size(n_states, n_actions, one_hot=one_hot_actions)
        if getattr(model, "n_inputs", expected) != expected:
            raise ValueError(
                f"model expects {model.n_inputs} inputs but the simplified output model "
                f"requires {expected} (n_states={n_states}, n_actions={n_actions}, "
                f"one_hot={one_hot_actions})"
            )
        if getattr(model, "n_outputs", 1) != 1:
            raise ValueError("the simplified output model has a scalar output; n_outputs must be 1")
        self.model = model
        self.n_states = int(n_states)
        self.n_actions = int(n_actions)
        self.one_hot_actions = bool(one_hot_actions)
        self.default_value = float(default_value)

    # ------------------------------------------------------------------ encoding
    @property
    def input_size(self) -> int:
        return state_action_input_size(self.n_states, self.n_actions,
                                       one_hot=self.one_hot_actions)

    def encode(self, state: np.ndarray, action: int) -> np.ndarray:
        """Encode one (state, action) pair as a network input row."""
        return encode_state_action(state, action, self.n_actions,
                                   one_hot=self.one_hot_actions)

    def encode_batch(self, states: np.ndarray, actions: Sequence[int]) -> np.ndarray:
        """Encode matching arrays of states and actions into an input matrix."""
        states = np.asarray(states, dtype=float)
        if states.ndim == 1:
            states = states.reshape(1, -1)
        actions = np.asarray(actions)
        if states.shape[0] != actions.shape[0]:
            raise ValueError("states and actions must have the same length")
        return np.stack([self.encode(states[i], int(actions[i]))
                         for i in range(states.shape[0])])

    # ------------------------------------------------------------------ evaluation
    @property
    def is_trained(self) -> bool:
        is_fitted = getattr(self.model, "is_fitted", None)
        return bool(is_fitted) if is_fitted is not None else True

    def value(self, state: np.ndarray, action: int) -> float:
        """Q(state, action) as a scalar."""
        if not self.is_trained:
            return self.default_value
        return float(self.model.predict(self.encode(state, action).reshape(1, -1))[0, 0])

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q(state, a) for every action ``a`` — one network evaluation per action."""
        if not self.is_trained:
            return np.full(self.n_actions, self.default_value)
        rows = np.stack([self.encode(state, action) for action in range(self.n_actions)])
        return self.model.predict(rows).reshape(-1)

    def greedy_action(self, state: np.ndarray) -> int:
        """``argmax_a Q(state, a)`` (Algorithm 1, line 11)."""
        return int(np.argmax(self.q_values(state)))

    def max_q(self, state: np.ndarray) -> float:
        """``max_a Q(state, a)`` — the bootstrap term of the Q-learning target."""
        return float(np.max(self.q_values(state)))

    # ------------------------------------------------------------------ training passthroughs
    def fit_batch(self, states: np.ndarray, actions: Sequence[int],
                  targets: np.ndarray) -> None:
        """Batch (initial) training of the underlying model on encoded inputs."""
        inputs = self.encode_batch(states, actions)
        targets = np.asarray(targets, dtype=float).reshape(-1, 1)
        self.model.fit(inputs, targets)

    def update(self, state: np.ndarray, action: int, target: float) -> None:
        """Sequential (batch-size-1) training step, if the model supports it."""
        seq_step = getattr(self.model, "seq_train_step", None)
        if seq_step is None:
            raise NotFittedError(
                f"{type(self.model).__name__} does not support sequential updates"
            )
        seq_step(self.encode(state, action), target)

    def __repr__(self) -> str:
        return (f"QFunction(n_states={self.n_states}, n_actions={self.n_actions}, "
                f"one_hot={self.one_hot_actions}, model={self.model!r})")
