"""The simplified output model: ``Q(state, action)`` as a scalar regression.

DQN maps the state to one Q-value per action (Figure 2, left).  Because ELM /
OS-ELM are single-hidden-layer networks aimed at tiny FPGAs, the paper instead
feeds the action *into* the network and reads a single scalar out (Figure 2,
right): the input vector is the concatenation of the state and the action
index, so its size is ``n_states + 1`` (five for CartPole — four state
variables plus one action value), and the output size is 1.

:class:`QFunction` wraps an :class:`~repro.core.elm.ELM` or
:class:`~repro.core.os_elm.OSELM` regressor (or any object exposing the same
``predict`` interface, e.g. the fixed-point FPGA core) and provides the
action-space sweeps (``q_values``, ``greedy_action``, ``max_q``) needed by
Q-learning.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.elm import ELM
from repro.utils.exceptions import NotFittedError


def encode_state_action(state: np.ndarray, action: int,
                        n_actions: Optional[int] = None, *,
                        one_hot: bool = False) -> np.ndarray:
    """Concatenate a state vector and an action into one network input row.

    By default the action is appended as a single scalar (the paper's
    five-input CartPole encoding).  ``one_hot=True`` appends a one-hot action
    block instead (requires ``n_actions``), which is useful for environments
    with more than two actions where the scalar encoding imposes an
    artificial ordering.
    """
    state = np.asarray(state, dtype=float).reshape(-1)
    if one_hot:
        if n_actions is None:
            raise ValueError("one_hot encoding requires n_actions")
        action_block = np.zeros(int(n_actions))
        action_block[int(action)] = 1.0
    else:
        action_block = np.array([float(action)])
    return np.concatenate([state, action_block])


def state_action_input_size(n_states: int, n_actions: int, *, one_hot: bool = False) -> int:
    """Input dimensionality of the simplified output model."""
    if n_states <= 0 or n_actions <= 0:
        raise ValueError("n_states and n_actions must be positive")
    return int(n_states) + (int(n_actions) if one_hot else 1)


class QFunction:
    """A scalar Q-function backed by an ELM-family regressor.

    Parameters
    ----------
    model:
        A fitted (or fittable) regressor exposing ``predict`` over inputs of
        size ``state_action_input_size(n_states, n_actions, one_hot)``.
    n_states, n_actions:
        Environment dimensions.
    one_hot_actions:
        Whether actions are one-hot encoded in the network input.
    default_value:
        Q-value returned before the model has been trained (Algorithm 1 needs
        greedy actions even before the initial training completes; the paper
        simply acts on the untrained network, which we represent with a
        constant until beta exists).
    """

    def __init__(self, model: ELM, n_states: int, n_actions: int, *,
                 one_hot_actions: bool = False, default_value: float = 0.0) -> None:
        if n_states <= 0 or n_actions <= 0:
            raise ValueError("n_states and n_actions must be positive")
        expected = state_action_input_size(n_states, n_actions, one_hot=one_hot_actions)
        if getattr(model, "n_inputs", expected) != expected:
            raise ValueError(
                f"model expects {model.n_inputs} inputs but the simplified output model "
                f"requires {expected} (n_states={n_states}, n_actions={n_actions}, "
                f"one_hot={one_hot_actions})"
            )
        if getattr(model, "n_outputs", 1) != 1:
            raise ValueError("the simplified output model has a scalar output; n_outputs must be 1")
        self.model = model
        self.n_states = int(n_states)
        self.n_actions = int(n_actions)
        self.one_hot_actions = bool(one_hot_actions)
        self.default_value = float(default_value)

    # ------------------------------------------------------------------ encoding
    @property
    def input_size(self) -> int:
        return state_action_input_size(self.n_states, self.n_actions,
                                       one_hot=self.one_hot_actions)

    def encode(self, state: np.ndarray, action: int) -> np.ndarray:
        """Encode one (state, action) pair as a network input row."""
        return encode_state_action(state, action, self.n_actions,
                                   one_hot=self.one_hot_actions)

    def encode_batch(self, states: np.ndarray, actions: Sequence[int]) -> np.ndarray:
        """Encode matching arrays of states and actions into an input matrix."""
        states = np.asarray(states, dtype=float)
        if states.ndim == 1:
            states = states.reshape(1, -1)
        actions = np.asarray(actions).reshape(-1)
        if states.shape[0] != actions.shape[0]:
            raise ValueError("states and actions must have the same length")
        batch = states.shape[0]
        inputs = np.empty((batch, self.input_size))
        inputs[:, :self.n_states] = states
        if self.one_hot_actions:
            actions = actions.astype(int)
            if ((actions < 0) | (actions >= self.n_actions)).any():
                raise ValueError(
                    f"one-hot encoding requires actions in [0, {self.n_actions}), "
                    f"got {actions!r}"
                )
            inputs[:, self.n_states:] = 0.0
            inputs[np.arange(batch), self.n_states + actions] = 1.0
        else:
            inputs[:, self.n_states] = actions.astype(float)
        return inputs

    def encode_all_actions(self, states: np.ndarray) -> np.ndarray:
        """Encode every (state, action) pair for a batch of states.

        Returns a ``(B, n_actions, input_size)`` tensor: one network input row
        per state per action, the layout used by the batched action sweeps.
        """
        states = np.asarray(states, dtype=float)
        if states.ndim == 1:
            states = states.reshape(1, -1)
        batch = states.shape[0]
        inputs = np.empty((batch, self.n_actions, self.input_size))
        inputs[:, :, :self.n_states] = states[:, None, :]
        if self.one_hot_actions:
            inputs[:, :, self.n_states:] = np.eye(self.n_actions)
        else:
            inputs[:, :, self.n_states] = np.arange(self.n_actions, dtype=float)
        return inputs

    # ------------------------------------------------------------------ evaluation
    @property
    def is_trained(self) -> bool:
        is_fitted = getattr(self.model, "is_fitted", None)
        return bool(is_fitted) if is_fitted is not None else True

    def value(self, state: np.ndarray, action: int) -> float:
        """Q(state, action) as a scalar."""
        return float(self.predict(np.asarray(state, dtype=float).reshape(-1), action))

    def predict(self, states: np.ndarray, actions) -> Union[float, np.ndarray]:
        """Q(state, action) for one pair or a batch of pairs.

        A 1-D ``states`` vector with a scalar action returns a float; a 2-D
        ``(B, n_states)`` batch with ``B`` actions returns a ``(B,)`` array.
        The two forms round-trip: ``predict(s, a) == predict(s[None], [a])[0]``.
        """
        states = np.asarray(states, dtype=float)
        single = states.ndim == 1
        actions = np.atleast_1d(actions)
        batch = 1 if single else states.shape[0]
        if actions.shape[0] != batch:
            raise ValueError("states and actions must have the same length")
        if not self.is_trained:
            out = np.full(batch, self.default_value)
            return float(out[0]) if single else out
        inputs = self.encode_batch(states, actions)
        out = np.asarray(self.model.predict(inputs)).reshape(-1)
        return float(out[0]) if single else out

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q(state, a) for every action ``a``.

        Accepts one state ``(n_states,)`` -> ``(n_actions,)`` or a batch
        ``(B, n_states)`` -> ``(B, n_actions)``; the batched form evaluates
        all ``B * n_actions`` pairs in a single network forward pass.
        """
        state = np.asarray(state, dtype=float)
        single = state.ndim == 1
        batch = 1 if single else state.shape[0]
        if not self.is_trained:
            out = np.full((batch, self.n_actions), self.default_value)
            return out[0] if single else out
        rows = self.encode_all_actions(state).reshape(batch * self.n_actions, -1)
        out = np.asarray(self.model.predict(rows)).reshape(batch, self.n_actions)
        return out[0] if single else out

    def greedy_action(self, state: np.ndarray):
        """``argmax_a Q(state, a)`` (Algorithm 1, line 11).

        Returns an int for one state, an ``(B,)`` int array for a batch.
        """
        q = self.q_values(state)
        return int(np.argmax(q)) if q.ndim == 1 else np.argmax(q, axis=1)

    def max_q(self, state: np.ndarray):
        """``max_a Q(state, a)`` — the bootstrap term of the Q-learning target.

        Returns a float for one state, an ``(B,)`` array for a batch.
        """
        q = self.q_values(state)
        return float(np.max(q)) if q.ndim == 1 else np.max(q, axis=1)

    # ------------------------------------------------------------------ training passthroughs
    def fit_batch(self, states: np.ndarray, actions: Sequence[int],
                  targets: np.ndarray) -> None:
        """Batch (initial) training of the underlying model on encoded inputs."""
        inputs = self.encode_batch(states, actions)
        targets = np.asarray(targets, dtype=float).reshape(-1, 1)
        self.model.fit(inputs, targets)

    def update(self, state: np.ndarray, action: int, target: float) -> None:
        """Sequential (batch-size-1) training step, if the model supports it."""
        seq_step = getattr(self.model, "seq_train_step", None)
        if seq_step is None:
            raise NotFittedError(
                f"{type(self.model).__name__} does not support sequential updates"
            )
        seq_step(self.encode(state, action), target)

    def __repr__(self) -> str:
        return (f"QFunction(n_states={self.n_states}, n_actions={self.n_actions}, "
                f"one_hot={self.one_hot_actions}, model={self.model!r})")
