"""ELM: the batch-trained single-hidden-layer network (Section 2.1).

The network computes ``y = G(x @ alpha + b) @ beta`` (Equation 1).  The input
weights ``alpha`` and bias ``b`` are drawn once from U[0, 1] and never
updated; training solves for the output weights in one shot,
``beta = pinv(H) @ T`` (Equation 3) — optionally with the ReOS-ELM ridge term
(Equation 8) and optionally after spectrally normalizing ``alpha``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.regularization import RegularizationConfig, lipschitz_bound
from repro.linalg.pseudo_inverse import pinv, regularized_gram_inverse, ridge_solve
from repro.linalg.spectral import spectral_normalize
from repro.nn.activations import Activation, get_activation
from repro.utils.exceptions import NotFittedError
from repro.utils.seeding import np_random
from repro.utils.validation import ensure_2d


class ELM:
    """Extreme Learning Machine regressor.

    Parameters
    ----------
    n_inputs, n_hidden, n_outputs:
        Layer sizes (``n``, ``N-tilde`` and ``m`` in the paper's notation).
    activation:
        Hidden-layer activation ``G`` (the paper uses ReLU).
    regularization:
        Which stabilisation techniques to apply (L2 delta for the ridge
        solve, spectral normalization of alpha).
    rng / seed:
        Source of randomness for the input weights.
    """

    def __init__(self, n_inputs: int, n_hidden: int, n_outputs: int = 1, *,
                 activation: str = "relu",
                 regularization: RegularizationConfig = RegularizationConfig(),
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None) -> None:
        if n_inputs <= 0 or n_hidden <= 0 or n_outputs <= 0:
            raise ValueError("n_inputs, n_hidden and n_outputs must all be positive")
        self.n_inputs = int(n_inputs)
        self.n_hidden = int(n_hidden)
        self.n_outputs = int(n_outputs)
        self.activation: Activation = get_activation(activation)
        self.regularization = regularization
        if rng is None:
            rng, _ = np_random(seed)
        self._rng = rng
        self.alpha: np.ndarray = np.empty((self.n_inputs, self.n_hidden))
        self.bias: np.ndarray = np.empty(self.n_hidden)
        self.beta: Optional[np.ndarray] = None
        self.alpha_spectral_norm: float = 0.0
        self._initialize_input_weights()

    # ------------------------------------------------------------------ initialisation
    def _initialize_input_weights(self) -> None:
        """Draw alpha, b ~ U[0, 1] (Algorithm 1 line 1) and optionally normalize alpha."""
        self.alpha = self._rng.uniform(0.0, 1.0, size=(self.n_inputs, self.n_hidden))
        self.bias = self._rng.uniform(0.0, 1.0, size=self.n_hidden)
        if self.regularization.spectral_normalize_alpha:
            self.alpha, self.alpha_spectral_norm = spectral_normalize(
                self.alpha, target=self.regularization.spectral_norm_target
            )
        else:
            self.alpha_spectral_norm = float(np.linalg.norm(self.alpha, 2))
        self.beta = None

    def reset(self, rng: Optional[np.random.Generator] = None) -> None:
        """Re-draw the random input weights and discard beta.

        Implements the paper's reset rule for "unpromising weight parameters"
        (Section 4.3): agents call this when a run stalls for 300 episodes.
        """
        if rng is not None:
            self._rng = rng
        self._initialize_input_weights()

    # ------------------------------------------------------------------ inference
    @property
    def is_fitted(self) -> bool:
        return self.beta is not None

    def hidden(self, x: np.ndarray) -> np.ndarray:
        """Hidden-layer matrix ``H = G(x @ alpha + b)`` for a batch of inputs."""
        x = ensure_2d(x, name="x", n_features=self.n_inputs)
        return self.activation.forward(x @ self.alpha + self.bias)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Network output ``H @ beta`` (Equation 1); requires prior training.

        Accepts a single sample ``(n_inputs,)`` or a batch ``(B, n_inputs)``
        and mirrors the input's dimensionality: 1-D in, ``(n_outputs,)`` out;
        2-D in, ``(B, n_outputs)`` out.
        """
        if self.beta is None:
            raise NotFittedError("ELM.predict called before fit()")
        single = np.asarray(x).ndim == 1
        out = self.hidden(x) @ self.beta
        return out[0] if single else out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.predict(x)

    # ------------------------------------------------------------------ training
    def fit(self, x: np.ndarray, t: np.ndarray) -> "ELM":
        """One-shot batch training: ``beta = (H^T H + delta I)^{-1} H^T T``.

        With ``delta = 0`` this reduces to the pseudo-inverse solution of
        Equation 3 (computed through the normal equations when H has at least
        as many rows as hidden units, and through the SVD pseudo-inverse
        fallback otherwise).
        """
        x = ensure_2d(x, name="x", n_features=self.n_inputs)
        t = ensure_2d(t, name="t", n_features=self.n_outputs)
        if x.shape[0] != t.shape[0]:
            raise ValueError(
                f"x and t must have the same number of rows, got {x.shape[0]} and {t.shape[0]}"
            )
        h = self.hidden(x)
        if self.regularization.l2_delta > 0:
            p = regularized_gram_inverse(h, self.regularization.l2_delta)
            self.beta = ridge_solve(h, t, self.regularization.l2_delta, p=p)
        else:
            # Equation 3: beta = H^dagger T.  Using the pseudo-inverse of H
            # directly (rather than the normal equations) keeps the solve
            # well-conditioned when the chunk has fewer rows than hidden units.
            self.beta = pinv(h) @ t
        return self

    # ------------------------------------------------------------------ diagnostics
    def lipschitz_upper_bound(self) -> float:
        """Bound on the network's Lipschitz constant (Section 3.3)."""
        beta = self.beta if self.beta is not None else np.zeros((self.n_hidden, self.n_outputs))
        return lipschitz_bound(self.alpha, beta, self.activation.name)

    def beta_frobenius_norm(self) -> float:
        """Frobenius norm of beta — the quantity the L2 regularization shrinks."""
        if self.beta is None:
            return 0.0
        return float(np.linalg.norm(self.beta))

    @property
    def n_parameters(self) -> int:
        """Total stored parameters: alpha, bias and beta."""
        return (self.n_inputs * self.n_hidden + self.n_hidden
                + self.n_hidden * self.n_outputs)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(n_inputs={self.n_inputs}, n_hidden={self.n_hidden}, "
                f"n_outputs={self.n_outputs}, activation={self.activation.name}, "
                f"regularization={self.regularization.label or 'none'})")
