"""Action-selection and update-gating policies (Algorithm 1, Determine/Update).

The paper's exploration parameter ``epsilon_1 = 0.7`` is the probability of
taking the *greedy* action (lines 10–13: "if random value r1 < eps1 then
argmax"), i.e. the complement of the usual epsilon-greedy convention.  The
``epsilon_2 = 0.5`` parameter gates the *random update* of Section 3.2: each
step is used for sequential training only with probability eps2, which breaks
the temporal correlation of consecutive samples without an experience-replay
buffer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.seeding import np_random
from repro.utils.validation import check_probability


class EpsilonGreedyPolicy:
    """Greedy-with-probability-epsilon action selection (the paper's convention).

    Parameters
    ----------
    greedy_probability:
        Probability of choosing ``argmax_a Q(s, a)``; otherwise a uniformly
        random action is taken.  The paper sets this to 0.7.
    n_actions:
        Size of the discrete action set.
    """

    def __init__(self, greedy_probability: float, n_actions: int, *,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None) -> None:
        self.greedy_probability = check_probability(greedy_probability,
                                                    name="greedy_probability")
        if n_actions <= 0:
            raise ValueError(f"n_actions must be positive, got {n_actions}")
        self.n_actions = int(n_actions)
        self._rng = rng if rng is not None else np_random(seed)[0]
        self.greedy_selections = 0
        self.random_selections = 0

    def select(self, q_values: np.ndarray, *, explore: bool = True) -> int:
        """Choose an action given per-action Q-values.

        With ``explore=False`` the greedy action is always returned (used for
        evaluation rollouts).
        """
        q_values = np.asarray(q_values, dtype=float).reshape(-1)
        if q_values.shape[0] != self.n_actions:
            raise ValueError(
                f"expected {self.n_actions} Q-values, got {q_values.shape[0]}"
            )
        if explore and self._rng.random() >= self.greedy_probability:
            self.random_selections += 1
            return int(self._rng.integers(self.n_actions))
        self.greedy_selections += 1
        return int(np.argmax(q_values))

    def select_batch(self, q_values: np.ndarray, *, explore: bool = True) -> np.ndarray:
        """Choose one action per row of a ``(B, n_actions)`` Q-value matrix.

        The whole batch is decided with two vectorized RNG draws (one uniform
        vector for the greedy/random gate, one integer vector for the random
        actions), so the per-row decisions are independent but the stream
        consumption differs from ``B`` sequential :meth:`select` calls — the
        batched path is its own deterministic stream for a given seed.
        """
        q_values = np.asarray(q_values, dtype=float)
        if q_values.ndim != 2 or q_values.shape[1] != self.n_actions:
            raise ValueError(
                f"expected a (batch, {self.n_actions}) Q-value matrix, got shape {q_values.shape}"
            )
        greedy = np.argmax(q_values, axis=1)
        if not explore:
            self.greedy_selections += q_values.shape[0]
            return greedy
        batch = q_values.shape[0]
        take_random = self._rng.random(batch) >= self.greedy_probability
        random_actions = self._rng.integers(self.n_actions, size=batch)
        self.random_selections += int(take_random.sum())
        self.greedy_selections += batch - int(take_random.sum())
        return np.where(take_random, random_actions, greedy)

    def reset_counters(self) -> None:
        self.greedy_selections = 0
        self.random_selections = 0


class RandomUpdateGate:
    """Bernoulli gate deciding whether a step triggers a sequential update.

    The paper's random update (Section 3.2) replaces experience replay: OS-ELM
    cannot benefit from revisiting identical samples (the analytic update is
    idempotent for repeated data), and a replay buffer would not fit on the
    device, so temporal correlation is instead reduced by randomly skipping
    updates with probability ``1 - update_probability``.
    """

    def __init__(self, update_probability: float, *,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None) -> None:
        self.update_probability = check_probability(update_probability,
                                                    name="update_probability")
        self._rng = rng if rng is not None else np_random(seed)[0]
        self.accepted = 0
        self.rejected = 0

    def should_update(self) -> bool:
        """Sample the gate: True means "perform the sequential update this step"."""
        if self._rng.random() < self.update_probability:
            self.accepted += 1
            return True
        self.rejected += 1
        return False

    @property
    def acceptance_rate(self) -> float:
        total = self.accepted + self.rejected
        return self.accepted / total if total else 0.0

    def reset_counters(self) -> None:
        self.accepted = 0
        self.rejected = 0
