"""OS-ELM: the online-sequential ELM (Sections 2.2–2.3).

After an *initial training* on a first chunk (Equation 7, or Equation 8 with
the ReOS-ELM ridge term), the model is updated one chunk at a time with the
recursive formulas of Equations 5–6.  With the paper's batch size of 1 the
inner matrix inverse collapses to a scalar reciprocal, which is the property
that makes the FPGA implementation feasible without an SVD/QRD core.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.elm import ELM
from repro.linalg.incremental import RecursiveInverse
from repro.linalg.pseudo_inverse import regularized_gram_inverse, ridge_solve
from repro.utils.exceptions import NotFittedError
from repro.utils.validation import ensure_2d


class OSELM(ELM):
    """Online Sequential Extreme Learning Machine regressor.

    Inherits the network structure (alpha, bias, activation, regularization)
    from :class:`ELM` and adds the recursive ``(P, beta)`` state plus
    :meth:`init_train` / :meth:`partial_fit`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._recursive: Optional[RecursiveInverse] = None

    # ------------------------------------------------------------------ state
    @property
    def p_matrix(self) -> Optional[np.ndarray]:
        """The inverse-Gram state ``P_i`` (``None`` before initial training)."""
        return None if self._recursive is None else self._recursive.p

    @property
    def n_sequential_updates(self) -> int:
        """How many sequential chunks have been absorbed since initial training."""
        return 0 if self._recursive is None else self._recursive.updates

    @property
    def is_initialized(self) -> bool:
        """Whether the initial training (Equation 7/8) has been performed."""
        return self._recursive is not None

    def reset(self, rng: Optional[np.random.Generator] = None) -> None:
        """Re-draw input weights and discard the recursive state (paper's reset rule)."""
        super().reset(rng)
        self._recursive = None

    # ------------------------------------------------------------------ training
    def init_train(self, x0: np.ndarray, t0: np.ndarray) -> "OSELM":
        """Initial training on the first chunk: compute ``P0`` and ``beta0``.

        Uses Equation 7, or Equation 8 when the regularization config carries
        a positive ``l2_delta`` (the ReOS-ELM variant).  The initial chunk
        should contain at least ``n_hidden`` rows for Equation 7 to be well
        posed; with the ridge term any chunk size works.
        """
        x0 = ensure_2d(x0, name="x0", n_features=self.n_inputs)
        t0 = ensure_2d(t0, name="t0", n_features=self.n_outputs)
        if x0.shape[0] != t0.shape[0]:
            raise ValueError(
                f"x0 and t0 must have the same number of rows, got {x0.shape[0]} and {t0.shape[0]}"
            )
        h0 = self.hidden(x0)
        p0 = regularized_gram_inverse(h0, self.regularization.l2_delta)
        beta0 = ridge_solve(h0, t0, self.regularization.l2_delta, p=p0)
        self._recursive = RecursiveInverse(p0, beta0)
        self.beta = self._recursive.beta
        return self

    # ``fit`` on an OS-ELM is the initial training — keeps the ELM interface usable.
    def fit(self, x: np.ndarray, t: np.ndarray) -> "OSELM":
        return self.init_train(x, t)

    def partial_fit(self, x: np.ndarray, t: np.ndarray) -> "OSELM":
        """Sequential training on one chunk (Equations 5–6).

        The chunk may have any number of rows; the paper (and the FPGA core)
        fixes it at one row, in which case the update involves only
        matrix-vector products and a scalar reciprocal.
        """
        if self._recursive is None:
            raise NotFittedError("OSELM.partial_fit called before init_train()")
        x = ensure_2d(x, name="x", n_features=self.n_inputs)
        t = ensure_2d(t, name="t", n_features=self.n_outputs)
        h = self.hidden(x)
        self._recursive.update(h, t)
        self.beta = self._recursive.beta
        return self

    def seq_train_step(self, x_row: np.ndarray, target: float) -> "OSELM":
        """Convenience wrapper for the batch-size-1 update used by the Q-Network."""
        x_row = np.asarray(x_row, dtype=float).reshape(1, -1)
        t_row = np.asarray(target, dtype=float).reshape(1, -1)
        return self.partial_fit(x_row, t_row)

    # ------------------------------------------------------------------ snapshots
    def clone_state(self) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """Snapshot ``(beta, P, alpha)`` for target-network synchronisation.

        Only beta (and P) evolve during training; alpha and the bias are
        shared between the online network theta_1 and the target network
        theta_2, exactly as in Algorithm 1 where theta_2 starts as a copy of
        theta_1.
        """
        beta = None if self.beta is None else self.beta.copy()
        p = None if self._recursive is None else self._recursive.p.copy()
        return (self.alpha.copy(), beta, p)

    def load_state(self, state: Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]
                   ) -> None:
        """Restore a snapshot produced by :meth:`clone_state`."""
        alpha, beta, p = state
        self.alpha = np.asarray(alpha, dtype=float).copy()
        if beta is None:
            self.beta = None
            self._recursive = None
        else:
            beta = np.asarray(beta, dtype=float).copy()
            self.beta = beta
            if p is not None:
                self._recursive = RecursiveInverse(np.asarray(p, dtype=float).copy(), beta)
            else:
                self._recursive = None
