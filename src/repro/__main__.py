"""Entry point for ``python -m repro`` — see :mod:`repro.api.cli`.

The ``list`` / ``run`` / ``report`` subcommands drive the unified
experiment API; ``worker`` joins a distributed sweep broker
(``python -m repro worker --connect HOST:PORT``).
"""

from repro.api.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
