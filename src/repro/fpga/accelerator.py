"""FPGA-accelerated OS-ELM: the paper's design (7).

:class:`FPGAAcceleratedOSELM` is a drop-in replacement for
:class:`~repro.core.os_elm.OSELM` whose prediction and sequential training
run on the fixed-point :class:`~repro.fpga.core_sim.FixedPointOSELMCore`
(programmable logic) while the initial training stays in floating point
(CPU), exactly mirroring Figure 3's partitioning.  Besides computing the
fixed-point results, it accumulates *modelled* latency — cycle counts of the
PL core at 125 MHz and Cortex-A9 estimates for the CPU-side parts — in a
:class:`~repro.utils.timer.TimeBreakdown`, which the execution-time
experiments use to produce the FPGA bars of Figures 5 and 6.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.os_elm import OSELM
from repro.core.regularization import RegularizationConfig
from repro.fixedpoint.qformat import Q20, QFormat
from repro.fpga.core_sim import FixedPointOSELMCore
from repro.fpga.device import FPGADevice, XC7Z020
from repro.fpga.resources import OSELMCoreResourceModel
from repro.fpga.timing import CortexA9LatencyModel, FPGACoreLatencyModel
from repro.utils.exceptions import NotFittedError
from repro.utils.timer import TimeBreakdown
from repro.utils.validation import ensure_2d


class FPGAAcceleratedOSELM(OSELM):
    """OS-ELM whose predict / seq_train run on the fixed-point FPGA core model.

    Parameters
    ----------
    n_inputs, n_hidden, n_outputs:
        Network dimensions.
    activation, regularization, rng, seed:
        As for :class:`~repro.core.os_elm.OSELM` (the FPGA design uses the
        OS-ELM-L2-Lipschitz configuration).
    qformat:
        Fixed-point word format of the core (32-bit Q20 by default).
    device:
        Target FPGA device; the constructor verifies that the design fits
        (mirroring Table 3's observation that 256 hidden units do not).
    clock_mhz:
        Programmable-logic clock (125 MHz in the paper).
    check_resources:
        Set to False to skip the fit check (useful for what-if sweeps).
    """

    def __init__(self, n_inputs: int, n_hidden: int, n_outputs: int = 1, *,
                 activation: str = "relu",
                 regularization: RegularizationConfig = RegularizationConfig(),
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None,
                 qformat: QFormat = Q20,
                 device: FPGADevice = XC7Z020,
                 clock_mhz: float = 125.0,
                 check_resources: bool = True) -> None:
        super().__init__(n_inputs, n_hidden, n_outputs, activation=activation,
                         regularization=regularization, rng=rng, seed=seed)
        self.qformat = qformat
        self.device = device
        self.resource_model = OSELMCoreResourceModel(n_inputs=n_inputs,
                                                     n_outputs=n_outputs,
                                                     qformat=qformat)
        if check_resources:
            self.resource_model.check_fit(n_hidden, device)
        self.core = FixedPointOSELMCore(n_inputs, n_hidden, n_outputs,
                                        activation=activation, qformat=qformat)
        self.pl_latency = FPGACoreLatencyModel(clock_hz=clock_mhz * 1e6)
        self.cpu_latency = CortexA9LatencyModel()
        #: Modelled (not wall-clock) execution time attributed per operation.
        self.modelled_time = TimeBreakdown()
        self.core.load_weights(self.alpha, self.bias)

    # ------------------------------------------------------------------ state management
    def reset(self, rng: Optional[np.random.Generator] = None) -> None:
        super().reset(rng)
        # ``reset`` is called from ELM.__init__ indirectly only through agents;
        # the core exists only after __init__ completed.
        if hasattr(self, "core"):
            self.core = FixedPointOSELMCore(self.n_inputs, self.n_hidden, self.n_outputs,
                                            activation=self.activation.name,
                                            qformat=self.qformat)
            self.core.load_weights(self.alpha, self.bias)

    @property
    def is_fitted(self) -> bool:
        return self.core.ready if hasattr(self, "core") else super().is_fitted

    @property
    def is_initialized(self) -> bool:
        return self.core.ready

    # ------------------------------------------------------------------ training
    def init_train(self, x0: np.ndarray, t0: np.ndarray) -> "FPGAAcceleratedOSELM":
        """Initial training in floating point on the CPU, then quantized into BRAM."""
        super().init_train(x0, t0)
        assert self._recursive is not None
        self.core.load_initial_state(self._recursive.p, self._recursive.beta)
        chunk = ensure_2d(x0, name="x0").shape[0]
        latency = self.cpu_latency.init_train(self.n_inputs, self.n_hidden, chunk,
                                              self.n_outputs)
        self.modelled_time.add("init_train", latency.seconds)
        return self

    def partial_fit(self, x: np.ndarray, t: np.ndarray) -> "FPGAAcceleratedOSELM":
        """Sequential training on the fixed-point core (one row at a time)."""
        if not self.core.ready:
            raise NotFittedError("FPGAAcceleratedOSELM.partial_fit called before init_train()")
        x = ensure_2d(x, name="x", n_features=self.n_inputs)
        t = ensure_2d(t, name="t", n_features=self.n_outputs)
        if x.shape[0] != t.shape[0]:
            raise ValueError("x and t must have the same number of rows")
        for row in range(x.shape[0]):
            self.core.seq_train(x[row], t[row])
            self.modelled_time.add("seq_train", self.pl_latency.seq_train(self.n_hidden,
                                                                          self.n_outputs).seconds)
        # Mirror the quantized state into the float attributes so diagnostics
        # (beta norm, Lipschitz bound, target-network snapshots) see the same
        # weights the hardware would produce.
        self.beta = self.core.beta.to_float()
        if self._recursive is not None:
            self._recursive.beta = self.beta.copy()
            self._recursive.p = self.core.p.to_float()
        return self

    # ------------------------------------------------------------------ inference
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Prediction on the fixed-point core, one row per core invocation.

        Mirrors :meth:`repro.core.elm.ELM.predict`'s shape contract: 1-D in,
        ``(n_outputs,)`` out; 2-D in, ``(B, n_outputs)`` out.
        """
        if not self.core.ready:
            raise NotFittedError("FPGAAcceleratedOSELM.predict called before init_train()")
        single = np.asarray(x).ndim == 1
        x = ensure_2d(x, name="x", n_features=self.n_inputs)
        outputs = np.empty((x.shape[0], self.n_outputs))
        predict_latency = self.pl_latency.predict(self.n_inputs, self.n_hidden,
                                                  self.n_outputs).seconds
        for row in range(x.shape[0]):
            outputs[row] = self.core.predict(x[row])[0]
            self.modelled_time.add("predict_seq", predict_latency)
        return outputs[0] if single else outputs

    # ------------------------------------------------------------------ diagnostics
    def quantization_report(self) -> dict:
        """Divergence between the fixed-point state and the float recursive state."""
        if self._recursive is None or not self.core.ready:
            return {"beta_max_abs_error": 0.0, "p_max_abs_error": 0.0}
        return self.core.compare_against(self._recursive.beta, self._recursive.p)

    def resource_utilization(self) -> dict:
        """Percent utilization of the target device for this design's hidden size."""
        return self.resource_model.utilization(self.n_hidden, self.device).utilization_percent

    def modelled_speedup_vs_cpu(self) -> float:
        """Ratio of Cortex-A9 to PL latency for one sequential update."""
        cpu = self.cpu_latency.seq_train(self.n_hidden, self.n_outputs).seconds
        pl = self.pl_latency.seq_train(self.n_hidden, self.n_outputs).seconds
        return cpu / pl
