"""The combined PYNQ-Z1 platform model used by the execution-time experiments.

Figure 5 compares seven designs on the same board: the six software designs
run entirely on the 650 MHz Cortex-A9, while the FPGA design offloads
``predict_seq`` and ``seq_train`` to the 125 MHz programmable logic and keeps
``init_train`` (and the pre-initialisation predictions) on the CPU.
:class:`PynqZ1Platform` knows, for every design, which latency model each
operation uses, and converts the per-operation *counts* collected during a
training run into modelled execution-time breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.fpga.device import PYNQ_Z1, PlatformSpec
from repro.fpga.timing import CortexA9LatencyModel, FPGACoreLatencyModel
from repro.utils.timer import TimeBreakdown


@dataclass
class PynqZ1Platform:
    """Latency projection for the PYNQ-Z1 board.

    Parameters
    ----------
    spec:
        Board specification (clock rates, device).
    cpu / pl:
        The latency models; constructed from the spec's clocks by default.
    """

    spec: PlatformSpec = PYNQ_Z1
    cpu: CortexA9LatencyModel = field(default_factory=CortexA9LatencyModel)
    pl: FPGACoreLatencyModel = field(default_factory=FPGACoreLatencyModel)

    def __post_init__(self) -> None:
        # Keep the latency models' clocks consistent with the board spec.
        if abs(self.cpu.clock_hz - self.spec.cpu_clock_hz) > 1.0:
            self.cpu = CortexA9LatencyModel(clock_hz=self.spec.cpu_clock_hz,
                                            macs_per_cycle=self.cpu.macs_per_cycle,
                                            call_overhead_seconds=self.cpu.call_overhead_seconds)
        if abs(self.pl.clock_hz - self.spec.pl_clock_hz) > 1.0:
            self.pl = FPGACoreLatencyModel(clock_hz=self.spec.pl_clock_hz,
                                           pipeline_fill_cycles=self.pl.pipeline_fill_cycles,
                                           divide_cycles=self.pl.divide_cycles,
                                           invocation_overhead_seconds=self.pl.invocation_overhead_seconds)

    # ------------------------------------------------------------------ per-operation latency
    def operation_latency(self, design: str, operation: str, *, n_hidden: int,
                          n_inputs: int = 5, n_outputs: int = 1,
                          n_states: int = 4, n_actions: int = 2,
                          dqn_batch: int = 32, init_chunk: int = None) -> float:
        """Latency (seconds) of a single invocation of ``operation`` for ``design``.

        ``operation`` uses the Figure 5/6 labels.  For the ELM/OS-ELM designs
        prediction counts are per network evaluation (one input row); for the
        DQN design ``predict_1`` / ``predict_32`` are per forward pass of the
        respective batch size.
        """
        init_chunk = n_hidden if init_chunk is None else init_chunk
        on_fpga = design.upper() == "FPGA"
        if operation in ("predict_init", "predict_seq"):
            if on_fpga and operation == "predict_seq":
                return self.pl.predict(n_inputs, n_hidden, n_outputs).seconds
            return self.cpu.predict(n_inputs, n_hidden, n_outputs).seconds
        if operation == "seq_train":
            if on_fpga:
                return self.pl.seq_train(n_hidden, n_outputs).seconds
            return self.cpu.seq_train(n_hidden, n_outputs).seconds
        if operation == "init_train":
            return self.cpu.init_train(n_inputs, n_hidden, init_chunk, n_outputs).seconds
        if operation == "predict_1":
            return self.cpu.dqn_predict(n_states, n_hidden, n_actions, batch_size=1).seconds
        if operation == "predict_32":
            return self.cpu.dqn_predict(n_states, n_hidden, n_actions,
                                        batch_size=dqn_batch).seconds
        if operation == "train_DQN":
            return self.cpu.dqn_train(n_states, n_hidden, n_actions,
                                      batch_size=dqn_batch).seconds
        raise ValueError(f"unknown operation label {operation!r}")

    # ------------------------------------------------------------------ projection
    def project_breakdown(self, design: str, counts: Mapping[str, int], *, n_hidden: int,
                          n_inputs: int = 5, n_outputs: int = 1,
                          n_states: int = 4, n_actions: int = 2,
                          dqn_batch: int = 32) -> TimeBreakdown:
        """Convert per-operation invocation counts into a modelled time breakdown.

        ``counts`` is typically ``TrainingResult.breakdown.counts`` — the
        number of network evaluations / updates each design actually needed
        to complete the task.
        """
        projected = TimeBreakdown()
        for operation, count in counts.items():
            if count <= 0:
                continue
            latency = self.operation_latency(
                design, operation, n_hidden=n_hidden, n_inputs=n_inputs,
                n_outputs=n_outputs, n_states=n_states, n_actions=n_actions,
                dqn_batch=dqn_batch,
            )
            projected.add(operation, latency * count, count)
        return projected

    def speedup(self, baseline: TimeBreakdown, proposed: TimeBreakdown) -> float:
        """Ratio of total modelled times (the "x-times faster than DQN" numbers)."""
        denominator = proposed.total()
        if denominator <= 0:
            return float("inf")
        return baseline.total() / denominator

    def summary(self) -> Dict[str, object]:
        return dict(self.spec.summary())
