"""Latency models for the CPU (Cortex-A9) and the programmable-logic core.

Figures 5 and 6 of the paper report the execution time to complete the
CartPole task, broken down by operation.  Because those times were measured
on the PYNQ-Z1 board (and, for the FPGA design, through RTL simulation), the
reproduction projects them with analytical latency models:

* :class:`CortexA9LatencyModel` — a roofline-ish model of NumPy-style
  execution on the 650 MHz Cortex-A9: every operation costs a fixed
  interpreter/dispatch overhead per library call plus its arithmetic work at
  an effective MAC rate.
* :class:`FPGACoreLatencyModel` — a cycle-count model of the Verilog core:
  a single multiply-accumulate unit processes one elementary operation per
  cycle at 125 MHz, plus an AXI/driver invocation overhead paid by the CPU
  each time it kicks the core.

Both models deliberately expose their constants so the ablation benchmarks
can sweep them; the defaults are calibrated so that the *relative* behaviour
(ordering of the designs, growth with the hidden-layer size, which operation
dominates) matches the paper's Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class OperationLatency:
    """Latency of one operation split into overhead and compute parts."""

    operation: str
    overhead_seconds: float
    compute_seconds: float

    @property
    def seconds(self) -> float:
        return self.overhead_seconds + self.compute_seconds


def _mlp_layer_sizes(n_states: int, n_hidden: int, n_actions: int) -> tuple:
    """Layer dimensions of the paper's three-layer DQN."""
    return ((n_states, n_hidden), (n_hidden, n_hidden), (n_hidden, n_actions))


@dataclass(frozen=True)
class CortexA9LatencyModel:
    """Software latency on the PYNQ-Z1's 650 MHz Cortex-A9.

    Attributes
    ----------
    clock_hz:
        CPU clock (650 MHz).
    macs_per_cycle:
        Effective multiply-accumulates retired per cycle through
        NumPy/PyTorch, including cache effects (well below 1 on the A9).
    call_overhead_seconds:
        Interpreter + library dispatch overhead per vectorised call.
    """

    clock_hz: float = 650e6
    macs_per_cycle: float = 0.05
    call_overhead_seconds: float = 2.5e-4

    def __post_init__(self) -> None:
        check_positive(self.clock_hz, name="clock_hz")
        check_positive(self.macs_per_cycle, name="macs_per_cycle")
        check_positive(self.call_overhead_seconds, name="call_overhead_seconds", strict=False)

    # ------------------------------------------------------------------ helpers
    @property
    def seconds_per_mac(self) -> float:
        return 1.0 / (self.clock_hz * self.macs_per_cycle)

    def _latency(self, operation: str, macs: float, n_calls: int) -> OperationLatency:
        return OperationLatency(operation, n_calls * self.call_overhead_seconds,
                                macs * self.seconds_per_mac)

    # ------------------------------------------------------------------ OS-ELM operations
    def predict(self, n_inputs: int, n_hidden: int, n_outputs: int = 1) -> OperationLatency:
        """One forward pass of the single-hidden-layer network (one input row)."""
        macs = n_inputs * n_hidden + n_hidden * n_outputs + n_hidden
        return self._latency("predict", macs, n_calls=3)

    def seq_train(self, n_hidden: int, n_outputs: int = 1) -> OperationLatency:
        """One batch-size-1 sequential update (Equations 5–6, Sherman–Morrison form)."""
        macs = 3 * n_hidden * n_hidden + 8 * n_hidden * max(n_outputs, 1)
        return self._latency("seq_train", macs, n_calls=8)

    def init_train(self, n_inputs: int, n_hidden: int, chunk_size: int,
                   n_outputs: int = 1) -> OperationLatency:
        """Initial training on a chunk of ``chunk_size`` rows (Equation 7/8)."""
        macs = (
            chunk_size * n_inputs * n_hidden          # hidden-layer matrix H0
            + chunk_size * n_hidden * n_hidden        # gram matrix H0^T H0
            + n_hidden**3 / 3.0                       # Cholesky inverse
            + chunk_size * n_hidden * n_outputs * 2   # beta0 = P0 H0^T T0
        )
        return self._latency("init_train", macs, n_calls=6)

    # ------------------------------------------------------------------ DQN operations
    def dqn_predict(self, n_states: int, n_hidden: int, n_actions: int,
                    batch_size: int = 1) -> OperationLatency:
        """Forward pass of the three-layer DQN for a batch."""
        macs = batch_size * sum(a * b for a, b in _mlp_layer_sizes(n_states, n_hidden, n_actions))
        return self._latency(f"predict_{batch_size}", macs, n_calls=6)

    def dqn_train(self, n_states: int, n_hidden: int, n_actions: int,
                  batch_size: int = 32) -> OperationLatency:
        """Forward + backward + Adam update on one replay minibatch."""
        forward = batch_size * sum(a * b for a, b in _mlp_layer_sizes(n_states, n_hidden, n_actions))
        # Backward pass costs roughly twice the forward pass; Adam touches every weight.
        weights = sum(a * b for a, b in _mlp_layer_sizes(n_states, n_hidden, n_actions))
        macs = 3 * forward + 5 * weights
        return self._latency("train_DQN", macs, n_calls=20)


@dataclass(frozen=True)
class FPGACoreLatencyModel:
    """Cycle-count latency of the Verilog predict / seq_train core.

    The core has a single add, a single multiply and a single divide unit
    (Section 4.2), so elementary operations are serialised: the cycle count
    is essentially the number of multiply-accumulates plus a small pipeline
    ramp per matrix pass.  Each invocation also pays a CPU-side driver /
    AXI transfer overhead.
    """

    clock_hz: float = 125e6
    pipeline_fill_cycles: int = 16        #: per matrix/vector pass
    divide_cycles: int = 32               #: latency of the single divide unit
    invocation_overhead_seconds: float = 2.0e-5

    def __post_init__(self) -> None:
        check_positive(self.clock_hz, name="clock_hz")
        check_positive(self.invocation_overhead_seconds,
                       name="invocation_overhead_seconds", strict=False)

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.clock_hz

    # ------------------------------------------------------------------ cycle counts
    def predict_cycles(self, n_inputs: int, n_hidden: int, n_outputs: int = 1) -> int:
        """Cycles for one forward pass: x@alpha (+bias, activation), then H@beta."""
        hidden_pass = n_inputs * n_hidden + n_hidden + self.pipeline_fill_cycles
        output_pass = n_hidden * n_outputs + self.pipeline_fill_cycles
        return int(hidden_pass + output_pass)

    def seq_train_cycles(self, n_hidden: int, n_outputs: int = 1) -> int:
        """Cycles for one batch-size-1 update.

        ``P h`` (N^2 MACs), the scalar denominator (N MACs + one divide), the
        rank-1 update of P (N^2 multiplies + N^2 subtractions folded into the
        same pass), and the beta update (≈3 N m MACs).
        """
        n = n_hidden
        cycles = (
            n * n + self.pipeline_fill_cycles          # P h
            + n + self.divide_cycles                   # h (P h), reciprocal
            + 2 * n * n + self.pipeline_fill_cycles    # P -= (P h)(h P) * recip
            + 3 * n * max(n_outputs, 1) + self.pipeline_fill_cycles  # beta update
        )
        return int(cycles)

    # ------------------------------------------------------------------ latencies
    def predict(self, n_inputs: int, n_hidden: int, n_outputs: int = 1) -> OperationLatency:
        cycles = self.predict_cycles(n_inputs, n_hidden, n_outputs)
        return OperationLatency("predict", self.invocation_overhead_seconds,
                                cycles * self.cycle_seconds)

    def seq_train(self, n_hidden: int, n_outputs: int = 1) -> OperationLatency:
        cycles = self.seq_train_cycles(n_hidden, n_outputs)
        return OperationLatency("seq_train", self.invocation_overhead_seconds,
                                cycles * self.cycle_seconds)

    def throughput_updates_per_second(self, n_hidden: int) -> float:
        """Peak sequential-training throughput of the core (ignoring the CPU side)."""
        return 1.0 / self.seq_train(n_hidden).seconds

    def cycles_summary(self, n_hidden: int, n_inputs: int = 5) -> Dict[str, int]:
        return {
            "predict": self.predict_cycles(n_inputs, n_hidden),
            "seq_train": self.seq_train_cycles(n_hidden),
        }
