"""FPGA device and board catalog.

Resource capacities are those of the Xilinx Zynq-7020 (xc7z020clg400-1), the
device on the PYNQ-Z1 board the paper targets: 53,200 LUTs, 106,400
flip-flops, 140 36-Kbit block RAMs and 220 DSP48E1 slices, with a dual-core
Cortex-A9 PS running at 650 MHz and 512 MB of DDR3 (the paper's Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.exceptions import ResourceExhaustedError


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of the four FPGA resource types tracked by Table 3."""

    bram_36k: float = 0.0
    dsp: float = 0.0
    ff: float = 0.0
    lut: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.bram_36k + other.bram_36k,
            self.dsp + other.dsp,
            self.ff + other.ff,
            self.lut + other.lut,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector(self.bram_36k * factor, self.dsp * factor,
                              self.ff * factor, self.lut * factor)

    def utilization(self, capacity: "ResourceVector") -> Dict[str, float]:
        """Percentage utilization of each resource against ``capacity``."""
        def pct(used: float, avail: float) -> float:
            return 100.0 * used / avail if avail > 0 else float("inf")
        return {
            "BRAM": pct(self.bram_36k, capacity.bram_36k),
            "DSP": pct(self.dsp, capacity.dsp),
            "FF": pct(self.ff, capacity.ff),
            "LUT": pct(self.lut, capacity.lut),
        }

    def fits_in(self, capacity: "ResourceVector") -> bool:
        return (self.bram_36k <= capacity.bram_36k and self.dsp <= capacity.dsp
                and self.ff <= capacity.ff and self.lut <= capacity.lut)

    def as_dict(self) -> Dict[str, float]:
        return {"BRAM": self.bram_36k, "DSP": self.dsp, "FF": self.ff, "LUT": self.lut}


@dataclass(frozen=True)
class FPGADevice:
    """A programmable-logic device with fixed resource capacities."""

    name: str
    capacity: ResourceVector
    default_clock_hz: float = 100e6

    def check_fit(self, required: ResourceVector) -> None:
        """Raise :class:`ResourceExhaustedError` if ``required`` exceeds any capacity."""
        for resource, used in required.as_dict().items():
            available = self.capacity.as_dict()[resource]
            if used > available:
                raise ResourceExhaustedError(
                    f"design needs {used:.0f} {resource} but {self.name} provides "
                    f"only {available:.0f}",
                    resource=resource, required=used, available=available,
                )

    def utilization(self, required: ResourceVector) -> Dict[str, float]:
        return required.utilization(self.capacity)


@dataclass(frozen=True)
class PlatformSpec:
    """A board: an FPGA device plus its processing system (the paper's Table 1)."""

    name: str
    device: FPGADevice
    cpu_name: str
    cpu_clock_hz: float
    ram_bytes: int
    pl_clock_hz: float
    os_name: str = "PYNQ Linux (Ubuntu 18.04 based)"

    @property
    def cpu_clock_mhz(self) -> float:
        return self.cpu_clock_hz / 1e6

    @property
    def pl_clock_mhz(self) -> float:
        return self.pl_clock_hz / 1e6

    def summary(self) -> Dict[str, object]:
        """Rows of the paper's Table 1 (experimental-machine specification)."""
        return {
            "OS": self.os_name,
            "CPU": f"{self.cpu_name} ({self.cpu_clock_mhz:.0f}MHz)",
            "RAM": f"{self.ram_bytes // (1024 * 1024)}MB",
            "FPGA device": self.device.name,
            "PL clock": f"{self.pl_clock_mhz:.0f}MHz",
        }


#: The Zynq-7020 programmable logic (target device xc7z020clg400-1).
XC7Z020 = FPGADevice(
    name="xc7z020clg400-1",
    capacity=ResourceVector(bram_36k=140, dsp=220, ff=106_400, lut=53_200),
    default_clock_hz=125e6,
)

#: The PYNQ-Z1 board used throughout Section 4.
PYNQ_Z1 = PlatformSpec(
    name="PYNQ-Z1",
    device=XC7Z020,
    cpu_name="Cortex-A9 processor",
    cpu_clock_hz=650e6,
    ram_bytes=512 * 1024 * 1024,
    pl_clock_hz=125e6,
)
