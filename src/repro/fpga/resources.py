"""Analytical area model of the OS-ELM Q-Network core (Table 3).

The core stores its working set in on-chip block RAM (Section 4.2): the
inverse-Gram matrix ``P`` (N x N), a same-sized ping-pong copy and two
N x N work buffers for the rank-1 update, plus the small vectors (alpha,
bias, beta, the input row and intermediates) which fit in distributed
LUT RAM.  With 32-bit words the BRAM requirement is therefore dominated by
``4 * N^2 * 32`` bits, which reproduces Table 3's qualitative behaviour —
quadratic growth, 192 units just fitting (91% BRAM) and 256 units exceeding
the xc7z020's 140 blocks.

The datapath uses a single multiplier (4 DSP48E1 slices for a 32x32-bit
product), independent of N — matching the constant 1.82% DSP utilization of
Table 3 — while flip-flop and LUT usage grow slowly with N (wider address
counters, bank multiplexing), modelled linearly and calibrated against the
paper's reported percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fixedpoint.qformat import Q20, QFormat
from repro.fpga.device import FPGADevice, ResourceVector, XC7Z020

#: Bits per 36-Kbit block RAM.
BRAM36_BITS = 36 * 1024

#: Hidden-layer sizes reported in Table 3.
TABLE3_HIDDEN_SIZES = (32, 64, 128, 192, 256)

#: The paper's Table 3 (percent utilization; None marks the unimplementable design).
TABLE3_PAPER_VALUES: Dict[int, Optional[Dict[str, float]]] = {
    32: {"BRAM": 2.86, "DSP": 1.82, "FF": 1.49, "LUT": 3.52},
    64: {"BRAM": 11.43, "DSP": 1.82, "FF": 4.5, "LUT": 5.0},
    128: {"BRAM": 45.71, "DSP": 1.82, "FF": 4.5, "LUT": 7.93},
    192: {"BRAM": 91.43, "DSP": 1.82, "FF": 6.44, "LUT": 11.03},
    256: None,
}


@dataclass(frozen=True)
class UtilizationRow:
    """One row of the resource-utilization table."""

    n_hidden: int
    required: ResourceVector
    utilization_percent: Dict[str, float]
    fits: bool

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"Units": self.n_hidden}
        if self.fits:
            row.update({k: round(v, 2) for k, v in self.utilization_percent.items()})
        else:
            row.update({k: None for k in ("BRAM", "DSP", "FF", "LUT")})
        return row


@dataclass
class ResourceReport:
    """A full Table-3-style report over a sweep of hidden-layer sizes."""

    device_name: str
    rows: List[UtilizationRow] = field(default_factory=list)

    def row_for(self, n_hidden: int) -> UtilizationRow:
        for row in self.rows:
            if row.n_hidden == n_hidden:
                return row
        raise KeyError(f"no row for {n_hidden} hidden units")

    def as_table(self) -> List[Dict[str, object]]:
        return [row.as_row() for row in self.rows]

    @property
    def largest_fitting(self) -> int:
        fitting = [row.n_hidden for row in self.rows if row.fits]
        return max(fitting) if fitting else 0


@dataclass(frozen=True)
class OSELMCoreResourceModel:
    """Area model of the combined predict + seq_train core.

    Parameters
    ----------
    n_inputs, n_outputs:
        Network input/output sizes (5 and 1 for the CartPole Q-network).
    qformat:
        Word format (32-bit Q20 by default).
    n_matrix_buffers:
        Number of N x N arrays held in BRAM (P, its ping-pong copy and two
        work buffers by default).
    """

    n_inputs: int = 5
    n_outputs: int = 1
    qformat: QFormat = Q20
    n_matrix_buffers: int = 4
    multiplier_dsp: int = 4          #: DSP48E1 slices for one 32x32 multiplier
    base_ff: float = 530.0
    ff_per_unit: float = 32.9
    base_lut: float = 1450.0
    lut_per_unit: float = 18.0

    # ------------------------------------------------------------------ storage
    def bram_bits(self, n_hidden: int) -> int:
        """Bits of block-RAM storage required for the N x N working set."""
        if n_hidden <= 0:
            raise ValueError("n_hidden must be positive")
        word = self.qformat.total_bits
        return self.n_matrix_buffers * n_hidden * n_hidden * word

    def distributed_ram_bits(self, n_hidden: int) -> int:
        """Bits of small-array storage assumed to live in LUT RAM (alpha, bias, beta, buffers)."""
        word = self.qformat.total_bits
        vectors = (
            self.n_inputs * n_hidden      # alpha
            + n_hidden                    # bias
            + n_hidden * self.n_outputs   # beta
            + self.n_inputs               # input row
            + 3 * n_hidden                # h, P h, work vector
        )
        return vectors * word

    def bram_blocks(self, n_hidden: int) -> int:
        """Number of 36-Kbit BRAMs required."""
        return int(np.ceil(self.bram_bits(n_hidden) / BRAM36_BITS))

    # ------------------------------------------------------------------ logic
    def dsp_slices(self, n_hidden: int) -> int:
        """DSP slices — constant because the core has a single multiply unit."""
        return self.multiplier_dsp

    def flip_flops(self, n_hidden: int) -> float:
        return self.base_ff + self.ff_per_unit * n_hidden

    def luts(self, n_hidden: int) -> float:
        # Distributed RAM adds LUT cost: one LUT stores 64 bits in RAM64 mode.
        lutram = self.distributed_ram_bits(n_hidden) / 64.0
        return self.base_lut + self.lut_per_unit * n_hidden + lutram

    # ------------------------------------------------------------------ reports
    def required_resources(self, n_hidden: int) -> ResourceVector:
        return ResourceVector(
            bram_36k=self.bram_blocks(n_hidden),
            dsp=self.dsp_slices(n_hidden),
            ff=self.flip_flops(n_hidden),
            lut=self.luts(n_hidden),
        )

    def utilization(self, n_hidden: int, device: FPGADevice = XC7Z020) -> UtilizationRow:
        required = self.required_resources(n_hidden)
        return UtilizationRow(
            n_hidden=n_hidden,
            required=required,
            utilization_percent=device.utilization(required),
            fits=required.fits_in(device.capacity),
        )

    def check_fit(self, n_hidden: int, device: FPGADevice = XC7Z020) -> None:
        """Raise :class:`ResourceExhaustedError` when the design cannot be implemented."""
        device.check_fit(self.required_resources(n_hidden))

    def max_hidden_units(self, device: FPGADevice = XC7Z020, *, limit: int = 4096) -> int:
        """Largest hidden-layer size that fits the device (binary search on the model)."""
        low, high = 1, limit
        if not self.required_resources(low).fits_in(device.capacity):
            return 0
        while low < high:
            mid = (low + high + 1) // 2
            if self.required_resources(mid).fits_in(device.capacity):
                low = mid
            else:
                high = mid - 1
        return low

    def report(self, hidden_sizes: Sequence[int] = TABLE3_HIDDEN_SIZES,
               device: FPGADevice = XC7Z020) -> ResourceReport:
        """Generate the Table-3-style sweep."""
        report = ResourceReport(device_name=device.name)
        for n_hidden in hidden_sizes:
            report.rows.append(self.utilization(int(n_hidden), device))
        return report
