"""FPGA platform models: the PYNQ-Z1 substitute.

The paper implements the OS-ELM Q-Network's ``predict`` and ``seq_train``
modules in the programmable logic (PL) of a Xilinx PYNQ-Z1 board
(xc7z020clg400-1, 125 MHz) while the initial training runs on the board's
650 MHz Cortex-A9.  Since that hardware is not available here, this
subpackage provides:

* :mod:`repro.fpga.device` — the device/board catalog (resource capacities,
  clock rates),
* :mod:`repro.fpga.resources` — an analytical area model of the OS-ELM core
  calibrated against Table 3,
* :mod:`repro.fpga.timing` — cycle-count / latency models of the PL core and
  of software execution on the Cortex-A9 (the basis of Figures 5 and 6),
* :mod:`repro.fpga.core_sim` — a bit-accurate (32-bit Q20) functional
  simulation of the predict / seq_train datapath,
* :mod:`repro.fpga.accelerator` — :class:`FPGAAcceleratedOSELM`, a drop-in
  OS-ELM replacement that computes with the fixed-point core and accumulates
  modelled PL latency,
* :mod:`repro.fpga.platform` — the combined PYNQ-Z1 platform object used by
  the execution-time experiments.
"""

from repro.fpga.device import (
    PYNQ_Z1,
    XC7Z020,
    FPGADevice,
    PlatformSpec,
    ResourceVector,
)
from repro.fpga.resources import OSELMCoreResourceModel, ResourceReport, UtilizationRow
from repro.fpga.timing import (
    CortexA9LatencyModel,
    FPGACoreLatencyModel,
    OperationLatency,
)
from repro.fpga.core_sim import FixedPointOSELMCore
from repro.fpga.accelerator import FPGAAcceleratedOSELM
from repro.fpga.platform import PynqZ1Platform

__all__ = [
    "PYNQ_Z1",
    "XC7Z020",
    "FPGADevice",
    "PlatformSpec",
    "ResourceVector",
    "OSELMCoreResourceModel",
    "ResourceReport",
    "UtilizationRow",
    "CortexA9LatencyModel",
    "FPGACoreLatencyModel",
    "OperationLatency",
    "FixedPointOSELMCore",
    "FPGAAcceleratedOSELM",
    "PynqZ1Platform",
]
