"""Bit-accurate functional simulation of the predict / seq_train datapath.

The paper's Verilog core stores the input row, ``alpha``, ``beta``, ``P`` and
all intermediates as 32-bit Q20 fixed-point numbers in on-chip BRAM and
processes them with a single add / multiply / divide unit.  This module
reproduces that arithmetic in software: every intermediate value is quantized
to the configured Q-format, so the simulated core exhibits the same rounding
behaviour (and the same failure modes — e.g. saturation of the reciprocal
when the denominator underflows) as the hardware would.

The initial training (Equation 7/8) is *not* part of the core: on the real
board it runs on the Cortex-A9 in floating point and the resulting ``P0`` /
``beta0`` are then quantized and DMA-ed into BRAM, which is exactly what
:meth:`FixedPointOSELMCore.load_initial_state` models.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.fixedpoint.array import FixedPointArray
from repro.fixedpoint.ops import (
    fixed_add,
    fixed_matmul,
    fixed_multiply,
    fixed_outer,
    fixed_reciprocal,
)
from repro.fixedpoint.qformat import Q20, QFormat
from repro.nn.activations import get_activation
from repro.utils.exceptions import NotFittedError


class FixedPointOSELMCore:
    """The fixed-point predict + seq_train engine.

    Parameters
    ----------
    n_inputs, n_hidden, n_outputs:
        Network dimensions (the CartPole Q-network uses 5 / N-tilde / 1).
    activation:
        Hidden activation; ReLU in the paper (cheap in hardware: a comparator).
    qformat:
        Fixed-point word format (32-bit Q20 by default).
    """

    def __init__(self, n_inputs: int, n_hidden: int, n_outputs: int = 1, *,
                 activation: str = "relu", qformat: QFormat = Q20) -> None:
        if n_inputs <= 0 or n_hidden <= 0 or n_outputs <= 0:
            raise ValueError("n_inputs, n_hidden and n_outputs must be positive")
        self.n_inputs = int(n_inputs)
        self.n_hidden = int(n_hidden)
        self.n_outputs = int(n_outputs)
        self.activation = get_activation(activation)
        self.qformat = qformat
        self.alpha: Optional[FixedPointArray] = None
        self.bias: Optional[FixedPointArray] = None
        self.beta: Optional[FixedPointArray] = None
        self.p: Optional[FixedPointArray] = None
        self.predict_invocations = 0
        self.seq_train_invocations = 0

    # ------------------------------------------------------------------ state loading
    def load_weights(self, alpha: np.ndarray, bias: np.ndarray) -> None:
        """Quantize and store the (fixed) input weights and bias."""
        alpha = np.asarray(alpha, dtype=float)
        bias = np.asarray(bias, dtype=float).reshape(-1)
        if alpha.shape != (self.n_inputs, self.n_hidden):
            raise ValueError(f"alpha must have shape {(self.n_inputs, self.n_hidden)}, "
                             f"got {alpha.shape}")
        if bias.shape != (self.n_hidden,):
            raise ValueError(f"bias must have shape {(self.n_hidden,)}, got {bias.shape}")
        self.alpha = FixedPointArray(alpha, self.qformat)
        self.bias = FixedPointArray(bias, self.qformat)

    def load_initial_state(self, p0: np.ndarray, beta0: np.ndarray) -> None:
        """Quantize and store the CPU-computed initial-training results P0 and beta0."""
        p0 = np.asarray(p0, dtype=float)
        beta0 = np.asarray(beta0, dtype=float)
        if p0.shape != (self.n_hidden, self.n_hidden):
            raise ValueError(f"P0 must have shape {(self.n_hidden, self.n_hidden)}, got {p0.shape}")
        if beta0.shape != (self.n_hidden, self.n_outputs):
            raise ValueError(
                f"beta0 must have shape {(self.n_hidden, self.n_outputs)}, got {beta0.shape}"
            )
        self.p = FixedPointArray(p0, self.qformat)
        self.beta = FixedPointArray(beta0, self.qformat)

    @property
    def ready(self) -> bool:
        """Whether both the weights and the initial (P, beta) state have been loaded."""
        return all(x is not None for x in (self.alpha, self.bias, self.beta, self.p))

    def _require_ready(self) -> None:
        if self.alpha is None or self.bias is None:
            raise NotFittedError("core weights not loaded; call load_weights() first")
        if self.beta is None or self.p is None:
            raise NotFittedError(
                "core state not initialised; call load_initial_state() after the "
                "CPU-side initial training"
            )

    # ------------------------------------------------------------------ datapath
    def hidden(self, x_row: np.ndarray) -> FixedPointArray:
        """Hidden-layer vector ``h = G(x @ alpha + b)`` in fixed point (one row)."""
        if self.alpha is None or self.bias is None:
            raise NotFittedError("core weights not loaded; call load_weights() first")
        x_fx = FixedPointArray(np.asarray(x_row, dtype=float).reshape(1, -1), self.qformat)
        if x_fx.shape[1] != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} inputs, got {x_fx.shape[1]}")
        pre = fixed_add(fixed_matmul(x_fx, self.alpha, fmt=self.qformat),
                        FixedPointArray(self.bias.to_float().reshape(1, -1), self.qformat),
                        fmt=self.qformat)
        activated = self.activation.forward(pre.to_float())
        return FixedPointArray(activated, self.qformat)

    def predict(self, x_row: np.ndarray) -> np.ndarray:
        """The predict module: ``y = h @ beta`` for one input row.

        Returns a float view of the fixed-point result (shape ``(1, n_outputs)``).
        """
        self._require_ready()
        h = self.hidden(x_row)
        y = fixed_matmul(h, self.beta, fmt=self.qformat)
        self.predict_invocations += 1
        return y.to_float().reshape(1, self.n_outputs)

    def seq_train(self, x_row: np.ndarray, target: np.ndarray) -> None:
        """The seq_train module: one batch-size-1 OS-ELM update, all in fixed point.

        Implements the Sherman–Morrison form of Equations 5–6::

            h   = G(x alpha + b)
            Ph  = P h^T
            den = 1 + h Ph           (scalar)
            P  <- P - (Ph Ph^T) / den
            e   = t - h beta
            beta <- beta + P h^T e
        """
        self._require_ready()
        fmt = self.qformat
        target = np.asarray(target, dtype=float).reshape(1, self.n_outputs)
        h = self.hidden(x_row)                                   # (1, N)
        h_col = FixedPointArray(h.to_float().reshape(-1, 1), fmt)  # (N, 1)
        ph = fixed_matmul(self.p, h_col, fmt=fmt)                # (N, 1)
        h_dot_ph = fixed_matmul(h, ph, fmt=fmt)                  # (1, 1)
        denominator = fixed_add(FixedPointArray(1.0, fmt), h_dot_ph, fmt=fmt)
        recip = fixed_reciprocal(denominator, fmt=fmt)           # (1, 1) scalar
        outer = fixed_outer(ph.to_float().reshape(-1), ph.to_float().reshape(-1), fmt=fmt)
        correction = fixed_multiply(outer, recip.item(), fmt=fmt)
        self.p = FixedPointArray(self.p.to_float() - correction.to_float(), fmt)
        # beta update: residual uses the *old* beta, as in Equation 6.
        prediction = fixed_matmul(h, self.beta, fmt=fmt)          # (1, m)
        residual = FixedPointArray(target - prediction.to_float(), fmt)
        gain = fixed_matmul(self.p, h_col, fmt=fmt)               # (N, 1), uses the new P
        delta_beta = fixed_matmul(gain, residual, fmt=fmt)        # (N, m)
        self.beta = fixed_add(self.beta, delta_beta, fmt=fmt)
        self.seq_train_invocations += 1

    # ------------------------------------------------------------------ diagnostics
    def memory_words(self) -> Dict[str, int]:
        """Word counts of each BRAM-resident array (for cross-checking the area model)."""
        return {
            "alpha": self.n_inputs * self.n_hidden,
            "bias": self.n_hidden,
            "beta": self.n_hidden * self.n_outputs,
            "P": self.n_hidden * self.n_hidden,
        }

    def state_as_float(self) -> Dict[str, np.ndarray]:
        """Float views of the quantized state (for comparison against a float reference)."""
        self._require_ready()
        return {
            "alpha": self.alpha.to_float(),
            "bias": self.bias.to_float(),
            "beta": self.beta.to_float(),
            "P": self.p.to_float(),
        }

    def compare_against(self, reference_beta: np.ndarray, reference_p: np.ndarray
                        ) -> Dict[str, float]:
        """Maximum absolute divergence of the fixed-point state from a float reference."""
        self._require_ready()
        return {
            "beta_max_abs_error": float(np.max(np.abs(self.beta.to_float() - reference_beta))),
            "p_max_abs_error": float(np.max(np.abs(self.p.to_float() - reference_p))),
        }
