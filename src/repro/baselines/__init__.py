"""Baseline algorithms the paper compares against.

Currently this is the conventional three-layer DQN (Section 2.4): deep
Q-learning with experience replay, a fixed target network, the Huber loss and
the Adam optimizer — implemented on the :mod:`repro.nn` NumPy framework.
"""

from repro.baselines.replay_buffer import ReplayBuffer
from repro.baselines.dqn import DQNAgent, DQNConfig

__all__ = ["ReplayBuffer", "DQNAgent", "DQNConfig"]
