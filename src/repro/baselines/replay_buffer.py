"""Experience-replay buffer for the DQN baseline (Section 2.4).

This is the component the paper argues is *infeasible* on a resource-limited
edge device: a large circular buffer of past transitions sampled uniformly at
random to break temporal correlation.  It is implemented with pre-allocated
NumPy arrays so sampling a minibatch is a single fancy-indexing operation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.seeding import np_random


class ReplayBuffer:
    """Uniform-sampling circular experience replay.

    Parameters
    ----------
    capacity:
        Maximum number of stored transitions (oldest are overwritten).
    n_states:
        Dimensionality of the state vectors.
    rng / seed:
        Randomness used for minibatch sampling.
    """

    def __init__(self, capacity: int, n_states: int, *,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if n_states <= 0:
            raise ValueError(f"n_states must be positive, got {n_states}")
        self.capacity = int(capacity)
        self.n_states = int(n_states)
        self._rng = rng if rng is not None else np_random(seed)[0]
        self._states = np.zeros((self.capacity, self.n_states))
        self._actions = np.zeros(self.capacity, dtype=np.int64)
        self._rewards = np.zeros(self.capacity)
        self._next_states = np.zeros((self.capacity, self.n_states))
        self._dones = np.zeros(self.capacity, dtype=bool)
        self._cursor = 0
        self._size = 0

    def add(self, state: np.ndarray, action: int, reward: float,
            next_state: np.ndarray, done: bool) -> None:
        """Store one transition, overwriting the oldest when full."""
        index = self._cursor
        self._states[index] = np.asarray(state, dtype=float).reshape(-1)
        self._actions[index] = int(action)
        self._rewards[index] = float(reward)
        self._next_states[index] = np.asarray(next_state, dtype=float).reshape(-1)
        self._dones[index] = bool(done)
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int
               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sample a uniform minibatch (with replacement when smaller than requested)."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        replace = self._size < batch_size
        indices = self._rng.choice(self._size, size=batch_size, replace=replace)
        return (
            self._states[indices].copy(),
            self._actions[indices].copy(),
            self._rewards[indices].copy(),
            self._next_states[indices].copy(),
            self._dones[indices].copy(),
        )

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    @property
    def nbytes(self) -> int:
        """Memory footprint of the pre-allocated storage."""
        return (self._states.nbytes + self._actions.nbytes + self._rewards.nbytes
                + self._next_states.nbytes + self._dones.nbytes)

    def clear(self) -> None:
        self._cursor = 0
        self._size = 0
