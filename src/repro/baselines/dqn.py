"""The conventional DQN baseline (Section 2.4 / design 6 of Section 4.1).

A three-layer fully-connected network maps the state to one Q-value per
action.  Training uses:

* experience replay (uniform sampling from a large circular buffer),
* a fixed target network theta_2 synchronised with theta_1 every
  ``UPDATE_STEP`` episodes,
* the Huber loss (Equations 14–15) on the TD error,
* the Adam optimizer with learning rate 0.01,
* epsilon-greedy exploration with the same "greedy with probability
  epsilon_1 = 0.7" convention as the proposed designs, so the comparison in
  Figures 4 and 5 isolates the learning algorithm rather than the exploration
  schedule.

Operation labels follow Figure 5: ``predict_1`` (single-state forward passes
for action selection), ``predict_32`` (minibatch forward passes during
training) and ``train_DQN`` (backward pass + optimizer step).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.replay_buffer import ReplayBuffer
from repro.core.agents import QLearningAgent
from repro.core.policies import EpsilonGreedyPolicy
from repro.nn.losses import HuberLoss
from repro.nn.network import MLP
from repro.nn.optimizers import Adam
from repro.utils.seeding import np_random
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class DQNConfig:
    """Hyper-parameters of the DQN baseline (defaults follow Section 4.1)."""

    n_states: int
    n_actions: int
    n_hidden: int = 64                 #: width of both hidden layers
    gamma: float = 0.99
    greedy_probability: float = 0.7    #: epsilon_1, same convention as the proposed designs
    learning_rate: float = 0.01        #: Adam learning rate (Section 4.1)
    batch_size: int = 32               #: replay minibatch size (predict_32 in Figure 5)
    replay_capacity: int = 10_000
    min_replay_size: int = 64          #: transitions required before training starts
    target_update_interval: int = 2    #: UPDATE_STEP, in episodes
    train_interval: int = 1            #: environment steps between training steps
    clip_rewards: bool = False         #: DQN handles outliers via the Huber loss instead
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_states <= 0 or self.n_actions <= 0 or self.n_hidden <= 0:
            raise ValueError("n_states, n_actions and n_hidden must be positive")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        check_probability(self.greedy_probability, name="greedy_probability")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size <= 0 or self.replay_capacity <= 0:
            raise ValueError("batch_size and replay_capacity must be positive")
        if self.min_replay_size < self.batch_size:
            raise ValueError("min_replay_size must be at least batch_size")
        if self.target_update_interval <= 0 or self.train_interval <= 0:
            raise ValueError("target_update_interval and train_interval must be positive")


class DQNAgent(QLearningAgent):
    """Deep Q-Network agent on the :mod:`repro.nn` NumPy framework."""

    name = "DQN"

    def __init__(self, config: DQNConfig) -> None:
        super().__init__()
        self.config = config
        self._rng, _ = np_random(config.seed)
        hidden = [config.n_hidden, config.n_hidden]
        self.q_network = MLP(config.n_states, hidden, config.n_actions,
                             hidden_activation="relu", rng=self._rng)
        self.target_network = MLP(config.n_states, hidden, config.n_actions,
                                  hidden_activation="relu", rng=self._rng)
        self.target_network.set_parameters(self.q_network.get_parameters())
        self.optimizer = Adam(learning_rate=config.learning_rate)
        self.loss = HuberLoss(delta=1.0)
        self.replay = ReplayBuffer(config.replay_capacity, config.n_states, rng=self._rng)
        self.policy = EpsilonGreedyPolicy(config.greedy_probability, config.n_actions,
                                          rng=self._rng)
        self.train_steps = 0
        self.weight_resets = 0

    # ------------------------------------------------------------------ acting
    def act(self, state: np.ndarray, *, explore: bool = True) -> int:
        state = np.asarray(state, dtype=float).reshape(1, -1)
        start = time.perf_counter()
        q_values = self.q_network.predict(state)[0]
        self._record("predict_1", time.perf_counter() - start)
        return self.policy.select(q_values, explore=explore)

    # ------------------------------------------------------------------ learning
    def observe(self, state: np.ndarray, action: int, reward: float,
                next_state: np.ndarray, done: bool) -> None:
        self.global_step += 1
        if self.config.clip_rewards:
            reward = float(np.clip(reward, -1.0, 1.0))
        self.replay.add(state, action, reward, next_state, done)
        if (len(self.replay) >= self.config.min_replay_size
                and self.global_step % self.config.train_interval == 0):
            self._train_step()

    def _train_step(self) -> None:
        cfg = self.config
        states, actions, rewards, next_states, dones = self.replay.sample(cfg.batch_size)

        start = time.perf_counter()
        next_q = self.target_network.predict(next_states)
        current_q = self.q_network.predict(states)
        self._record("predict_32", time.perf_counter() - start, count=2)

        targets = current_q.copy()
        bootstrap = rewards + cfg.gamma * (1.0 - dones.astype(float)) * next_q.max(axis=1)
        targets[np.arange(cfg.batch_size), actions] = bootstrap

        start = time.perf_counter()
        self.q_network.train_step(states, targets, self.loss, self.optimizer)
        self._record("train_DQN", time.perf_counter() - start)
        self.train_steps += 1

    def end_episode(self, episode_index: int) -> None:
        super().end_episode(episode_index)
        if self.episodes_completed % self.config.target_update_interval == 0:
            self.target_network.set_parameters(self.q_network.get_parameters())

    # ------------------------------------------------------------------ misc interface parity
    def register_progress(self, solved: bool) -> None:
        """DQN does not use the stall-reset rule; present for interface parity."""

    def reset_weights(self) -> None:
        """Re-initialise both networks and clear the replay buffer."""
        cfg = self.config
        hidden = [cfg.n_hidden, cfg.n_hidden]
        self.q_network = MLP(cfg.n_states, hidden, cfg.n_actions,
                             hidden_activation="relu", rng=self._rng)
        self.target_network = MLP(cfg.n_states, hidden, cfg.n_actions,
                                  hidden_activation="relu", rng=self._rng)
        self.target_network.set_parameters(self.q_network.get_parameters())
        self.optimizer = Adam(learning_rate=cfg.learning_rate)
        self.replay.clear()
        self.global_step = 0
        self.train_steps = 0
        self.weight_resets += 1

    # ------------------------------------------------------------------ diagnostics
    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-values for every action (evaluation helper used by tests/examples)."""
        return self.q_network.predict(np.asarray(state, dtype=float).reshape(1, -1))[0]

    def lipschitz_upper_bound(self) -> float:
        """Product of layer spectral norms — comparable to the OS-ELM bound."""
        return self.q_network.lipschitz_upper_bound()
