"""Launch-time sanity checks for distributed sweeps and serving daemons.

A distributed sweep that fails half-way through binding a port or writing
its first artifact surfaces as a socket traceback from deep inside the
broker threads.  :func:`run_preflight` checks the obvious launch
preconditions *before* any worker is spawned and raises one
:class:`PreflightError` listing every problem with an actionable fix:

* the ``--bind`` address parses, resolves, and its port is free;
* the artifact-store root is creatable and writable;
* the worker count is sane (positive, and not wildly above the machine).

The engine runs this automatically for ``backend="distributed"`` launches
that will actually train something; ``repro run`` turns the error into a
clean exit-code-2 message.  ``repro serve`` reuses the same machinery with
a read-side store check (``readable_store_root``) plus its own
missing-policy problems via ``extra_problems``, so a bad serve invocation
fails with one aggregated, actionable error exactly like a bad sweep
launch.
"""

from __future__ import annotations

import os
import socket
import tempfile
from typing import List, Optional

from repro.distributed.protocol import parse_address

#: Auto-spawned local workers beyond ``cpu_count * OVERSUBSCRIBE_FACTOR``
#: only add scheduler thrash — reject the launch instead of crawling.
OVERSUBSCRIBE_FACTOR = 8


class PreflightError(RuntimeError):
    """One or more launch preconditions failed; ``problems`` has them all."""

    def __init__(self, problems: List[str], *,
                 context: str = "distributed sweep") -> None:
        self.problems = list(problems)
        self.context = context
        lines = "\n".join(f"  - {problem}" for problem in self.problems)
        super().__init__(
            f"{context} preflight failed "
            f"({len(self.problems)} problem{'s' if len(self.problems) != 1 else ''}):\n"
            f"{lines}")


def check_bind_address(bind: str) -> Optional[str]:
    """Problem string if ``bind`` cannot be bound right now, else ``None``."""
    try:
        host, port = parse_address(bind)
    except ValueError as error:
        return f"--bind {bind!r}: {error}"
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        # SO_REUSEADDR to match the broker's own bind exactly: a live
        # listener still fails ("already in use"), but connections left in
        # TIME_WAIT by a crashed broker don't — rebinding the same address
        # right after a crash is the journal-restart path.  Port 0
        # (ephemeral) always binds.
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, port))
    except socket.gaierror as error:
        return (f"--bind {bind!r}: host does not resolve ({error}); "
                f"use an address of this machine, e.g. 127.0.0.1:{port}")
    except OSError as error:
        return (f"--bind {bind!r}: cannot bind ({error}); "
                "is another broker already running there? Pick a free port "
                "or port 0 for an ephemeral one")
    finally:
        probe.close()
    return None


def check_store_root(store_root: str) -> Optional[str]:
    """Problem string if ``store_root`` is not a writable directory."""
    try:
        os.makedirs(store_root, exist_ok=True)
        with tempfile.NamedTemporaryFile(dir=store_root, prefix=".preflight-"):
            pass
    except OSError as error:
        return (f"artifact store {store_root!r} is not writable ({error}); "
                "point --out at a writable directory")
    return None


def check_store_readable(store_root: str) -> Optional[str]:
    """Problem string if ``store_root`` is not a readable directory.

    The read-side counterpart of :func:`check_store_root` for consumers
    (``repro serve``) that must not create or write the store they are
    pointed at — a typo'd ``--store`` should fail the launch, not silently
    serve an empty directory.
    """
    if not os.path.isdir(store_root):
        return (f"artifact store {store_root!r} does not exist; point "
                "--store at a directory written by `repro run --save-policy`")
    if not os.access(store_root, os.R_OK | os.X_OK):
        return (f"artifact store {store_root!r} is not readable; "
                "fix its permissions or point --store elsewhere")
    return None


def check_worker_count(workers: int) -> Optional[str]:
    """Problem string if ``workers`` makes no sense on this machine."""
    if workers < 1:
        return f"--workers must be >= 1, got {workers}"
    cpus = os.cpu_count() or 1
    limit = cpus * OVERSUBSCRIBE_FACTOR
    if workers > limit:
        return (f"--workers {workers} oversubscribes this machine "
                f"({cpus} CPUs; limit {limit}); lower --workers or add "
                "external `repro worker --connect` hosts instead")
    return None


def run_preflight(*, bind: Optional[str] = None,
                  store_root: Optional[str] = None,
                  workers: Optional[int] = None,
                  readable_store_root: Optional[str] = None,
                  extra_problems: Optional[List[str]] = None,
                  context: str = "distributed sweep") -> None:
    """Run every applicable check; raise :class:`PreflightError` on failure.

    ``readable_store_root`` runs the read-side store check (serving
    launches), ``extra_problems`` lets callers fold domain-specific
    findings (e.g. "no trained policy for design X") into the one
    aggregated error, and ``context`` labels whose launch failed.
    """
    problems = list(extra_problems) if extra_problems else []
    if bind is not None:
        problem = check_bind_address(bind)
        if problem:
            problems.append(problem)
    if store_root is not None:
        problem = check_store_root(store_root)
        if problem:
            problems.append(problem)
    if readable_store_root is not None:
        problem = check_store_readable(readable_store_root)
        if problem:
            problems.append(problem)
    if workers is not None:
        problem = check_worker_count(workers)
        if problem:
            problems.append(problem)
    if problems:
        raise PreflightError(problems, context=context)


__all__ = ["OVERSUBSCRIBE_FACTOR", "PreflightError", "check_bind_address",
           "check_store_readable", "check_store_root", "check_worker_count",
           "run_preflight"]
