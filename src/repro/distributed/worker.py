"""The worker side of the distributed sweep backend.

``run_worker`` is what ``python -m repro worker --connect HOST:PORT``
executes: connect to a :class:`~repro.distributed.broker.SweepBroker`, pull
:class:`~repro.parallel.sweep.SweepTask`s one at a time, run each through
the *exact* serial trainer code path
(:func:`repro.parallel.sweep._run_sweep_task` -> ``train_agent``), and
stream the :class:`~repro.rl.recording.TrainingResult` back.  Because the
computation per task is identical to the serial backend, a distributed
sweep replays a serial sweep bit-for-bit on fixed seeds — the worker adds
transport, never arithmetic.

While a trial is training, a daemon thread sends ``HEARTBEAT`` frames so
the broker keeps the lease alive through arbitrarily long trials; if this
process dies instead, the dropped connection (or, for a hang, the lease
timeout) makes the broker requeue the task for another worker.

Workers may attach their own :class:`~repro.api.store.ArtifactStore`
(``repro worker --store DIR``).  A store-equipped worker answers tasks it
has already trained from cache and checkpoints fresh results locally, so a
worker fleet sharing a filesystem converges even across broker restarts.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import telemetry
from repro.distributed import protocol
from repro.parallel.sweep import SweepTask, _run_sweep_task
from repro.training.records import TrainingResult
from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.distributed.worker")

#: ``backend_used`` recorded for trials executed by the worker fleet.
DISTRIBUTED_BACKEND = "distributed"

#: Max lease batch this worker advertises in every ``GET`` payload.  The
#: broker caps batches at min(its lease_batch, this) per worker, so mixed
#: fleets are safe: pre-1.4 workers send ``None`` and keep getting classic
#: single-``TASK`` frames even from a batching broker.
LEASE_CAPACITY = 1024


@dataclass(frozen=True)
class WorkerOptions:
    """Knobs of one worker loop (all optional; defaults suit the CLI)."""

    worker_id: Optional[str] = None      #: default: ``<hostname>-<pid>-<uuid4[:8]>``
    store_root: Optional[str] = None     #: local artifact cache (resume + checkpoint)
    heartbeat_interval: float = 2.0      #: seconds between keep-alive frames mid-trial
    max_tasks: Optional[int] = None      #: stop after N trials (tests/failure injection)
    connect_timeout: float = 10.0        #: seconds to wait for the broker socket


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def execute_task(task: SweepTask, store=None) -> Tuple[TrainingResult, bool]:
    """Run one task through the serial trainer; ``(result, was_cached)``.

    With a store attached the trial is answered from cache when present and
    checkpointed into the store when freshly trained.
    """
    if store is not None:
        cached = store.load_trial(task)
        if cached is not None:
            return cached[0], True
    result = _run_sweep_task(task)
    if store is not None:
        store.save_trial(task, result, backend_used=DISTRIBUTED_BACKEND)
    return result, False


def run_worker(host: str, port: int,
               options: WorkerOptions = WorkerOptions()) -> int:
    """Serve one broker until it says ``SHUTDOWN``; returns tasks completed."""
    from repro.api.store import ArtifactStore   # deferred: avoids an import cycle

    worker_id = options.worker_id or default_worker_id()
    store = (ArtifactStore(options.store_root)
             if options.store_root is not None else None)
    sock = socket.create_connection((host, port), timeout=options.connect_timeout)
    # Trials can take arbitrarily long between frames on the *read* side too
    # (the broker only answers when asked); clear the connect timeout.
    sock.settimeout(None)
    send_lock = threading.Lock()

    def send(kind: str, payload=None) -> None:
        with send_lock:
            protocol.send_message(sock, kind, payload)

    completed = 0
    try:
        send(protocol.HELLO, worker_id)
        kind, info = protocol.recv_message(sock)
        if kind != protocol.WELCOME:
            raise protocol.ProtocolError(f"expected WELCOME, got {kind!r}")
        _LOGGER.info("worker registered", worker=worker_id,
                     tasks=info.get("tasks"))
        while options.max_tasks is None or completed < options.max_tasks:
            try:
                send(protocol.GET, LEASE_CAPACITY)
                kind, payload = protocol.recv_message(sock)
            except (ConnectionError, OSError):
                # The broker is gone — sweep finished (it tears the port
                # down as soon as the grid drains) or it died; either way
                # the worker's job here is over.
                _LOGGER.info("broker connection closed", worker=worker_id)
                break
            if kind == protocol.SHUTDOWN:
                break
            if kind == protocol.WAIT:
                telemetry.count("distributed.worker.wait_frames")
                time.sleep(float(payload))
                continue
            if kind == protocol.TASK:
                batch = [payload]
            elif kind == protocol.TASKS:
                # lease_batch > 1 broker: up to k independent leases per
                # request; executed sequentially, one RESULT/ACK pair each,
                # so per-task requeue/dedup semantics are unchanged.
                batch = list(payload)
            else:
                raise protocol.ProtocolError(f"expected TASK/TASKS/WAIT/SHUTDOWN, "
                                             f"got {kind!r}")
            broker_lost = False
            for index, task in batch:
                result, was_cached = _execute_with_heartbeat(
                    task, store, send, options.heartbeat_interval)
                try:
                    send(protocol.RESULT, (index, result, DISTRIBUTED_BACKEND))
                    kind, fresh = protocol.recv_message(sock)
                except (ConnectionError, OSError):
                    # Result may or may not have landed; the broker requeues
                    # the lease if it didn't, and dedups the delivery if it
                    # did.  Remaining leases of the batch get requeued too.
                    _LOGGER.warning("broker lost mid-result", worker=worker_id,
                                    task=index)
                    broker_lost = True
                    break
                if kind != protocol.ACK:
                    raise protocol.ProtocolError(f"expected ACK, got {kind!r}")
                completed += 1
                telemetry.count("distributed.worker.tasks_completed")
                if was_cached:
                    telemetry.count("distributed.worker.cache_hits")
                if not fresh:
                    telemetry.count("distributed.worker.duplicate_acks")
                _LOGGER.info("task done", worker=worker_id, task=index,
                             cached=was_cached, accepted=fresh)
            if broker_lost:
                break
    finally:
        sock.close()
    _LOGGER.info("worker exiting", worker=worker_id, completed=completed)
    return completed


def _execute_with_heartbeat(task: SweepTask, store, send,
                            interval: float) -> Tuple[TrainingResult, bool]:
    """Train one task while a daemon thread keeps the broker lease alive."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval):
            try:
                send(protocol.HEARTBEAT)
            except OSError:       # broker went away; the main loop will notice
                return

    thread = threading.Thread(target=beat, name="worker-heartbeat", daemon=True)
    thread.start()
    try:
        with telemetry.span("worker.task"):
            return execute_task(task, store)
    finally:
        stop.set()
        thread.join(timeout=1.0)


__all__ = ["DISTRIBUTED_BACKEND", "LEASE_CAPACITY", "WorkerOptions",
           "default_worker_id", "execute_task", "run_worker"]
