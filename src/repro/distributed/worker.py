"""The worker side of the distributed sweep backend.

``run_worker`` is what ``python -m repro worker --connect HOST:PORT``
executes: connect to a :class:`~repro.distributed.broker.SweepBroker`, pull
:class:`~repro.parallel.sweep.SweepTask`s one at a time, run each through
the *exact* serial trainer code path
(:func:`repro.parallel.sweep._run_sweep_task` -> ``train_agent``), and
stream the :class:`~repro.rl.recording.TrainingResult` back.  Because the
computation per task is identical to the serial backend, a distributed
sweep replays a serial sweep bit-for-bit on fixed seeds — the worker adds
transport, never arithmetic.

While a trial is training, a daemon thread sends ``HEARTBEAT`` frames so
the broker keeps the lease alive through arbitrarily long trials; if this
process dies instead, the dropped connection (or, for a hang, the lease
timeout) makes the broker requeue the task for another worker.

Graceful retirement (1.7+): the worker installs SIGTERM/SIGINT handlers
(main thread only) that request a *drain* instead of killing the process —
the in-flight lease batch finishes, every result is delivered and acked,
the broker is told ``DRAIN`` (when it negotiated the capability), and only
then does the loop exit.  A second signal skips the grace and dies
immediately (the broker's lease requeue covers the abandoned task).  The
broker can also retire the worker from its side: a ``DRAIN`` reply to
``GET`` — negotiated through the ``WELCOME`` capability dict, so pre-1.7
brokers never send one and pre-1.7 workers never see one — makes the loop
exit at the same clean batch boundary.  Either way, retiring a worker
loses no leases: this is the actuation primitive of
:class:`repro.fleet.FleetAutoscaler`.

Reconnect (1.8+): with ``WorkerOptions(reconnect=RetryPolicy(...))`` a
lost broker connection no longer ends the worker — it backs off on the
policy's deterministic schedule, reconnects, re-``HELLO``\ s under the
*same* worker id (so broker accounting reconciles the gap as a
reconnection, not a new worker), redelivers any result it computed during
the outage (the broker's dedup absorbs the copy if the original landed),
and resumes pulling tasks.  A result lost mid-``RESULT`` is therefore
never lost twice: either the broker journaled/acked it, or the requeued
lease is retrained — both converge on the same bits.  Without a policy
(the default, and what the coordinator's auto-spawned fleets use) the
pre-1.8 behaviour is unchanged: broker gone means the worker's job is
done.

Workers may attach their own :class:`~repro.api.store.ArtifactStore`
(``repro worker --store DIR``).  A store-equipped worker answers tasks it
has already trained from cache and checkpoints fresh results locally, so a
worker fleet sharing a filesystem converges even across broker restarts.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro import telemetry
from repro.distributed import protocol
from repro.parallel.sweep import SweepTask, _run_sweep_task
from repro.training.records import TrainingResult
from repro.utils.logging import get_logger
from repro.utils.retry import RetryPolicy

_LOGGER = get_logger("repro.distributed.worker")

#: ``backend_used`` recorded for trials executed by the worker fleet.
DISTRIBUTED_BACKEND = "distributed"

#: Max lease batch this worker advertises in every ``GET`` payload.  The
#: broker caps batches at min(its lease_batch, this) per worker, so mixed
#: fleets are safe: pre-1.4 workers send ``None`` and keep getting classic
#: single-``TASK`` frames even from a batching broker.
LEASE_CAPACITY = 1024


@dataclass(frozen=True)
class WorkerOptions:
    """Knobs of one worker loop (all optional; defaults suit the CLI)."""

    worker_id: Optional[str] = None      #: default: ``<hostname>-<pid>-<uuid4[:8]>``
    store_root: Optional[str] = None     #: local artifact cache (resume + checkpoint)
    heartbeat_interval: float = 2.0      #: seconds between keep-alive frames mid-trial
    max_tasks: Optional[int] = None      #: stop after N trials (tests/failure injection)
    connect_timeout: float = 10.0        #: seconds to wait for the broker socket
    handle_signals: bool = True          #: SIGTERM/SIGINT -> graceful drain (main thread only)
    drain_event: Optional[threading.Event] = field(default=None, compare=False)
    """Optional externally-owned drain trigger (tests drive in-thread workers
    with it; the CLI leaves it ``None`` and relies on the signal handlers)."""
    reconnect: Optional[RetryPolicy] = None
    """Survive broker outages: back off on this policy's schedule and
    re-``HELLO`` under the same worker id instead of exiting.  Each outage
    gets a fresh policy run (the attempt cap / deadline bounds *one*
    outage, not the worker's lifetime); a policy exhausted mid-outage
    raises :class:`~repro.utils.retry.RetryError`.  ``None`` keeps the
    legacy exit-on-disconnect behaviour."""
    idle_timeout: Optional[float] = 60.0
    """Seconds to wait for any single broker reply before declaring the
    connection dead (half-open TCP to a SIGKILLed broker otherwise hangs
    the worker forever).  Generous on purpose: the broker answers every
    frame promptly — only trial *training* takes long, and the worker
    never blocks on the socket during training.  ``None`` restores the
    pre-1.8 unbounded wait."""
    connect_factory: Optional[Callable[[str, int, Optional[float]], socket.socket]] = (
        field(default=None, compare=False))
    """Socket factory ``(host, port, timeout) -> socket`` replacing
    ``socket.create_connection`` — the fault-injection seam
    (:meth:`repro.chaos.FaultPlan.connect` plugs in here)."""


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def _install_drain_handlers(drain: threading.Event,
                            worker_id: str) -> List[Tuple[int, object]]:
    """SIGTERM/SIGINT -> set ``drain``; a second signal dies immediately.

    Signal handlers can only live in the main thread — from anywhere else
    (tests running ``run_worker`` in a thread) this is a no-op.  Returns the
    ``(signum, previous_handler)`` pairs so the caller can restore them.
    """
    if threading.current_thread() is not threading.main_thread():
        return []

    def handler(signum, frame):
        if drain.is_set():
            # Second signal: the operator means it.  Die now; the broker's
            # lease requeue covers whatever was in flight.
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        drain.set()
        _LOGGER.info("signal received; draining", worker=worker_id,
                     signum=signum)

    previous: List[Tuple[int, object]] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous.append((signum, signal.signal(signum, handler)))
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            continue
    return previous


def execute_task(task: SweepTask, store=None) -> Tuple[TrainingResult, bool]:
    """Run one task through the serial trainer; ``(result, was_cached)``.

    With a store attached the trial is answered from cache when present and
    checkpointed into the store when freshly trained.
    """
    if store is not None:
        cached = store.load_trial(task)
        if cached is not None:
            return cached[0], True
    result = _run_sweep_task(task)
    if store is not None:
        store.save_trial(task, result, backend_used=DISTRIBUTED_BACKEND)
    return result, False


class _WorkerState:
    """What survives across one worker's broker connections."""

    __slots__ = ("completed", "undelivered", "reconnects")

    def __init__(self) -> None:
        self.completed = 0
        #: Results computed but not yet acked when a connection died:
        #: ``(task index, result, backend)``.  Flushed first thing after
        #: every reconnect; the broker's dedup absorbs any copy whose
        #: original RESULT actually landed before the cut.
        self.undelivered: List[Tuple[int, TrainingResult, str]] = []
        self.reconnects = 0


def run_worker(host: str, port: int,
               options: WorkerOptions = WorkerOptions()) -> int:
    """Serve one broker until ``SHUTDOWN``/``DRAIN``; returns tasks completed.

    With ``options.reconnect`` set, a lost connection (including a failed
    initial connect) is retried on the policy's backoff schedule instead of
    ending the worker; see the module docstring for the redelivery
    semantics.  An exhausted policy raises
    :class:`~repro.utils.retry.RetryError`.
    """
    worker_id = options.worker_id or default_worker_id()
    drain = options.drain_event if options.drain_event is not None else threading.Event()
    restore = (_install_drain_handlers(drain, worker_id)
               if options.handle_signals else [])

    def connect() -> socket.socket:
        if options.connect_factory is not None:
            return options.connect_factory(host, port, options.connect_timeout)
        return socket.create_connection((host, port),
                                        timeout=options.connect_timeout)

    def on_retry(attempt: int, delay: float, error: BaseException) -> None:
        _LOGGER.warning("broker unreachable; backing off", worker=worker_id,
                        attempt=attempt, delay=round(delay, 3), error=str(error))

    state = _WorkerState()
    store = None
    if options.store_root is not None:
        from repro.api.store import ArtifactStore   # deferred: avoids an import cycle

        store = ArtifactStore(options.store_root)
    sessions = 0
    clock = None      # live only while one outage is being retried
    try:
        while not drain.is_set():
            try:
                sock = connect()
            except (ConnectionError, OSError) as error:
                if options.reconnect is None:
                    raise
                if clock is None:
                    clock = options.reconnect.clock()
                clock.failed(error, on_retry=on_retry)   # sleeps or raises
                continue
            outcome = _serve_connection(sock, worker_id, store, drain,
                                        options, state)
            if outcome.handshook:
                sessions += 1
                if sessions > 1:
                    state.reconnects += 1
                    telemetry.count("worker.reconnects")
                    _LOGGER.info("worker reconnected", worker=worker_id,
                                 session=sessions)
                clock = None    # productive session: next outage starts fresh
            if outcome.kind != "lost":
                break
            if options.reconnect is None:
                # Pre-1.8 behaviour: the broker is gone — sweep finished (it
                # tears the port down as soon as the grid drains) or it
                # died; either way the worker's job here is over.
                _LOGGER.info("broker connection closed", worker=worker_id)
                break
            if not outcome.handshook:
                # Connected but died before WELCOME: burns retry budget like
                # a failed connect, or a flapping broker would spin us hot.
                if clock is None:
                    clock = options.reconnect.clock()
                clock.failed(outcome.error, on_retry=on_retry)
            _LOGGER.warning("broker connection lost; reconnecting",
                            worker=worker_id,
                            undelivered=len(state.undelivered))
    finally:
        for signum, previous in restore:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError, TypeError):  # pragma: no cover
                pass
    _LOGGER.info("worker exiting", worker=worker_id,
                 completed=state.completed, reconnects=state.reconnects)
    return state.completed


class _ConnectionOutcome:
    """Why one broker connection ended."""

    __slots__ = ("kind", "handshook", "error")

    def __init__(self, kind: str, handshook: bool,
                 error: Optional[BaseException] = None) -> None:
        self.kind = kind            # "lost" | "shutdown" | "drain" | "max_tasks"
        self.handshook = handshook  # WELCOME received on this connection
        self.error = error


def _serve_connection(sock: socket.socket, worker_id: str, store,
                      drain: threading.Event, options: WorkerOptions,
                      state: _WorkerState) -> _ConnectionOutcome:
    """One connection's HELLO -> GET/RESULT loop; never raises transport errors."""
    send_lock = threading.Lock()

    def send(kind: str, payload=None) -> None:
        with send_lock:
            protocol.send_message(sock, kind, payload)

    def announce_drain(negotiated: bool) -> None:
        # Tell a drain-capable broker this disconnect is deliberate — it
        # retires the worker as a *graceful* drain instead of a death.  A
        # pre-1.7 broker never learns, which is fine: all leases were
        # delivered, so the disconnect requeues nothing either way.
        telemetry.count("distributed.worker.drains")
        if not negotiated:
            return
        try:
            send(protocol.DRAIN)
        except (ConnectionError, OSError):
            pass

    def deliver(index: int, result: TrainingResult, backend: str) -> bool:
        """RESULT -> ACK for one trial; returns the broker's ``fresh`` flag."""
        send(protocol.RESULT, (index, result, backend))
        kind, fresh = protocol.recv_message(sock)
        if kind != protocol.ACK:
            raise protocol.ProtocolError(f"expected ACK, got {kind!r}")
        state.completed += 1
        telemetry.count("distributed.worker.tasks_completed")
        if not fresh:
            telemetry.count("distributed.worker.duplicate_acks")
        return bool(fresh)

    try:
        # The broker answers every frame promptly (training happens on our
        # side, between frames), so each reply wait is bounded: a half-open
        # connection to a dead broker times out into the reconnect path
        # instead of hanging the worker forever.
        sock.settimeout(options.idle_timeout)
        try:
            send(protocol.HELLO, worker_id)
            kind, info = protocol.recv_message(sock)
        except protocol.ProtocolError:
            # A *violation* (malformed/oversized frame), not an outage:
            # retrying a broker that speaks garbage would spin forever.
            raise
        except (ConnectionError, OSError) as error:
            return _ConnectionOutcome("lost", False, error)
        if kind != protocol.WELCOME:
            raise protocol.ProtocolError(f"expected WELCOME, got {kind!r}")
        # 1.7+ brokers advertise "drain" in WELCOME; only then may the GET
        # payload be upgraded to a capability dict (an old broker would
        # misread the dict, so the flag gates the whole exchange).
        drain_negotiated = bool(isinstance(info, dict) and info.get("drain"))
        get_payload = ({"capacity": LEASE_CAPACITY, "drain": True}
                       if drain_negotiated else LEASE_CAPACITY)
        _LOGGER.info("worker registered", worker=worker_id,
                     tasks=info.get("tasks"), drain=drain_negotiated)
        # Flush results stranded by a previous outage before asking for new
        # work — the broker requeued those leases when the old connection
        # dropped, so each redelivery is acked fresh (it beat the requeued
        # copy) or as a duplicate (someone retrained it first); both bits
        # are identical, so either answer is fine.
        while state.undelivered:
            index, result, backend = state.undelivered[0]
            try:
                deliver(index, result, backend)
            except protocol.ProtocolError:
                raise
            except (ConnectionError, OSError) as error:
                return _ConnectionOutcome("lost", True, error)
            state.undelivered.pop(0)
            telemetry.count("distributed.worker.redelivered_results")
            _LOGGER.info("stranded result redelivered", worker=worker_id,
                         task=index)
        while options.max_tasks is None or state.completed < options.max_tasks:
            if drain.is_set():
                _LOGGER.info("drain requested; exiting cleanly",
                             worker=worker_id, completed=state.completed)
                announce_drain(drain_negotiated)
                return _ConnectionOutcome("drain", True)
            try:
                send(protocol.GET, get_payload)
                kind, payload = protocol.recv_message(sock)
            except protocol.ProtocolError:
                raise
            except (ConnectionError, OSError) as error:
                return _ConnectionOutcome("lost", True, error)
            if kind == protocol.SHUTDOWN:
                return _ConnectionOutcome("shutdown", True)
            if kind == protocol.DRAIN:
                # The broker retired this worker (fleet scale-down).  No
                # lease is held at this point — GET only goes out between
                # batches — so exiting here abandons nothing.
                telemetry.count("distributed.worker.drains")
                _LOGGER.info("drained by broker", worker=worker_id,
                             completed=state.completed)
                return _ConnectionOutcome("drain", True)
            if kind == protocol.WAIT:
                telemetry.count("distributed.worker.wait_frames")
                time.sleep(float(payload))
                continue
            if kind == protocol.TASK:
                batch = [payload]
            elif kind == protocol.TASKS:
                # lease_batch > 1 broker: up to k independent leases per
                # request; executed sequentially, one RESULT/ACK pair each,
                # so per-task requeue/dedup semantics are unchanged.
                batch = list(payload)
            else:
                raise protocol.ProtocolError(f"expected TASK/TASKS/WAIT/SHUTDOWN, "
                                             f"got {kind!r}")
            for index, task in batch:
                result, was_cached = _execute_with_heartbeat(
                    task, store, send, options.heartbeat_interval)
                try:
                    fresh = deliver(index, result, DISTRIBUTED_BACKEND)
                except protocol.ProtocolError:
                    raise
                except (ConnectionError, OSError) as error:
                    # Result may or may not have landed; the broker requeues
                    # the lease if it didn't, and dedups the delivery if it
                    # did.  Stash it for redelivery after a reconnect; the
                    # rest of the batch is abandoned (the broker requeued
                    # those leases the moment this connection dropped).
                    _LOGGER.warning("broker lost mid-result", worker=worker_id,
                                    task=index)
                    state.undelivered.append((index, result,
                                              DISTRIBUTED_BACKEND))
                    return _ConnectionOutcome("lost", True, error)
                if was_cached:
                    telemetry.count("distributed.worker.cache_hits")
                _LOGGER.info("task done", worker=worker_id, task=index,
                             cached=was_cached, accepted=fresh)
            # A signal that landed mid-batch drains at the *batch* boundary:
            # every lease the worker held has now been delivered and acked,
            # so the drain requeues nothing (the loop top exits next pass).
        return _ConnectionOutcome("max_tasks", True)
    finally:
        sock.close()


def _execute_with_heartbeat(task: SweepTask, store, send,
                            interval: float) -> Tuple[TrainingResult, bool]:
    """Train one task while a daemon thread keeps the broker lease alive."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval):
            try:
                send(protocol.HEARTBEAT)
            except OSError:       # broker went away; the main loop will notice
                return

    thread = threading.Thread(target=beat, name="worker-heartbeat", daemon=True)
    thread.start()
    try:
        with telemetry.span("worker.task"):
            return execute_task(task, store)
    finally:
        stop.set()
        thread.join(timeout=1.0)


__all__ = ["DISTRIBUTED_BACKEND", "LEASE_CAPACITY", "WorkerOptions",
           "default_worker_id", "execute_task", "run_worker"]
