"""Front door of the distributed backend: broker + local worker fleet.

:func:`run_distributed_sweep` is what ``SweepRunner(backend="distributed")``
calls.  It starts a :class:`~repro.distributed.broker.SweepBroker` in the
calling process, optionally auto-spawns ``n_workers`` local worker
processes pointed at it (the ``repro run --backend distributed --workers N``
path — no address juggling needed for single-host use), waits for the grid
to drain, and returns results in task order.  Passing ``bind="HOST:PORT"``
instead publishes the broker on a routable interface for external
``python -m repro worker --connect`` fleets; both kinds of worker can serve
the same broker at once.

Fault behaviour: a worker that dies mid-trial is detected by its dropped
connection (or lease timeout for hangs) and its tasks are requeued — the
sweep converges as long as at least one worker remains.  If *every*
auto-spawned worker is dead and no external worker is connected, the
coordinator raises instead of waiting forever.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.distributed.broker import SweepBroker
from repro.distributed.protocol import parse_address
from repro.distributed.worker import WorkerOptions, run_worker
from repro.parallel.pool import default_max_workers
from repro.parallel.sweep import SweepTask
from repro.training.records import TrainingResult
from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.distributed.coordinator")

#: Default broker-side lease timeout for locally spawned fleets.  Local
#: workers heartbeat every ``WorkerOptions.heartbeat_interval`` (2 s), so
#: this tolerates several missed beats before declaring a worker dead.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


def _local_worker_main(host: str, port: int, worker_id: str,
                       heartbeat_interval: float) -> None:
    """Module-level target so worker processes start under fork *and* spawn."""
    run_worker(host, port, WorkerOptions(worker_id=worker_id,
                                         heartbeat_interval=heartbeat_interval))


def spawn_local_workers(host: str, port: int, n_workers: int, *,
                        heartbeat_interval: float = 2.0,
                        context: str = "spawn") -> List[mp.Process]:
    """Start ``n_workers`` daemon worker processes against one broker.

    The default start method is ``spawn``, not the platform default: the
    broker's accept/monitor threads are already running when the fleet
    starts, and forking a multi-threaded process can deadlock the child on
    locks held mid-fork (Python 3.12+ warns about exactly this).  The
    worker target is module-level and its arguments picklable, so spawn
    costs only interpreter start-up.
    """
    ctx = mp.get_context(context)
    processes = []
    for i in range(n_workers):
        process = ctx.Process(
            target=_local_worker_main,
            args=(host, port, f"local-{i}", heartbeat_interval),
            daemon=True, name=f"repro-worker-{i}")
        process.start()
        processes.append(process)
    return processes


def run_distributed_sweep(
        tasks: Sequence[SweepTask], *,
        n_workers: Optional[int] = None,
        bind: Optional[str] = None,
        store=None,
        callback: Optional[Callable[[SweepTask, TrainingResult], None]] = None,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        timeout: Optional[float] = None,
        lease_batch: int = 1,
        autoscale=None,
        on_fleet_report: Optional[Callable[[object], None]] = None,
        journal=None,
) -> List[Tuple[TrainingResult, str]]:
    """Execute ``tasks`` on a worker fleet; ``(result, backend_used)`` per task.

    Parameters
    ----------
    tasks:
        The sweep grid; results come back in this order.  An empty grid
        returns ``[]`` without binding a socket or spawning anything.
    n_workers:
        Local worker processes to auto-spawn.  ``None`` picks one per task
        capped by the CPU count — except when ``bind`` is given, where it
        defaults to 0 (external workers are expected to connect).
    bind:
        ``"HOST:PORT"`` to listen for external ``repro worker`` processes;
        default is loopback on an ephemeral port (auto-spawned fleet only).
    store:
        Artifact store handed to the broker for per-trial checkpointing.
    heartbeat_timeout:
        Broker-side lease timeout (see :class:`SweepBroker`).
    timeout:
        Overall wall-clock bound; ``TimeoutError`` when exceeded.
    lease_batch:
        Tasks the broker leases per worker request (see
        :class:`~repro.distributed.broker.SweepBroker`); default 1.
    autoscale:
        ``True`` or an :class:`~repro.fleet.AutoscaleConfig` to replace the
        fixed ``n_workers`` fleet with a
        :class:`~repro.fleet.FleetAutoscaler`: the fleet starts at the
        config's ``min_workers``, grows toward ``max_workers`` on queue
        backlog and drains idle workers gracefully — results are
        byte-identical to a fixed fleet (and to the serial backend) under
        any scaling schedule.  ``n_workers`` is ignored for local spawning
        (external ``bind`` workers may still connect and are observed, but
        only autoscaler-spawned processes are retired by signal).
    on_fleet_report:
        Callback receiving the final :class:`~repro.fleet.FleetReport`
        after an autoscaled sweep (ignored without ``autoscale``); the
        report's broker counters are authoritative, filled directly from
        the broker after the grid drains.
    journal:
        Path (or :class:`~repro.distributed.journal.SweepJournal`) for the
        broker's crash-safety write-ahead journal; an existing journal is
        replayed so a killed sweep resumes instead of restarting (see
        :class:`SweepBroker`).  Default ``None``: no journaling.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if bind is not None:
        host, port = parse_address(bind)
        if n_workers is None:
            n_workers = 0
    else:
        host, port = "127.0.0.1", 0
        if n_workers is None:
            n_workers = default_max_workers(len(tasks))
        if n_workers <= 0 and not autoscale:
            raise ValueError("n_workers must be positive when no bind address "
                             "is given (nobody could ever serve the queue)")

    broker = SweepBroker(tasks, host=host, port=port, store=store,
                         heartbeat_timeout=heartbeat_timeout, callback=callback,
                         lease_batch=lease_batch, journal=journal)
    broker.start()
    bound_host, bound_port = broker.address
    autoscaler = None
    if autoscale:
        # Deferred import: repro.fleet's supervisor spawns through this
        # module's _local_worker_main, so a top-level import would cycle.
        from repro.fleet import AutoscaleConfig, FleetAutoscaler

        config = (autoscale if isinstance(autoscale, AutoscaleConfig)
                  else AutoscaleConfig())
        autoscaler = FleetAutoscaler(bound_host, bound_port, config=config)
        autoscaler.start()
        workers: List[mp.Process] = []   # the autoscaler owns the fleet
        _LOGGER.info("fleet autoscaling enabled",
                     min_workers=config.min_workers,
                     max_workers=config.max_workers)
    else:
        workers = spawn_local_workers(bound_host, bound_port, n_workers)
    if bind is not None:
        _LOGGER.info("broker accepting external workers",
                     address=f"{bound_host}:{bound_port}",
                     local_workers=n_workers)
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        while not broker.join(timeout=0.2):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"distributed sweep incomplete after {timeout}s "
                    f"({broker.completed_count}/{len(tasks)} trials)")
            if (workers and not any(w.is_alive() for w in workers)
                    and broker.active_connections == 0):
                # The auto-spawned fleet is gone and nothing external is
                # connected either — with a bind address a live external
                # worker keeps the sweep waiting, a fully dead fleet never.
                # (An autoscaled fleet has no fixed `workers` list; its
                # min_workers floor respawns crashed workers instead.)
                raise RuntimeError(
                    "every local worker exited before the sweep finished "
                    f"({broker.completed_count}/{len(tasks)} trials done) "
                    "and no external worker is connected; see worker stderr "
                    "for the crash")
        return broker.results()
    finally:
        if autoscaler is not None:
            # Stop the control loop and retire leftovers *before* closing
            # the broker, so the shutdown itself drains gracefully; then
            # overwrite the report's counters with broker-side truth.
            autoscaler.stop(retire_fleet=True)
            autoscaler.report.broker_counters = {
                "drains_requested": broker.drains_requested,
                "drains_completed": broker.drains_completed,
                "drain_requeued_tasks": broker.drain_requeued_tasks,
                "requeued_tasks": broker.requeued_tasks,
            }
            _LOGGER.info("fleet report", summary=autoscaler.report.summary())
            if on_fleet_report is not None:
                on_fleet_report(autoscaler.report)
        broker.close()
        for worker in workers:
            worker.join(timeout=2.0)
            if worker.is_alive():   # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=1.0)


__all__ = ["DEFAULT_HEARTBEAT_TIMEOUT", "run_distributed_sweep",
           "spawn_local_workers"]
