"""The sweep broker: a TCP work queue serving ``SweepTask``s to workers.

``SweepBroker`` owns the full task grid of one sweep and hands tasks out to
any number of connected workers (local processes auto-spawned by the
coordinator, or remote ``python -m repro worker --connect`` loops).  Its
job is to make the fleet *safe to lose*:

* **Leases, not handoffs** — a task given to a worker stays on the books
  with a deadline.  Heartbeats (and any other frame from that worker)
  extend the deadline; a worker that dies mid-trial (connection drop) or
  silently hangs (deadline expiry) gets its leased tasks requeued for the
  next ``GET``, so a killed worker costs wall time, never results.
* **Exactly-once results** — the first ``RESULT`` frame for a task index
  wins; late duplicates (a requeued task finishing twice, a retrying
  worker) are acknowledged but dropped, and counted in
  :attr:`SweepBroker.duplicate_results` so tests can assert the dedup
  actually happened.
* **Per-trial checkpointing** — with an :class:`~repro.api.store.ArtifactStore`
  attached, every result is persisted the moment it arrives, not when the
  sweep ends.  An interrupted paper-scale sweep therefore resumes from its
  last completed trial on the next run (the engine's cache pass skips
  stored trials before they ever reach the broker).

Determinism: the broker never reorders computation — each task is executed
by exactly one ``train_agent`` call inside some worker, identical to the
serial backend's loop — so distributed results replay serial results
bit-for-bit on fixed seeds regardless of which worker ran what, in what
order, or how many times a lease bounced.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import telemetry
from repro.distributed import protocol
from repro.distributed.journal import SweepJournal, task_journal_key
from repro.parallel.sweep import SweepTask
from repro.training.records import TrainingResult
from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.distributed.broker")

#: Seconds a worker is told to sleep when every remaining task is leased out.
WAIT_HINT_SECONDS = 0.05


class _Lease:
    """One task currently out with a worker.

    ``owner`` is the identity of the holding connection (its ``held`` set),
    so that after an expired lease is re-issued to another worker, frames
    from the original holder — a late result, a disconnect — can be told
    apart from the current holder's and never touch the live lease.
    """

    __slots__ = ("index", "worker_id", "deadline", "owner", "leased_at")

    def __init__(self, index: int, worker_id: str, deadline: float,
                 owner: Set[int], leased_at: float) -> None:
        self.index = index
        self.worker_id = worker_id
        self.deadline = deadline
        self.owner = owner
        self.leased_at = leased_at


class SweepBroker:
    """Serve one sweep's tasks over TCP and collect the results.

    Parameters
    ----------
    tasks:
        The sweep grid, in result order.  An empty grid is legal: the broker
        is born finished and :meth:`join` returns immediately.
    host, port:
        Bind address.  The default binds loopback on an ephemeral port (the
        bound port is available as :attr:`address` after :meth:`start`);
        bind a routable interface only on networks you trust — the wire
        format is pickle (see :mod:`repro.distributed.protocol`).
    store:
        Optional artifact store; results are checkpointed into it as they
        arrive (see the module docstring).
    heartbeat_timeout:
        Seconds without any frame from a worker before its leases are
        requeued.  Workers heartbeat at a fraction of this (the coordinator
        configures both ends consistently).
    callback:
        ``callback(task, result)`` streamed as each *fresh* result lands,
        mirroring :meth:`SweepRunner.run`'s callback contract.
    lease_batch:
        Tasks leased per worker ``GET``.  With k > 1 the broker answers a
        request with one ``TASKS`` frame carrying up to k tasks (each an
        independent lease), so remote workers amortize a connection round
        trip over k trials on paper-scale grids.  The default of 1 keeps
        the classic one-``TASK``-per-request protocol.  Leases, heartbeat
        extension, requeue-on-death and result dedup are per *task* either
        way — a worker dying mid-batch requeues only its unfinished tasks.

        Batching is *negotiated per worker*: a ``GET`` frame's payload
        advertises how many tasks the sender can accept (pre-1.4 workers
        send ``None``), and the broker caps each batch at
        ``min(lease_batch, advertised)`` — so a mixed fleet of old and new
        workers serves one batching broker safely, old workers simply
        receiving classic ``TASK`` frames.
    max_frame_bytes:
        Per-frame size ceiling enforced on every worker frame *before*
        allocation (default: :func:`~repro.distributed.protocol.
        default_max_frame_bytes`).  A peer announcing an oversized frame is
        disconnected with a :class:`ProtocolError` instead of being allowed
        to allocate the broker into the ground.
    journal:
        A :class:`~repro.distributed.journal.SweepJournal` (or a path to
        one) making this broker crash-safe: queue transitions are appended
        and fsync'd (deliveries *before* the ACK leaves), and an existing
        journal is replayed on construction — completed tasks restored as
        done, everything else (including leases in flight at the kill)
        back on the pending queue.  ``None`` (the default) keeps the
        classic in-memory broker, byte-for-byte.
    fault_plan:
        Test/CI hook (:class:`~repro.chaos.FaultPlan`): every accepted
        connection is wrapped so the plan can drop/truncate/delay frames
        on the broker side of the wire.  Never set in production paths.
    """

    def __init__(self, tasks: Sequence[SweepTask], *, host: str = "127.0.0.1",
                 port: int = 0, store: Optional[object] = None,
                 heartbeat_timeout: float = 30.0,
                 callback: Optional[Callable[[SweepTask, TrainingResult], None]] = None,
                 lease_batch: int = 1,
                 max_frame_bytes: Optional[int] = None,
                 journal: Optional[Union[SweepJournal, str, Path]] = None,
                 fault_plan: Optional[object] = None) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if lease_batch < 1:
            raise ValueError("lease_batch must be >= 1")
        self.tasks: List[SweepTask] = list(tasks)
        self.store = store
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.callback = callback
        self.lease_batch = int(lease_batch)
        self.max_frame_bytes = max_frame_bytes
        self._bind_host = host
        self._bind_port = port
        self._fault_plan = fault_plan
        if journal is None or isinstance(journal, SweepJournal):
            self.journal: Optional[SweepJournal] = journal
        else:
            self.journal = SweepJournal(journal)

        self._lock = threading.Lock()
        self._pending: deque = deque(range(len(self.tasks)))
        self._leases: Dict[int, _Lease] = {}
        self._results: Dict[int, Tuple[TrainingResult, str]] = {}
        self._all_done = threading.Event()
        if not self.tasks:
            self._all_done.set()

        #: Observability counters (read under no lock; monotonic, test-facing).
        self.duplicate_results = 0
        self.requeued_tasks = 0
        self.wait_replies = 0
        #: Crash-safety accounting (1.8+): results restored from the journal
        #: at construction, and HELLOs from worker ids the broker already
        #: knew (a worker that reconnected instead of dying).
        self.journal_replayed_results = 0
        self.worker_reconnections = 0
        #: Drain accounting (1.7+): how many workers were marked for drain,
        #: how many closed their connection with no live lease (a *graceful*
        #: drain), and how many tasks had to be requeued from a draining
        #: worker anyway (dying mid-drain) — the elastic-fleet contract is
        #: that this last counter stays 0 under any scaling schedule.
        self.drains_requested = 0
        self.drains_completed = 0
        self.drain_requeued_tasks = 0
        #: Seconds each completed drain took (marked -> clean disconnect).
        self.drain_durations: List[float] = []
        self.workers_seen: Set[str] = set()
        #: Currently connected worker connections (registered or not) — lets
        #: the coordinator distinguish "fleet crashed" from "externals serving".
        self.active_connections = 0
        #: Per-worker liveness/accounting behind the STATS channel:
        #: ``worker_id -> {connected, last_seen (monotonic), completed}``.
        #: Observer connections (``repro fleet status``) never appear here.
        self._workers: Dict[str, Dict[str, object]] = {}
        #: Workers marked for drain: ``worker_id -> monotonic mark time``.
        #: Marked workers get a ``DRAIN`` reply to their next ``GET`` (if
        #: they negotiated the capability) instead of new leases.
        self._draining: Dict[str, float] = {}

        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._closing = threading.Event()

        #: ``task index -> journal key`` (the store's content address);
        #: computed only when journaling, so the journal-less broker never
        #: pays for key derivation.
        self._journal_keys: List[str] = []
        if self.journal is not None:
            self._restore_from_journal()
            self.journal.open(tasks=len(self.tasks), done=len(self._results))

    def _restore_from_journal(self) -> None:
        """Replay an existing journal into the queue state (pre-``start``).

        Delivered tasks are restored as done (and checkpointed into the
        attached store, so a restart pointed at a *fresh* store still ends
        complete); every other index — pending or leased at the kill —
        lands back on the pending queue, which the fresh ``_pending``
        built above already encodes.  Keys that match no task (a journal
        from another spec or repro version) are ignored: they can stall a
        resume into retraining, never corrupt it.
        """
        replay = self.journal.load()
        self._journal_keys = [task_journal_key(task) for task in self.tasks]
        if replay.delivered:
            index_of = {key: index
                        for index, key in enumerate(self._journal_keys)}
            for key, (result, backend_used) in replay.results.items():
                index = index_of.get(key)
                if index is None or index in self._results:
                    continue
                self._results[index] = (result, backend_used)
                self.journal_replayed_results += 1
                if self.store is not None:
                    self.store.save_trial(self.tasks[index], result,
                                          backend_used=backend_used)
        if self.journal_replayed_results:
            self._pending = deque(index for index in range(len(self.tasks))
                                  if index not in self._results)
            telemetry.count("broker.journal_replayed",
                            self.journal_replayed_results)
            _LOGGER.info("journal replayed", path=str(self.journal.path),
                         restored=self.journal_replayed_results,
                         sessions=replay.sessions,
                         remaining=len(self._pending))
        if self.tasks and len(self._results) == len(self.tasks):
            self._all_done.set()

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "SweepBroker":
        """Bind, listen and start the accept + lease-monitor threads."""
        if self._server is not None:
            raise RuntimeError("broker already started")
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self._bind_host, self._bind_port))
        server.listen()
        server.settimeout(0.2)
        self._server = server
        for target, name in ((self._accept_loop, "broker-accept"),
                             (self._monitor_loop, "broker-monitor")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        _LOGGER.info("broker listening", address="%s:%d" % self.address,
                     tasks=len(self.tasks))
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("broker not started")
        return self._server.getsockname()[:2]

    @property
    def completed_count(self) -> int:
        with self._lock:
            return len(self._results)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every task has a result; True if that happened."""
        return self._all_done.wait(timeout)

    def results(self) -> List[Tuple[TrainingResult, str]]:
        """The collected ``(result, backend_used)`` pairs in task order."""
        with self._lock:
            missing = len(self.tasks) - len(self._results)
            if missing:
                raise RuntimeError(f"sweep incomplete: {missing} of "
                                   f"{len(self.tasks)} tasks have no result")
            return [self._results[index] for index in range(len(self.tasks))]

    def close(self) -> None:
        """Stop accepting, drop connections, release the port (idempotent)."""
        self._closing.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "SweepBroker":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ threads
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                connection, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:  # socket closed under us
                return
            if self._fault_plan is not None:
                connection = self._fault_plan.wrap(connection)
            thread = threading.Thread(target=self._serve_worker,
                                      args=(connection,), daemon=True,
                                      name="broker-conn")
            thread.start()
            self._threads.append(thread)

    def _monitor_loop(self) -> None:
        """Requeue tasks whose lease deadline passed (hung/silent workers)."""
        interval = min(0.2, self.heartbeat_timeout / 4.0)
        while not self._closing.is_set():
            now = time.monotonic()
            with self._lock:
                expired = [lease for lease in self._leases.values()
                           if lease.deadline <= now]
                for lease in expired:
                    del self._leases[lease.index]
                    lease.owner.discard(lease.index)   # holder forfeits it
                    self._pending.append(lease.index)
                    self.requeued_tasks += 1
                    if lease.worker_id in self._draining:
                        self.drain_requeued_tasks += 1
            for lease in expired:
                _LOGGER.warning("lease expired; task requeued",
                                task=lease.index, worker=lease.worker_id)
            if expired and self.journal is not None and self.journal.is_open:
                by_worker: Dict[str, List[str]] = {}
                for lease in expired:
                    by_worker.setdefault(lease.worker_id, []).append(
                        self._journal_keys[lease.index])
                for owner, keys in by_worker.items():
                    self.journal.record_requeue(keys, owner,
                                                reason="lease_expired")
            self._closing.wait(interval)

    # ------------------------------------------------------------------ protocol
    def _serve_worker(self, connection: socket.socket) -> None:
        """Per-connection loop: answer GET/RESULT, absorb heartbeats."""
        worker_id = "<unregistered>"
        is_observer = False
        held: Set[int] = set()          # leases owned by this connection
        # Whether this connection negotiated the DRAIN capability (a 1.7+
        # worker upgrades its GET payload to a dict after seeing our
        # "drain" WELCOME flag); only such connections ever receive a
        # DRAIN frame — a legacy worker marked for drain keeps being
        # served normally and is retired by its supervisor via SIGTERM.
        conn_state = {"drain_capable": False}
        with self._lock:
            self.active_connections += 1
        try:
            with connection:
                while not self._closing.is_set():
                    try:
                        kind, payload = protocol.recv_message(
                            connection, max_frame_bytes=self.max_frame_bytes)
                    except (ConnectionError, OSError):
                        break
                    if kind == protocol.HELLO:
                        worker_id = str(payload)
                        is_observer = worker_id.startswith(
                            protocol.OBSERVER_PREFIX)
                        if not is_observer:
                            reconnected = False
                            with self._lock:
                                known = worker_id in self.workers_seen
                                self.workers_seen.add(worker_id)
                                info = self._workers.get(worker_id)
                                if info is None:
                                    self._workers[worker_id] = {
                                        "connected": True,
                                        "last_seen": time.monotonic(),
                                        "completed": 0,
                                    }
                                else:
                                    # A worker we already know re-HELLOed:
                                    # it reconnected after an outage.  Keep
                                    # its completed count so fleet stats
                                    # reconcile across the gap.
                                    info["connected"] = True
                                    info["last_seen"] = time.monotonic()
                                if known:
                                    self.worker_reconnections += 1
                                    reconnected = True
                            if reconnected:
                                _LOGGER.info("worker reconnected",
                                             worker=worker_id)
                        # "stats"/"drain": True advertise the respective
                        # channels; pre-1.5 workers only read info["tasks"]
                        # and ignore the rest.
                        protocol.send_message(connection, protocol.WELCOME,
                                              {"tasks": len(self.tasks),
                                               "stats": True,
                                               "drain": True})
                        continue
                    if not is_observer and worker_id in self._workers:
                        self._workers[worker_id]["last_seen"] = time.monotonic()
                    if kind == protocol.HEARTBEAT:
                        self._extend_leases(held)
                    elif kind == protocol.GET:
                        self._handle_get(connection, worker_id, held, payload,
                                         conn_state)
                    elif kind == protocol.RESULT:
                        self._handle_result(connection, payload, held, worker_id)
                    elif kind == protocol.STATS:
                        protocol.send_message(connection, protocol.STATS,
                                              self.stats_snapshot())
                    elif kind == protocol.DRAIN:
                        if isinstance(payload, (list, tuple, set)):
                            # Control form (observer/autoscaler): mark the
                            # listed workers for retirement and report back.
                            info = self.mark_draining(list(payload))
                            protocol.send_message(connection, protocol.DRAIN,
                                                  info)
                        else:
                            # A worker announcing a self-initiated drain
                            # (SIGTERM landed): unsolicited, no reply — the
                            # worker may disconnect right after sending it.
                            self.mark_draining([worker_id])
                    else:
                        raise protocol.ProtocolError(
                            f"unexpected frame {kind!r} from worker")
        finally:
            with self._lock:
                self.active_connections -= 1
                info = self._workers.get(worker_id)
                if info is not None:
                    info["connected"] = False
            requeued = self._requeue_held(held, worker_id)
            self._finish_drain(worker_id, requeued)

    def _handle_get(self, connection: socket.socket, worker_id: str,
                    held: Set[int], capacity: object = None,
                    conn_state: Optional[Dict[str, bool]] = None) -> None:
        # `capacity` is the worker's advertised max lease batch.  Pre-1.4
        # workers send GET with a None payload and can only parse TASK
        # frames, so they cap the batch at 1 regardless of lease_batch.
        # 1.7+ workers that saw our "drain" WELCOME flag send a capability
        # dict {"capacity": k, "drain": True} instead of the bare integer.
        if isinstance(capacity, dict):
            if conn_state is not None and capacity.get("drain"):
                conn_state["drain_capable"] = True
            capacity = capacity.get("capacity")
        advertised = capacity if isinstance(capacity, int) and capacity >= 1 else 1
        batch = min(self.lease_batch, advertised)
        drain_capable = bool(conn_state and conn_state.get("drain_capable"))
        leased: List[Tuple[int, SweepTask]] = []
        with self._lock:
            if len(self._results) == len(self.tasks):
                reply = (protocol.SHUTDOWN, None)
            elif drain_capable and worker_id in self._draining:
                # Marked for retirement: no new leases.  The worker delivered
                # every in-flight result before this GET (batch boundary), so
                # it disconnects holding nothing — a graceful drain.
                reply = (protocol.DRAIN, None)
            elif self._pending:
                now = time.monotonic()
                deadline = now + self.heartbeat_timeout
                while self._pending and len(leased) < batch:
                    index = self._pending.popleft()
                    self._leases[index] = _Lease(index, worker_id, deadline,
                                                 held, now)
                    held.add(index)
                    leased.append((index, self.tasks[index]))
                if batch == 1:
                    reply = (protocol.TASK, leased[0])
                else:
                    reply = (protocol.TASKS, leased)
            else:
                reply = (protocol.WAIT, WAIT_HINT_SECONDS)
                self.wait_replies += 1
        if leased and self.journal is not None:
            # Audit, not durability: the fsync happens outside the queue
            # lock so concurrent GETs don't serialize on the disk.
            self.journal.record_lease(
                [self._journal_keys[index] for index, _ in leased], worker_id)
        protocol.send_message(connection, *reply)

    def _handle_result(self, connection: socket.socket, payload, held: Set[int],
                       worker_id: str = "<unregistered>") -> None:
        index, result, backend_used = payload
        fresh = False
        task: Optional[SweepTask] = None
        with self._lock:
            if not (0 <= index < len(self.tasks)):
                raise protocol.ProtocolError(f"result for unknown task {index}")
            lease = self._leases.get(index)
            if lease is not None and lease.owner is held:
                del self._leases[index]       # never someone else's re-issued lease
            held.discard(index)
            if index in self._results:
                self.duplicate_results += 1
            else:
                fresh = True
                self._results[index] = (result, backend_used)
                task = self.tasks[index]
                # The lease may have expired and bounced the index back onto
                # the queue before this (still valid) result arrived; drop
                # the requeued copy so nobody retrains a finished trial.
                try:
                    self._pending.remove(index)
                except ValueError:
                    pass
                info = self._workers.get(worker_id)
                if info is not None:
                    info["completed"] = int(info["completed"]) + 1
                if len(self._results) == len(self.tasks):
                    self._all_done.set()
            self._extend_leases_locked(held)
        if fresh:
            if self.journal is not None:
                # Durability point: the deliver record is fsync'd *before*
                # the ACK below, so any result a worker saw acknowledged is
                # recoverable after a broker SIGKILL.
                self.journal.record_deliver(self._journal_keys[index],
                                            result, backend_used)
            if self.store is not None:
                self.store.save_trial(task, result, backend_used=backend_used)
            if self.callback is not None:
                self.callback(task, result)
            _LOGGER.info("trial complete", task=index,
                         done=f"{self.completed_count}/{len(self.tasks)}")
        protocol.send_message(connection, protocol.ACK, fresh)

    # ------------------------------------------------------------------ drain
    def mark_draining(self, worker_ids: Sequence[str]) -> Dict[str, List[str]]:
        """Mark workers for graceful retirement; returns what happened.

        A marked worker stops receiving leases: its next ``GET`` is answered
        with a ``DRAIN`` frame (if it negotiated the capability) and it
        disconnects once its in-flight results are delivered.  Ids that are
        unknown, already draining, or belong to an already-disconnected
        worker are reported rather than silently dropped, so the autoscaler
        can tell a drain that will happen from one that cannot.
        """
        marked: List[str] = []
        unknown: List[str] = []
        already: List[str] = []
        gone: List[str] = []
        now = time.monotonic()
        with self._lock:
            for worker_id in worker_ids:
                worker_id = str(worker_id)
                info = self._workers.get(worker_id)
                if worker_id in self._draining:
                    already.append(worker_id)
                elif info is None:
                    unknown.append(worker_id)
                elif not info["connected"]:
                    gone.append(worker_id)
                else:
                    self._draining[worker_id] = now
                    self.drains_requested += 1
                    marked.append(worker_id)
        for worker_id in marked:
            _LOGGER.info("worker marked for drain", worker=worker_id)
        if marked and self.journal is not None and self.journal.is_open:
            self.journal.record_drain(marked)
        return {"marked": marked, "already_draining": already,
                "unknown": unknown, "gone": gone}

    def draining_workers(self) -> List[str]:
        """Worker ids currently marked for drain (mark cleared on disconnect)."""
        with self._lock:
            return sorted(self._draining)

    def _finish_drain(self, worker_id: str, requeued: int) -> None:
        """A connection closed: settle its drain mark, if it carried one.

        Zero requeued leases at disconnect means the worker delivered
        everything it held — the drain was graceful and its duration is
        recorded.  Requeued leases mean the draining worker died mid-task;
        those requeues are additionally counted in ``drain_requeued_tasks``
        (the counter the elastic-fleet tests pin to zero).
        """
        with self._lock:
            started = self._draining.pop(worker_id, None)
            if started is None:
                return
            if requeued:
                self.drain_requeued_tasks += requeued
            else:
                self.drains_completed += 1
                self.drain_durations.append(time.monotonic() - started)
        if requeued:
            _LOGGER.warning("draining worker died holding leases",
                            worker=worker_id, requeued=requeued)
        else:
            _LOGGER.info("worker drained gracefully", worker=worker_id)

    # ------------------------------------------------------------------ stats
    def stats_snapshot(self) -> Dict[str, object]:
        """JSON-ready fleet snapshot served on the ``STATS`` channel.

        Task counts are reconciled against the result set so that
        ``queued + leased + done == total`` always holds: during the short
        window where a finished index still sits on the pending queue (late
        result after a lease expiry) or under a re-issued lease (duplicate
        delivery in flight), the completed state wins.
        """
        now = time.monotonic()
        with self._lock:
            done = len(self._results)
            queued = sum(1 for index in self._pending
                         if index not in self._results)
            live_leases = [lease for lease in self._leases.values()
                           if lease.index not in self._results]
            workers: Dict[str, Dict[str, object]] = {}
            for worker_id, info in self._workers.items():
                workers[worker_id] = {
                    "connected": bool(info["connected"]),
                    "draining": worker_id in self._draining,
                    "last_seen_seconds_ago": round(
                        now - float(info["last_seen"]), 3),
                    "completed": int(info["completed"]),
                    "leases": 0,
                    "oldest_lease_age": 0.0,
                }
            for lease in live_leases:
                row = workers.get(lease.worker_id)
                if row is None:
                    continue
                row["leases"] = int(row["leases"]) + 1
                age = round(now - lease.leased_at, 3)
                if age > float(row["oldest_lease_age"]):
                    row["oldest_lease_age"] = age
            snapshot: Dict[str, object] = {
                "tasks": {
                    "total": len(self.tasks),
                    "queued": queued,
                    "leased": len(live_leases),
                    "done": done,
                },
                "counters": {
                    "requeued_tasks": self.requeued_tasks,
                    "duplicate_results": self.duplicate_results,
                    "wait_replies": self.wait_replies,
                    "workers_seen": len(self.workers_seen),
                    "active_connections": self.active_connections,
                    "drains_requested": self.drains_requested,
                    "drains_completed": self.drains_completed,
                    "drain_requeued_tasks": self.drain_requeued_tasks,
                    "journal_replayed": self.journal_replayed_results,
                    "worker_reconnections": self.worker_reconnections,
                },
                "drain_seconds": [round(s, 3) for s in self.drain_durations],
                "workers": workers,
                "lease_batch": self.lease_batch,
                "heartbeat_timeout": self.heartbeat_timeout,
            }
        from repro import __version__

        snapshot["repro_version"] = __version__
        snapshot["transport"] = protocol.transport_counters().snapshot()
        return snapshot

    # ------------------------------------------------------------------ leases
    def _extend_leases(self, held: Set[int]) -> None:
        with self._lock:
            self._extend_leases_locked(held)

    def _extend_leases_locked(self, held: Set[int]) -> None:
        deadline = time.monotonic() + self.heartbeat_timeout
        for index in held:
            lease = self._leases.get(index)
            if lease is not None and lease.owner is held:
                lease.deadline = deadline

    def _requeue_held(self, held: Set[int], worker_id: str) -> int:
        """Connection gone: put its unfinished leases back on the queue.

        Only leases this connection still *owns* are requeued — an index
        whose lease expired and was re-issued to another worker must not be
        yanked from under the new holder, and a completed index must not be
        retrained.  Returns the number of requeued leases so the drain
        accounting can tell a graceful disconnect from a mid-task death.
        """
        with self._lock:
            requeued = []
            for index in held:
                lease = self._leases.get(index)
                if lease is not None and lease.owner is held:
                    del self._leases[index]
                    self._pending.append(index)
                    self.requeued_tasks += 1
                    requeued.append(index)
        for index in requeued:
            _LOGGER.warning("worker disconnected; task requeued",
                            task=index, worker=worker_id)
        if requeued and self.journal is not None and self.journal.is_open:
            self.journal.record_requeue(
                [self._journal_keys[index] for index in requeued],
                worker_id, reason="disconnect")
        return len(requeued)


__all__ = ["SweepBroker", "WAIT_HINT_SECONDS"]
