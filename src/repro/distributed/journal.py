"""Append-only write-ahead journal of broker queue transitions.

The :class:`~repro.distributed.broker.SweepBroker` keeps its queue state —
pending deque, live leases, collected results — in memory, so a killed
broker used to lose every lease even though results were checkpointed.
``SweepBroker(journal=...)`` fixes that: every queue transition (session
open, lease, deliver, requeue, drain mark) is appended to a
:class:`SweepJournal` and **fsync'd before the worker sees an ACK**, so a
broker restarted on the same journal resumes the sweep with completed
tasks done and everything else — including leases that were in flight at
the kill — back on the pending queue.  Workers that reconnect and
redeliver results they computed during the outage are absorbed by the
existing exactly-once dedup.

File format
-----------
One JSON document per line (`jsonl`): human-greppable, trivially
appendable, and a crash mid-write can only ever corrupt the *final* line
(no newline yet), which replay detects and ignores.  Records identify
trials by :func:`repro.api.store.trial_key` — the same content address the
artifact store uses — never by queue index, so a restart whose grid was
already partially cache-resolved (fewer tasks, different indices) still
replays cleanly, and a journal from a *different* spec matches nothing
instead of poisoning the queue.

``deliver`` records embed the pickled :class:`~repro.training.records.
TrainingResult` (base64), making the journal self-contained: replay needs
no artifact store.  The pickle trust model is the same as the wire
protocol's — journals, like brokers, belong on machines you trust.

Record kinds::

    {"op": "open",    "session": n, "tasks": t, "done": d, "time": ...}
    {"op": "lease",   "keys": [k...], "worker": id}
    {"op": "deliver", "key": k, "backend": b, "result": <base64 pickle>}
    {"op": "requeue", "keys": [k...], "worker": id, "reason": ...}
    {"op": "drain",   "workers": [id...]}

Only ``deliver`` records carry state that replay must restore; the others
are the audit trail (and give tests and the chaos harness a deterministic
external view of the queue's history).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Optional, Sequence, Tuple, Union

from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.distributed.journal")

#: Bumped when the record schema changes incompatibly.
JOURNAL_FORMAT_VERSION = 1


class JournalError(RuntimeError):
    """A journal file is corrupt beyond the tolerated truncated tail."""


def task_journal_key(task) -> str:
    """The journal identity of one task: the store's content address.

    Deferred import — :mod:`repro.api.store` imports the sweep machinery,
    so a module-level import here would cycle (same dance as
    :mod:`repro.distributed.worker`).
    """
    from repro.api.store import trial_key

    return trial_key(task)


@dataclass
class JournalReplay:
    """Everything :meth:`SweepJournal.load` recovered from an existing file."""

    #: ``trial_key -> (TrainingResult, backend_used)`` for every delivered task.
    results: Dict[str, Tuple[Any, str]] = field(default_factory=dict)
    #: Broker sessions recorded so far (``open`` records).
    sessions: int = 0
    #: Lease / requeue / drain-mark records seen (audit counters).
    leases: int = 0
    requeues: int = 0
    drains: int = 0
    #: Records parsed in total (excluding a truncated tail).
    records: int = 0
    #: True when the final line was a partial write (broker died mid-append).
    truncated_tail: bool = False

    @property
    def delivered(self) -> int:
        return len(self.results)


class SweepJournal:
    """One append-only journal file, fsync'd per record.

    Thread-safe: broker connection threads append concurrently under one
    internal lock, so records never interleave mid-line and the fsync
    covers exactly the record just written.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = None
        #: Records appended by *this* process (not counting replayed ones).
        self.records_written = 0

    # ------------------------------------------------------------------ replay
    def load(self) -> JournalReplay:
        """Parse the existing journal (if any) into a :class:`JournalReplay`.

        A missing or empty file replays to nothing.  A partial final line —
        the broker died mid-append — is ignored and flagged; a malformed
        line anywhere *else* raises :class:`JournalError`, because that is
        disk corruption, not a crash artifact.
        """
        replay = JournalReplay()
        if not self.path.exists():
            return replay
        raw = self.path.read_bytes()
        if not raw:
            return replay
        lines = raw.split(b"\n")
        # A well-formed journal ends with a newline, leaving one empty tail
        # element; anything else dangling is a mid-append crash artifact.
        tail = lines.pop()
        if tail:
            replay.truncated_tail = True
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise JournalError(
                    f"{self.path}: malformed journal record on line "
                    f"{number}: {error}") from error
            self._apply(record, replay, number)
        if replay.truncated_tail:
            _LOGGER.warning("journal has a truncated final record "
                            "(broker died mid-append); ignored",
                            path=str(self.path))
        return replay

    def _apply(self, record: Dict[str, Any], replay: JournalReplay,
               number: int) -> None:
        op = record.get("op")
        replay.records += 1
        if op == "open":
            replay.sessions += 1
            version = record.get("version", JOURNAL_FORMAT_VERSION)
            if version != JOURNAL_FORMAT_VERSION:
                raise JournalError(
                    f"{self.path}: journal format v{version} is not "
                    f"supported (this build reads v{JOURNAL_FORMAT_VERSION})")
        elif op == "deliver":
            key = record["key"]
            try:
                result = pickle.loads(base64.b64decode(record["result"]))
            except Exception as error:
                raise JournalError(
                    f"{self.path}: undecodable result for task {key} on "
                    f"line {number}: {error}") from error
            # First delivery wins, mirroring the broker's live dedup; a
            # journal can only grow duplicates if two sessions raced, and
            # either copy is the bit-identical same computation anyway.
            replay.results.setdefault(key, (result, record.get("backend",
                                                              "distributed")))
        elif op == "lease":
            replay.leases += len(record.get("keys", ()))
        elif op == "requeue":
            replay.requeues += len(record.get("keys", ()))
        elif op == "drain":
            replay.drains += len(record.get("workers", ()))
        else:
            raise JournalError(
                f"{self.path}: unknown journal op {op!r} on line {number}")

    # ------------------------------------------------------------------ writing
    def open(self, *, tasks: int, done: int) -> None:
        """Open for appending and record the start of a broker session."""
        with self._lock:
            if self._fh is not None:
                raise RuntimeError(f"journal {self.path} already open")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self.append("open", version=JOURNAL_FORMAT_VERSION, tasks=tasks,
                    done=done, time=time.time())

    def close(self) -> None:
        with self._lock:
            if self._fh is None:
                return
            try:
                self._fh.close()
            finally:
                self._fh = None

    @property
    def is_open(self) -> bool:
        return self._fh is not None

    def append(self, op: str, **fields: Any) -> None:
        """Append one record and fsync it to disk before returning.

        The fsync is the whole point of the journal: once this returns,
        the record survives a SIGKILL.  The broker calls this *before*
        ACKing a result, so an acknowledged trial is always recoverable.
        """
        record = {"op": op, **fields}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                raise RuntimeError(
                    f"journal {self.path} is not open for appending")
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.records_written += 1

    # Convenience wrappers so broker call sites read as queue transitions.
    def record_lease(self, keys: Sequence[str], worker_id: str) -> None:
        self.append("lease", keys=list(keys), worker=worker_id)

    def record_deliver(self, key: str, result: Any, backend_used: str) -> None:
        blob = base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")
        self.append("deliver", key=key, backend=backend_used, result=blob)

    def record_requeue(self, keys: Sequence[str], worker_id: str,
                       reason: str) -> None:
        self.append("requeue", keys=list(keys), worker=worker_id,
                    reason=reason)

    def record_drain(self, worker_ids: Sequence[str]) -> None:
        self.append("drain", workers=list(worker_ids))

    # ------------------------------------------------------------------ misc
    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "open" if self.is_open else "closed"
        return f"SweepJournal({str(self.path)!r}, {state})"


def count_deliveries(path: Union[str, Path]) -> int:
    """Cheap poll of how many deliveries a journal holds (chaos harness/CI).

    Counts ``deliver`` lines without unpickling results, tolerating a
    truncated tail — safe to call while a live broker is appending.
    """
    path = Path(path)
    if not path.exists():
        return 0
    count = 0
    for line in path.read_bytes().split(b"\n")[:-1]:
        if b'"op":"deliver"' in line:
            count += 1
    return count


__all__ = ["JOURNAL_FORMAT_VERSION", "JournalError", "JournalReplay",
           "SweepJournal", "count_deliveries", "task_journal_key"]
