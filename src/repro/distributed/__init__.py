"""repro.distributed: multi-host sweep execution (broker + worker fleet).

The distributed backend turns one sweep grid into a TCP work queue:

* :class:`SweepBroker` — serves :class:`~repro.parallel.sweep.SweepTask`s
  with lease/heartbeat fault tolerance, exactly-once result collection and
  per-trial :class:`~repro.api.store.ArtifactStore` checkpointing;
* :func:`run_worker` — the ``python -m repro worker --connect HOST:PORT``
  loop pulling tasks through the serial trainer code path;
* :func:`run_distributed_sweep` — the coordinator behind
  ``SweepRunner(backend="distributed")`` / ``repro run --backend
  distributed --workers N``, auto-spawning a local fleet when no external
  address is involved.

Every trial is executed by exactly one ``train_agent`` call somewhere in
the fleet, so distributed results replay serial results bit-for-bit on
fixed seeds — the backend-equivalence CI job enforces this.
"""

from repro.distributed.broker import SweepBroker
from repro.distributed.coordinator import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    run_distributed_sweep,
    spawn_local_workers,
)
from repro.distributed.journal import (
    JournalError,
    JournalReplay,
    SweepJournal,
    count_deliveries,
    task_journal_key,
)
from repro.distributed.preflight import PreflightError, run_preflight
from repro.distributed.protocol import parse_address, transport_counters
from repro.distributed.worker import (
    DISTRIBUTED_BACKEND,
    WorkerOptions,
    default_worker_id,
    execute_task,
    run_worker,
)

__all__ = [
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DISTRIBUTED_BACKEND",
    "JournalError",
    "JournalReplay",
    "PreflightError",
    "SweepBroker",
    "SweepJournal",
    "WorkerOptions",
    "count_deliveries",
    "default_worker_id",
    "execute_task",
    "parse_address",
    "run_distributed_sweep",
    "run_preflight",
    "run_worker",
    "spawn_local_workers",
    "task_journal_key",
    "transport_counters",
]
