"""Wire protocol of the distributed sweep backend: framed pickle messages.

The broker and its workers exchange Python objects over a TCP stream as
length-prefixed pickle frames — an 8-byte big-endian payload size followed
by the pickled message.  Every message is a ``(kind, payload)`` tuple with
``kind`` one of the module constants below; keeping the frame format this
small means the protocol needs no third-party dependency and any object the
sweep already pickles for the process backend (``SweepTask``,
``TrainingResult``) travels unchanged.

Message flow
------------
The conversation is strictly client-driven: the broker only ever writes in
*response* to a worker frame, so the worker can interleave unsolicited
``HEARTBEAT`` frames (which get no reply) from a background thread without
desynchronizing the request/response pairing.

===================  =======================  ================================
worker sends          broker replies           meaning
===================  =======================  ================================
``(HELLO, worker_id)``  ``(WELCOME, info)``     registration; ``info`` carries
                                                the sweep size
``(GET, capacity)``     ``(TASK, (idx, task))``  a leased task to execute.
                                                 ``capacity`` advertises the
                                                 worker's max lease batch
                                                 (pre-1.4 workers send
                                                 ``None`` = 1; brokers
                                                 ignore unknown payloads)
..                      ``(TASKS, [(idx, task), ...])``  a *batch* of leased
                                                 tasks, at most
                                                 ``min(broker lease_batch,
                                                 worker capacity)`` — sent
                                                 only to workers that
                                                 advertised capacity > 1
..                      ``(WAIT, seconds)``      nothing free right now — every
                                                 remaining task is leased to
                                                 another worker; poll again
..                      ``(SHUTDOWN, None)``     all tasks complete, disconnect
``(RESULT, (idx, result, backend))``  ``(ACK, fresh)``  result received;
                                                 ``fresh`` is False for a
                                                 duplicate delivery
``(HEARTBEAT, None)``   *(no reply)*             lease keep-alive mid-trial
``(STATS, None)``       ``(STATS, snapshot)``    fleet observability snapshot
                                                 (tasks queued/leased/done,
                                                 per-worker liveness, counters)
``(DRAIN, None)``       *(no reply)*             worker announces it is
                                                 draining itself (SIGTERM):
                                                 it will deliver its in-flight
                                                 results and disconnect
..                      ``(DRAIN, None)``        broker's reply to ``GET``
                                                 from a worker marked for
                                                 retirement: deliver nothing
                                                 more, disconnect gracefully
``(DRAIN, [ids])``      ``(DRAIN, info)``        control request (observer/
                                                 autoscaler): mark workers
                                                 for drain; ``info`` lists
                                                 ``marked``/``unknown`` ids
===================  =======================  ================================

``STATS`` is negotiated exactly like lease batching: a 1.5+ broker
advertises ``"stats": True`` in its ``WELCOME`` info, and only clients that
saw the flag send the frame — pre-1.5 workers never request stats and
pre-1.5 brokers never see one, so mixed fleets stay wire-compatible.  The
``repro fleet status`` observer registers with a worker id prefixed
:data:`OBSERVER_PREFIX` so brokers keep it out of the worker accounting.

Drain frames (1.7+)
-------------------
``DRAIN`` is the graceful half of elastic scaling (:mod:`repro.fleet`):
retiring a worker must never lose a lease.  It is double-negotiated
through the existing capability dicts, so every mixed-version pairing
degrades to pre-1.7 behaviour instead of erroring:

* a 1.7+ **broker** advertises ``"drain": True`` in its ``WELCOME`` info
  (alongside ``"stats"``); a pre-1.7 worker reads only ``info["tasks"]``
  and never sees a ``DRAIN`` frame, because...
* ...a 1.7+ **worker** that saw the flag upgrades its ``GET`` payload from
  the bare capacity integer to ``{"capacity": k, "drain": True}``, and the
  broker only ever answers ``DRAIN`` on connections that advertised it.
  A 1.7+ worker on a pre-1.7 broker keeps sending the bare integer (the
  old broker would misread the dict as capacity 1), so the old wire
  protocol is preserved bit-for-bit in every legacy pairing.

The retirement choreography: the autoscaler marks a worker through the
control form ``(DRAIN, [worker_ids])`` on an observer connection; the
broker stops leasing to it and answers its next ``GET`` with
``(DRAIN, None)``; the worker — which by then has delivered every result
of its in-flight lease batch, since ``GET`` only happens at batch
boundaries — disconnects cleanly and exits.  A worker retired by SIGTERM
instead finishes its in-flight batch, delivers the results, announces
``(DRAIN, None)`` and disconnects.  Either way the broker observes a
draining worker close its connection with no live leases: a *graceful*
drain, counted (with its duration) in the ``STATS`` snapshot.

Serving frames (1.6+)
---------------------
The :class:`~repro.serving.PolicyServer` daemon speaks the same framing
with its own kinds, negotiated through ``WELCOME`` info exactly like the
broker (a serving daemon advertises ``"serving": True`` plus its design
list, so a client that connects to a broker — or vice versa — fails with
one clear error instead of a pickle surprise):

=====================  ==========================  =========================
client sends            server replies              meaning
=====================  ==========================  =========================
``(HELLO, client_id)``  ``(WELCOME, info)``         registration; ``info``
                                                    carries designs/limits
``(ACT, (design, state))``  ``(ACTION, action)``    one greedy action for one
                                                    observation (requests are
                                                    micro-batched server-side)
``(SWAP, (design, blob))``  ``(SWAPPED, info)``     hot-swap the design's
                                                    policy to the pickled
                                                    agent in ``blob``
``(STATS, None)``       ``(STATS, snapshot)``       request counters + latency
                                                    histograms (p50/p90/p99)
*anything invalid*      ``(ERROR, reason)``         unknown design, bad state
                                                    shape, undecodable blob...
=====================  ==========================  =========================

Security note: frames are pickles, so the broker must only be bound to
interfaces you trust (the default is loopback).  This mirrors the stdlib
``multiprocessing`` connection model the in-process backends already rely
on.  :func:`recv_message` additionally refuses frames larger than
``max_frame_bytes`` (default :data:`MAX_FRAME_BYTES`, overridable per call
or via ``$REPRO_MAX_FRAME_BYTES``) *before* allocating, so a corrupt or
hostile length header cannot trigger a giant allocation.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
from typing import Any, Dict, Optional, Tuple

#: Message kinds (worker -> broker unless noted).
HELLO = "hello"
GET = "get"
RESULT = "result"
HEARTBEAT = "heartbeat"
#: Bidirectional (1.5+): request payload ``None``, reply payload the snapshot.
STATS = "stats"
#: Bidirectional (1.7+), negotiated via the WELCOME/GET capability dicts:
#: worker -> broker with payload ``None`` announces a self-initiated drain
#: (no reply, like HEARTBEAT); broker -> worker as the reply to a ``GET``
#: from a worker marked for retirement; observer -> broker with a payload
#: list of worker ids marks those workers for drain (replied with a DRAIN
#: info frame).
DRAIN = "drain"
#: Broker -> worker kinds.
WELCOME = "welcome"
TASK = "task"
TASKS = "tasks"          #: k-task lease batch (brokers with lease_batch > 1)
WAIT = "wait"
SHUTDOWN = "shutdown"
ACK = "ack"

#: Serving kinds (PolicyClient <-> PolicyServer, 1.6+).
ACT = "act"              #: client -> server: ``(design, state)``
ACTION = "action"        #: server -> client: the greedy action
SWAP = "swap"            #: client -> server: ``(design, pickled agent blob)``
SWAPPED = "swapped"      #: server -> client: swap acknowledged (+ generation)
ERROR = "error"          #: server -> client: request rejected, payload = reason

#: HELLO ids starting with this mark observer connections (``repro fleet
#: status``): they may request STATS but never lease tasks, and brokers
#: exclude them from ``workers_seen`` and the per-worker liveness table.
OBSERVER_PREFIX = "_observer"

_HEADER = struct.Struct(">Q")

#: Default upper bound on a single frame (1 GiB) — a corrupted or malicious
#: header fails fast instead of attempting a giant allocation.  Network-facing
#: daemons pass a tighter per-call limit; ``$REPRO_MAX_FRAME_BYTES`` overrides
#: the default process-wide.
MAX_FRAME_BYTES = 1 << 30

#: Environment variable overriding the default frame-size ceiling.
MAX_FRAME_ENV_VAR = "REPRO_MAX_FRAME_BYTES"


def default_max_frame_bytes() -> int:
    """The process-wide frame ceiling: ``$REPRO_MAX_FRAME_BYTES`` or 1 GiB."""
    raw = os.environ.get(MAX_FRAME_ENV_VAR)
    if raw is None:
        return MAX_FRAME_BYTES
    try:
        limit = int(raw)
    except ValueError:
        raise ValueError(
            f"${MAX_FRAME_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from None
    if limit <= 0:
        raise ValueError(
            f"${MAX_FRAME_ENV_VAR} must be a positive integer, got {raw!r}")
    return limit


class ProtocolError(ConnectionError):
    """A malformed frame or a violation of the request/response contract."""


class TransportCounters:
    """Frames/bytes moved through :func:`send_message` / :func:`recv_message`.

    One process-wide instance (:func:`transport_counters`) counts every
    framed message this process sends or receives — broker and worker alike
    — so the ``STATS`` snapshot and ``telemetry.json`` can report transport
    traffic.  Always on: the cost is two integer adds under a lock per
    frame, dwarfed by the pickle + syscall the frame itself costs.
    """

    __slots__ = ("_lock", "frames_sent", "frames_received",
                 "bytes_sent", "bytes_received")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def record_send(self, n_bytes: int) -> None:
        with self._lock:
            self.frames_sent += 1
            self.bytes_sent += n_bytes

    def record_receive(self, n_bytes: int) -> None:
        with self._lock:
            self.frames_received += 1
            self.bytes_received += n_bytes

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "frames_sent": self.frames_sent,
                "frames_received": self.frames_received,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
            }

    def reset(self) -> None:
        with self._lock:
            self.frames_sent = self.frames_received = 0
            self.bytes_sent = self.bytes_received = 0


_COUNTERS = TransportCounters()


def transport_counters() -> TransportCounters:
    """This process's transport traffic counters."""
    return _COUNTERS


def send_message(sock: socket.socket, kind: str, payload: Any = None) -> None:
    """Write one framed ``(kind, payload)`` message to the socket."""
    body = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(body)) + body)
    _COUNTERS.record_send(_HEADER.size + len(body))


def recv_message(sock: socket.socket, *,
                 max_frame_bytes: Optional[int] = None) -> Tuple[str, Any]:
    """Read one framed message; raises ``ConnectionError`` on EOF/corruption.

    ``max_frame_bytes`` caps the peer-supplied length *before* any
    allocation happens (default :func:`default_max_frame_bytes`); an
    oversized frame raises :class:`ProtocolError`.  Daemons that accept
    connections from the network pass a limit sized to their real traffic —
    the broker's trial results and the policy server's observations are
    orders of magnitude below the 1 GiB default.
    """
    limit = (default_max_frame_bytes() if max_frame_bytes is None
             else max_frame_bytes)
    if limit <= 0:
        raise ValueError(f"max_frame_bytes must be positive, got {limit}")
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > limit:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {limit}-byte limit")
    message = pickle.loads(_recv_exact(sock, length))
    if not (isinstance(message, tuple) and len(message) == 2
            and isinstance(message[0], str)):
        raise ProtocolError(f"malformed message: {type(message).__name__}")
    _COUNTERS.record_receive(_HEADER.size + length)
    return message


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` (the CLI's ``--connect``/``--bind`` format)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must look like HOST:PORT, got {address!r}")
    return host, int(port)


__all__ = [
    "ACK", "ACT", "ACTION", "DRAIN", "ERROR", "GET", "HEARTBEAT", "HELLO",
    "MAX_FRAME_BYTES", "MAX_FRAME_ENV_VAR", "OBSERVER_PREFIX",
    "ProtocolError", "RESULT", "SHUTDOWN", "STATS", "SWAP", "SWAPPED",
    "TASK", "TASKS", "TransportCounters", "WAIT", "WELCOME",
    "default_max_frame_bytes", "parse_address", "recv_message",
    "send_message", "transport_counters",
]
