"""Wire protocol of the distributed sweep backend: framed pickle messages.

The broker and its workers exchange Python objects over a TCP stream as
length-prefixed pickle frames — an 8-byte big-endian payload size followed
by the pickled message.  Every message is a ``(kind, payload)`` tuple with
``kind`` one of the module constants below; keeping the frame format this
small means the protocol needs no third-party dependency and any object the
sweep already pickles for the process backend (``SweepTask``,
``TrainingResult``) travels unchanged.

Message flow
------------
The conversation is strictly client-driven: the broker only ever writes in
*response* to a worker frame, so the worker can interleave unsolicited
``HEARTBEAT`` frames (which get no reply) from a background thread without
desynchronizing the request/response pairing.

===================  =======================  ================================
worker sends          broker replies           meaning
===================  =======================  ================================
``(HELLO, worker_id)``  ``(WELCOME, info)``     registration; ``info`` carries
                                                the sweep size
``(GET, capacity)``     ``(TASK, (idx, task))``  a leased task to execute.
                                                 ``capacity`` advertises the
                                                 worker's max lease batch
                                                 (pre-1.4 workers send
                                                 ``None`` = 1; brokers
                                                 ignore unknown payloads)
..                      ``(TASKS, [(idx, task), ...])``  a *batch* of leased
                                                 tasks, at most
                                                 ``min(broker lease_batch,
                                                 worker capacity)`` — sent
                                                 only to workers that
                                                 advertised capacity > 1
..                      ``(WAIT, seconds)``      nothing free right now — every
                                                 remaining task is leased to
                                                 another worker; poll again
..                      ``(SHUTDOWN, None)``     all tasks complete, disconnect
``(RESULT, (idx, result, backend))``  ``(ACK, fresh)``  result received;
                                                 ``fresh`` is False for a
                                                 duplicate delivery
``(HEARTBEAT, None)``   *(no reply)*             lease keep-alive mid-trial
===================  =======================  ================================

Security note: frames are pickles, so the broker must only be bound to
interfaces you trust (the default is loopback).  This mirrors the stdlib
``multiprocessing`` connection model the in-process backends already rely
on.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

#: Message kinds (worker -> broker unless noted).
HELLO = "hello"
GET = "get"
RESULT = "result"
HEARTBEAT = "heartbeat"
#: Broker -> worker kinds.
WELCOME = "welcome"
TASK = "task"
TASKS = "tasks"          #: k-task lease batch (brokers with lease_batch > 1)
WAIT = "wait"
SHUTDOWN = "shutdown"
ACK = "ack"

_HEADER = struct.Struct(">Q")

#: Upper bound on a single frame (1 GiB) — a corrupted or malicious header
#: fails fast instead of attempting a giant allocation.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(ConnectionError):
    """A malformed frame or a violation of the request/response contract."""


def send_message(sock: socket.socket, kind: str, payload: Any = None) -> None:
    """Write one framed ``(kind, payload)`` message to the socket."""
    body = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(body)) + body)


def recv_message(sock: socket.socket) -> Tuple[str, Any]:
    """Read one framed message; raises ``ConnectionError`` on EOF/corruption."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds MAX_FRAME_BYTES")
    message = pickle.loads(_recv_exact(sock, length))
    if not (isinstance(message, tuple) and len(message) == 2
            and isinstance(message[0], str)):
        raise ProtocolError(f"malformed message: {type(message).__name__}")
    return message


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` (the CLI's ``--connect``/``--bind`` format)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must look like HOST:PORT, got {address!r}")
    return host, int(port)


__all__ = [
    "ACK", "GET", "HEARTBEAT", "HELLO", "MAX_FRAME_BYTES", "ProtocolError",
    "RESULT", "SHUTDOWN", "TASK", "TASKS", "WAIT", "WELCOME",
    "parse_address", "recv_message", "send_message",
]
