"""``PolicyServer``: the online policy-serving daemon.

A TCP daemon on the distributed backend's length-prefixed pickle framing
(:mod:`repro.distributed.protocol`) that hosts one trained agent per design
and answers ``ACT`` frames with greedy actions.  Architecture mirrors the
:class:`~repro.distributed.broker.SweepBroker`: a threaded accept loop with
a short accept timeout, one handler per connection, ``HELLO``/``WELCOME``
version negotiation, and a ``STATS`` observability channel — but where the
broker fans *work out*, this daemon fans *requests in*:

* every connection gets a **reader** thread (parses frames, applies swaps,
  queues ``ACT`` requests into the shared :class:`~repro.serving.batcher.
  MicroBatcher`) and a **writer** thread (sends replies strictly in request
  order, so a client may pipeline many ``ACT`` frames without waiting);
* one dispatcher thread inside the batcher drains the queues and calls
  ``agent.act_batch(states, explore=False)`` — the agent is only ever
  touched single-threaded, and greedy selection is RNG-free, so served
  actions are byte-identical to offline greedy evaluation;
* a ``SWAP`` frame atomically replaces a design's agent between batches —
  in-flight requests are never dropped: batches already dispatched finish
  on the old weights, everything after the swap uses the new ones.

Request counters and latency histograms ride a dedicated
:class:`~repro.telemetry.registry.MetricsRegistry` (always on — serving
latency is the product here, not optional debug telemetry), surfaced
through the ``STATS`` frame with interpolated p50/p90/p99.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from queue import Queue
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.distributed import protocol
from repro.serving.batcher import MicroBatcher, PendingAction
from repro.telemetry.registry import COUNT_BUCKETS, MetricsRegistry
from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.serving.server")

#: Default per-frame ceiling for serving traffic: observations are a few
#: hundred bytes and even a whole pickled agent (a SWAP payload) is a few
#: megabytes of hidden-layer matrices — 64 MiB bounds a hostile length
#: header at roughly 1000x real traffic instead of the 1 GiB default.
SERVING_MAX_FRAME_BYTES = 64 << 20


class _PolicyEntry:
    """One hosted design: its live agent + swap bookkeeping."""

    __slots__ = ("agent", "generation", "n_states", "requests")

    def __init__(self, agent: Any) -> None:
        self.agent = agent
        self.generation = 0
        self.n_states = _state_width(agent)
        self.requests = 0


def _state_width(agent: Any) -> Optional[int]:
    """The observation width an agent expects, when it advertises one."""
    config = getattr(agent, "config", None)
    width = getattr(config, "n_states", None)
    return int(width) if width is not None else None


class PolicyServer:
    """Serve greedy actions for trained agents over TCP.

    Parameters
    ----------
    policies:
        ``{design_name: trained_agent}`` — anything satisfying the agent
        protocol (``act_batch(states, explore=False)``).  Typically loaded
        from an :class:`~repro.api.store.ArtifactStore` via
        :func:`~repro.serving.load_spec_policies`.
    host / port:
        Bind address; port 0 (default) picks an ephemeral port, published
        through :attr:`address` after :meth:`start`.
    max_batch / max_wait_us:
        Micro-batching knobs, forwarded to the
        :class:`~repro.serving.batcher.MicroBatcher`.
    max_frame_bytes:
        Frame-size ceiling enforced on every client frame before
        allocation (default :data:`SERVING_MAX_FRAME_BYTES`).
    """

    def __init__(self, policies: Dict[str, Any], *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_batch: int = 8, max_wait_us: float = 2000.0,
                 max_frame_bytes: int = SERVING_MAX_FRAME_BYTES) -> None:
        if not policies:
            raise ValueError("policies must not be empty: nothing to serve")
        for design, agent in policies.items():
            if not callable(getattr(agent, "act_batch", None)):
                raise TypeError(
                    f"policy for design {design!r} has no act_batch(); "
                    f"got {type(agent).__name__}")
        self.max_frame_bytes = int(max_frame_bytes)
        self._policy_lock = threading.Lock()
        self._policies: Dict[str, _PolicyEntry] = {
            design: _PolicyEntry(agent) for design, agent in policies.items()}
        self._bind_host = host
        self._bind_port = port
        self.metrics = MetricsRegistry()
        self._latency = self.metrics.histogram("serving.request_latency_seconds")
        self._batch_sizes = self.metrics.histogram("serving.batch_size",
                                                   buckets=COUNT_BUCKETS)
        self._requests = self.metrics.counter("serving.requests")
        self._errors = self.metrics.counter("serving.errors")
        self._swaps = self.metrics.counter("serving.swaps")
        self._connections = self.metrics.gauge("serving.connections")
        self.batcher = MicroBatcher(self._dispatch, max_batch=max_batch,
                                    max_wait_us=max_wait_us,
                                    on_batch=self._observe_batch)
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._open_connections: set = set()
        self._conn_lock = threading.Lock()
        self._closing = threading.Event()
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "PolicyServer":
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self._bind_host, self._bind_port))
        server.listen(64)
        server.settimeout(0.2)
        self._server = server
        self._started_at = time.monotonic()
        self.batcher.start()
        accept = threading.Thread(target=self._accept_loop,
                                  name="repro-serving-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        _LOGGER.info("policy server started", address="%s:%d" % self.address,
                     designs=len(self._policies))
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.getsockname()[:2]

    def designs(self) -> List[str]:
        with self._policy_lock:
            return sorted(self._policies)

    def close(self) -> None:
        if self._closing.is_set():
            return
        self._closing.set()
        self.batcher.close()
        if self._server is not None:
            self._server.close()
        # Readers block in recv(); closing their sockets is what unblocks
        # them, so shutdown never waits on an idle client.
        with self._conn_lock:
            open_connections = list(self._open_connections)
        for connection in open_connections:
            try:
                connection.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        _LOGGER.info("policy server stopped")

    def __enter__(self) -> "PolicyServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ dispatch
    def _dispatch(self, design: str, states: np.ndarray) -> np.ndarray:
        # Resolve the design's *current* agent under the swap lock; act_batch
        # itself runs outside it (single-threaded: only the dispatcher calls
        # this), so a SWAP never blocks on an in-flight batch and an
        # in-flight batch always completes on the weights it started with.
        with self._policy_lock:
            entry = self._policies[design]
            agent = entry.agent
            entry.requests += len(states)
        return np.asarray(agent.act_batch(states, explore=False),
                          dtype=np.int64)

    def _observe_batch(self, design: str, size: int, seconds: float) -> None:
        self._batch_sizes.observe(size)

    # ------------------------------------------------------------------ swaps
    def swap_policy(self, design: str, agent: Any) -> Dict[str, Any]:
        """Install ``agent`` as the live policy for ``design``.

        Called by the ``SWAP`` frame handler (and usable in-process).  A
        previously unserved design is added, so a trainer can push a brand
        new policy into a running daemon.  Returns the acknowledgement
        payload (design, new generation).
        """
        if not callable(getattr(agent, "act_batch", None)):
            raise TypeError(
                f"swap payload for design {design!r} has no act_batch(); "
                f"got {type(agent).__name__}")
        with self._policy_lock:
            entry = self._policies.get(design)
            if entry is None:
                entry = self._policies[design] = _PolicyEntry(agent)
                entry.generation = 1
            else:
                entry.agent = agent
                entry.n_states = _state_width(agent)
                entry.generation += 1
            generation = entry.generation
        self._swaps.inc()
        _LOGGER.info("policy swapped", design=design, generation=generation)
        return {"design": design, "generation": generation}

    # ------------------------------------------------------------------ stats
    def stats_snapshot(self) -> Dict[str, Any]:
        """A JSON-ready observability snapshot (the ``STATS`` reply)."""
        import repro

        with self._policy_lock:
            designs = {design: {"generation": entry.generation,
                                "requests": entry.requests,
                                "n_states": entry.n_states}
                       for design, entry in self._policies.items()}
        return {
            "repro_version": repro.__version__,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "designs": designs,
            "batching": {"max_batch": self.batcher.max_batch,
                         "max_wait_us": self.batcher.max_wait_us,
                         "queued": self.batcher.queued()},
            "metrics": self.metrics.snapshot(),
            "transport": protocol.transport_counters().snapshot(),
        }

    # ------------------------------------------------------------------ protocol
    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._closing.is_set():
            try:
                connection, _address = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(target=self._serve_client,
                                       args=(connection,),
                                       name="repro-serving-conn", daemon=True)
            handler.start()
            self._threads.append(handler)

    def _serve_client(self, connection: socket.socket) -> None:
        """Reader half of one connection; spawns its ordered-reply writer.

        Every frame's reply is enqueued (as an immediate payload or a
        pending batcher future) on a per-connection FIFO that the writer
        drains — replies leave in exactly the order requests arrived, which
        is what lets :meth:`PolicyClient.act_many` pipeline.
        """
        replies: Queue = Queue()
        with self._conn_lock:
            self._open_connections.add(connection)
        writer = threading.Thread(target=self._write_replies,
                                  args=(connection, replies),
                                  name="repro-serving-writer", daemon=True)
        writer.start()
        self._connections.inc()
        client_id = "<unregistered>"
        try:
            while not self._closing.is_set():
                try:
                    kind, payload = protocol.recv_message(
                        connection, max_frame_bytes=self.max_frame_bytes)
                except protocol.ProtocolError as error:
                    _LOGGER.warning("client protocol error",
                                    client=client_id, error=str(error))
                    break
                except (ConnectionError, OSError):
                    break
                if kind == protocol.HELLO:
                    client_id = str(payload)
                    replies.put(("now", protocol.WELCOME, self._welcome_info()))
                elif kind == protocol.ACT:
                    self._handle_act(payload, replies)
                elif kind == protocol.SWAP:
                    self._handle_swap(payload, replies)
                elif kind == protocol.STATS:
                    replies.put(("now", protocol.STATS, self.stats_snapshot()))
                else:
                    self._errors.inc()
                    replies.put(("now", protocol.ERROR,
                                 f"unknown frame kind {kind!r}"))
        finally:
            replies.put(None)
            writer.join(timeout=5.0)
            self._connections.dec()
            with self._conn_lock:
                self._open_connections.discard(connection)
            try:
                connection.close()
            except OSError:
                pass

    def _welcome_info(self) -> Dict[str, Any]:
        import repro

        return {
            "serving": True,
            "stats": True,
            "repro_version": repro.__version__,
            "designs": self.designs(),
            "max_batch": self.batcher.max_batch,
            "max_wait_us": self.batcher.max_wait_us,
        }

    def _handle_act(self, payload: Any, replies: Queue) -> None:
        try:
            design, state = payload
            state = np.asarray(state, dtype=np.float64)
            if state.ndim != 1:
                raise ValueError(
                    f"state must be 1-D (one observation per ACT frame), "
                    f"got shape {state.shape}")
            with self._policy_lock:
                entry = self._policies.get(str(design))
                expected = entry.n_states if entry is not None else None
            if entry is None:
                raise KeyError(
                    f"unknown design {design!r}; serving {self.designs()}")
            if expected is not None and state.shape[0] != expected:
                raise ValueError(
                    f"design {design!r} expects {expected} state dims, "
                    f"got {state.shape[0]}")
        except (TypeError, ValueError, KeyError) as error:
            self._errors.inc()
            replies.put(("now", protocol.ERROR, str(error)))
            return
        self._requests.inc()
        replies.put(("pending", self.batcher.submit(str(design), state)))

    def _handle_swap(self, payload: Any, replies: Queue) -> None:
        try:
            design, blob = payload
            agent = pickle.loads(blob)
            info = self.swap_policy(str(design), agent)
        except Exception as error:  # noqa: BLE001 - any bad blob -> ERROR reply
            self._errors.inc()
            replies.put(("now", protocol.ERROR,
                         f"swap rejected: {error}"))
            return
        replies.put(("now", protocol.SWAPPED, info))

    def _write_replies(self, connection: socket.socket, replies: Queue) -> None:
        """Drain one connection's reply queue in FIFO order."""
        while True:
            item = replies.get()
            if item is None:
                return
            try:
                if item[0] == "now":
                    _tag, kind, payload = item
                    protocol.send_message(connection, kind, payload)
                else:
                    pending: PendingAction = item[1]
                    try:
                        action = pending.result()
                    except Exception as error:  # noqa: BLE001
                        self._errors.inc()
                        protocol.send_message(connection, protocol.ERROR,
                                              f"dispatch failed: {error}")
                        continue
                    self._latency.observe(time.perf_counter() - pending.enqueued)
                    protocol.send_message(connection, protocol.ACTION, action)
            except (ConnectionError, OSError):
                # The peer vanished mid-reply (disconnect mid-batch): keep
                # draining so pending futures are consumed, sending nothing.
                continue


__all__ = ["PolicyServer", "SERVING_MAX_FRAME_BYTES"]
