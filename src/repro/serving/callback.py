"""``WeightPushCallback``: stream a live trainer's weights into a server.

The "learn online, serve online" loop the paper's OS-ELM pitch implies:
hook this callback onto a :class:`~repro.training.trainer.Trainer` and
every ``every`` episodes (plus once at the end of training) the trial's
*current* agent is pickled and pushed to a running
:class:`~repro.serving.server.PolicyServer` as a ``SWAP`` frame — requests
already in flight finish on the old weights, everything after serves the
fresh ones.

Lives in :mod:`repro.serving` rather than :mod:`repro.training.callbacks`
because it owns a :class:`~repro.serving.client.PolicyClient`; the training
package stays import-free of the serving stack.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple, Union

from repro.distributed.protocol import parse_address
from repro.serving.client import PolicyClient, ServingError
from repro.telemetry import get_registry
from repro.training.callbacks import Callback
from repro.utils.logging import get_logger
from repro.utils.retry import RetryPolicy

_LOGGER = get_logger("repro.serving.callback")

#: Default backoff for a failing serving endpoint: roughly half a second
#: doubling to half a minute.  ``max_attempts`` is irrelevant here — the
#: callback never gives up, it just stops *trying* more often than this —
#: so it is set high enough to never be the binding constraint.
DEFAULT_PUSH_BACKOFF = RetryPolicy(max_attempts=1000, base_delay=0.5,
                                   multiplier=2.0, max_delay=30.0)


class WeightPushCallback(Callback):
    """Push the in-training agent to a live policy server.

    Parameters
    ----------
    address:
        ``"host:port"``, an ``(host, port)`` tuple, or an already-connected
        :class:`PolicyClient`.  Address forms connect lazily on the first
        push, so constructing the callback before the server is up is fine
        as long as it is listening by then.
    design:
        Design name to swap on the server.  Default: the agent's own
        ``name`` attribute at push time (every built-in design sets one).
    every:
        Push cadence in episodes.  The end-of-training push always happens
        regardless, so a short run still deploys its final weights.
    strict:
        When ``False`` (default) a failed push logs a warning and training
        continues — a serving hiccup must not kill a long run.  ``True``
        re-raises, for tests and deployments where silently diverging
        weights are worse than a dead trainer.
    backoff:
        :class:`~repro.utils.retry.RetryPolicy` shaping how eagerly a
        *failing* server is re-tried.  Pre-1.8 behaviour was an
        unconditional reconnect on every push — a dead server ate a
        connect timeout per cadence tick.  Now consecutive failures push
        the next attempt out on the policy's (capped exponential) delay
        schedule; pushes falling inside the cool-down are *skipped* (and
        counted), and the first success resets the schedule.  The deadline
        and attempt cap are ignored — the callback never gives up, it only
        spaces its attempts.
    """

    def __init__(self, address: Union[str, Tuple[str, int], PolicyClient], *,
                 design: Optional[str] = None, every: int = 25,
                 strict: bool = False,
                 backoff: RetryPolicy = DEFAULT_PUSH_BACKOFF) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.design = design
        self.every = int(every)
        self.strict = strict
        self.backoff = backoff
        self.pushes = 0
        self.failed_pushes = 0
        #: Pushes suppressed by the failure backoff (no connect attempted).
        self.skipped_pushes = 0
        self._failure_streak = 0
        self._retry_at = 0.0            # monotonic; 0 = no cool-down active
        self._client: Optional[PolicyClient] = None
        self._address: Optional[Tuple[str, int]] = None
        if isinstance(address, PolicyClient):
            self._client = address
        elif isinstance(address, str):
            self._address = parse_address(address)
        else:
            host, port = address
            self._address = (str(host), int(port))

    # ------------------------------------------------------------------ hooks
    def on_episode_end(self, trial, record) -> None:
        if record.episode % self.every == 0:
            self._push(trial.agent)

    def on_train_end(self, run, results) -> None:
        for trial in getattr(run, "trials", []):
            self._push(trial.agent)

    # ------------------------------------------------------------------ push
    def _push(self, agent) -> None:
        design = self.design if self.design is not None else getattr(
            agent, "name", None)
        if self._retry_at and time.monotonic() < self._retry_at:
            # Still cooling down from consecutive failures: skip quietly
            # rather than eat a connect timeout on every cadence tick
            # against a server that was down moments ago.
            self.skipped_pushes += 1
            get_registry().counter("serving.weight_push_skips").inc()
            return
        try:
            if design is None:
                raise ServingError(
                    f"agent {type(agent).__name__} has no name attribute; "
                    f"pass design= to WeightPushCallback")
            if self._client is None:
                assert self._address is not None
                self._client = PolicyClient(*self._address, design=design)
            info = self._client.swap(agent, design=design)
        except ServingError as error:
            self.failed_pushes += 1
            get_registry().counter("serving.weight_push_failures").inc()
            if self.strict:
                raise
            delay = self.backoff.delay_for(self._failure_streak)
            self._failure_streak += 1
            self._retry_at = time.monotonic() + delay
            _LOGGER.warning("weight push failed", design=design,
                            error=str(error), retry_in=round(delay, 3))
            # A dead connection is not coming back; reconnect on the next
            # push that survives the cool-down.
            if self._client is not None and self._address is not None:
                self._client.close()
                self._client = None
            return
        self.pushes += 1
        self._failure_streak = 0
        self._retry_at = 0.0
        get_registry().counter("serving.weight_pushes").inc()
        _LOGGER.info("weights pushed", design=design,
                     generation=info.get("generation"))

    def close(self) -> None:
        if self._client is not None and self._address is not None:
            # Only close clients this callback opened itself.
            self._client.close()
            self._client = None


__all__ = ["DEFAULT_PUSH_BACKOFF", "WeightPushCallback"]
