"""Micro-batching queue: cross-request aggregation onto one ``act_batch``.

Serving traffic arrives as independent single-observation ``ACT`` requests,
but the predict path underneath (:meth:`QFunction.q_values` on a stacked
2-D state matrix — the same code PR 1's lock-step trainer rides) is far
cheaper per state when called once per *batch*.  :class:`MicroBatcher`
bridges the two: requests queue up until either ``max_batch`` of them are
waiting for the same design or the oldest one has waited ``max_wait_us``,
then the whole group dispatches as one ``agent.act_batch(states,
explore=False)`` call.

Determinism contract: greedy selection (``explore=False``) is a pure argmax
— no RNG draw, no state mutation that feeds back into the maths — and the
single-state and batched predict paths share one code path, so an action
served through a batch is byte-identical to the same observation evaluated
alone offline.  The serving tests assert this per design (ELM, OS-ELM,
DQN).

Threading model: ``submit()`` may be called from any number of connection
threads; one dispatcher thread drains the queues, so the agent itself is
only ever touched single-threaded.  Dispatch order is head-of-line by
enqueue time across designs, FIFO within a design.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

import numpy as np

from repro.utils.logging import get_logger

_LOGGER = get_logger("repro.serving.batcher")


class BatcherClosed(RuntimeError):
    """The batcher shut down before this request could be dispatched."""


class PendingAction:
    """A submitted request: resolves to the greedy action (or an error).

    A tiny single-shot future — ``threading.Event`` plus a slot — so the
    connection thread that submitted the request can block in
    :meth:`result` while the dispatcher thread resolves it.
    """

    __slots__ = ("design", "state", "enqueued", "_event", "_action", "_error")

    def __init__(self, design: str, state: np.ndarray) -> None:
        self.design = design
        self.state = state
        self.enqueued = time.perf_counter()
        self._event = threading.Event()
        self._action: Optional[int] = None
        self._error: Optional[BaseException] = None

    def resolve(self, action: int) -> None:
        self._action = int(action)
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> int:
        """Block until resolved; raises the dispatch error if there was one."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"no action for design {self.design!r} within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._action is not None
        return self._action


class MicroBatcher:
    """Aggregate single-state requests into batched greedy dispatches.

    Parameters
    ----------
    dispatch:
        ``dispatch(design, states)`` with ``states`` of shape
        ``(batch, n_states)``; returns the per-row greedy actions.  Called
        only from the dispatcher thread.  The server passes a closure that
        resolves the design's *current* agent under its swap lock, so a
        hot-swap lands between batches, never inside one.
    max_batch:
        Dispatch as soon as this many requests for one design are queued.
        1 disables aggregation (every request dispatches alone).
    max_wait_us:
        Dispatch a partial batch once its oldest request has waited this
        long (microseconds).  The knob trades tail latency for batch
        occupancy; 0 never holds a request back.
    on_batch:
        Optional ``on_batch(design, batch_size, wall_seconds)`` metrics
        hook, called after each dispatch.
    """

    def __init__(self, dispatch: Callable[[str, np.ndarray], np.ndarray], *,
                 max_batch: int = 8, max_wait_us: float = 2000.0,
                 on_batch: Optional[Callable[[str, int, float], None]] = None
                 ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        self.dispatch = dispatch
        self.max_batch = int(max_batch)
        self.max_wait_us = float(max_wait_us)
        self.on_batch = on_batch
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queues: Dict[str, Deque[PendingAction]] = {}
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("MicroBatcher already started")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serving-batcher",
                                        daemon=True)
        self._thread.start()

    def close(self) -> None:
        """Stop dispatching; fail every still-queued request."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            pending = [request for queue in self._queues.values()
                       for request in queue]
            self._queues.clear()
            self._wake.notify_all()
        for request in pending:
            request.fail(BatcherClosed("policy server shut down"))
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "MicroBatcher":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ intake
    def submit(self, design: str, state: np.ndarray) -> PendingAction:
        """Queue one observation; returns its pending action."""
        request = PendingAction(design, state)
        with self._wake:
            if self._closed:
                raise BatcherClosed("policy server shut down")
            self._queues.setdefault(design, deque()).append(request)
            self._wake.notify_all()
        return request

    def queued(self) -> int:
        """Requests currently waiting (diagnostics)."""
        with self._lock:
            return sum(len(queue) for queue in self._queues.values())

    # ------------------------------------------------------------------ dispatcher
    def _run(self) -> None:
        max_wait_s = self.max_wait_us * 1e-6
        while True:
            with self._wake:
                while not self._closed and not any(self._queues.values()):
                    self._wake.wait()
                if self._closed:
                    return
                # Head-of-line fairness: serve the design whose oldest
                # request has waited longest.
                design = min(
                    (name for name, queue in self._queues.items() if queue),
                    key=lambda name: self._queues[name][0].enqueued)
                queue = self._queues[design]
                deadline = queue[0].enqueued + max_wait_s
                while len(queue) < self.max_batch and not self._closed:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._wake.wait(remaining)
                if self._closed:
                    return
                batch = [queue.popleft()
                         for _ in range(min(len(queue), self.max_batch))]
            self._dispatch_batch(design, batch)

    def _dispatch_batch(self, design: str, batch: list) -> None:
        started = time.perf_counter()
        try:
            states = np.stack([request.state for request in batch])
            actions = np.asarray(self.dispatch(design, states))
            if actions.shape != (len(batch),):
                raise RuntimeError(
                    f"dispatch returned shape {actions.shape}, "
                    f"expected ({len(batch)},)")
        except BaseException as error:  # noqa: BLE001 - forwarded to waiters
            _LOGGER.warning("batch dispatch failed",
                            design=design, size=len(batch),
                            error=repr(error))
            for request in batch:
                request.fail(error)
            return
        for request, action in zip(batch, actions):
            request.resolve(int(action))
        if self.on_batch is not None:
            self.on_batch(design, len(batch), time.perf_counter() - started)


__all__ = ["BatcherClosed", "MicroBatcher", "PendingAction"]
