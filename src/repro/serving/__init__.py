"""repro.serving: the online policy-serving layer.

The paper's pitch is cheap *online* sequential learning — policies that
are usable the moment they are trained.  This package closes the loop:

* :class:`PolicyServer` (``server.py``) — a TCP daemon on the distributed
  backend's framing that answers ``ACT`` frames with greedy actions,
  micro-batched through the already-vectorized ``act_batch`` predict path;
* :class:`MicroBatcher` (``batcher.py``) — requests accumulate up to
  ``max_batch`` or ``max_wait_us``, then dispatch as one batch; greedy
  selection is RNG-free, so served actions are byte-identical to offline
  greedy evaluation;
* :class:`PolicyClient` (``client.py``) — ``act``/pipelined ``act_many``/
  ``swap``/``stats``;
* :class:`WeightPushCallback` (``callback.py``) — a Trainer lifecycle hook
  that hot-swaps the in-training agent into a live server every N episodes;
* :func:`load_spec_policies` — discover trained ``policy.pkl`` artifacts
  for an experiment spec in an :class:`~repro.api.store.ArtifactStore`
  (written by ``repro run --save-policy``).

``repro serve <experiment>`` is the CLI front door; see the README's
"Serving" walkthrough.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serving.batcher import BatcherClosed, MicroBatcher, PendingAction
from repro.serving.callback import WeightPushCallback
from repro.serving.client import PolicyClient, ServingError
from repro.serving.server import SERVING_MAX_FRAME_BYTES, PolicyServer


def load_spec_policies(store: Any, spec: Any,
                       designs: Optional[Sequence[str]] = None,
                       ) -> Tuple[Dict[str, Any], List[str]]:
    """Find one trained policy per design of ``spec`` in ``store``.

    For every requested design the spec's trial grid is scanned in order
    and the first trial with a loadable ``policy.pkl`` wins (trial 0 of the
    first hidden size / env unless that one is missing).  Returns
    ``(policies, problems)`` where ``problems`` lists one actionable
    message per design that could not be served — the serve preflight
    turns a non-empty list into a clean exit 2.
    """
    problems: List[str] = []
    if getattr(spec, "kind", None) == "resource_table":
        return {}, [f"spec {spec.name!r} is a resource table: it has no "
                    f"trained policies to serve"]
    requested = list(designs) if designs else list(spec.designs)
    unknown = [design for design in requested if design not in spec.designs]
    if unknown:
        return {}, [f"design {design!r} is not part of spec {spec.name!r} "
                    f"(its designs: {list(spec.designs)})"
                    for design in unknown]
    tasks = spec.tasks()
    policies: Dict[str, Any] = {}
    for design in requested:
        candidates = [task for task in tasks if task.design == design]
        for task in candidates:
            agent = store.load_policy(task)
            if agent is not None:
                policies[design] = agent
                break
        else:
            problems.append(
                f"no trained policy for design {design!r} under {store.root} "
                f"(searched {len(candidates)} trial"
                f"{'s' if len(candidates) != 1 else ''}); run "
                f"`repro run {spec.name} --save-policy` first")
    return policies, problems


__all__ = [
    "BatcherClosed",
    "MicroBatcher",
    "PendingAction",
    "PolicyClient",
    "PolicyServer",
    "SERVING_MAX_FRAME_BYTES",
    "ServingError",
    "WeightPushCallback",
    "load_spec_policies",
]
