"""``PolicyClient``: talk to a :class:`~repro.serving.server.PolicyServer`.

The client side of the serving frames: connect, ``HELLO``/``WELCOME``
negotiate (refusing politely when the peer is a sweep broker rather than a
serving daemon), then

* :meth:`PolicyClient.act` — one observation, one greedy action;
* :meth:`PolicyClient.act_many` — *pipelined*: all ``ACT`` frames are
  written before any reply is read, so one client saturates the server's
  micro-batcher instead of serializing on round trips;
* :meth:`PolicyClient.swap` — push a (pickled) trained agent into the live
  server, the transport under :class:`~repro.serving.WeightPushCallback`;
* :meth:`PolicyClient.stats` — the server's counters + latency histograms.

Mirrors the :func:`~repro.telemetry.fleet.fetch_fleet_stats` connection
idiom; errors surface as :class:`ServingError` with the reason the server
gave, never a raw pickle traceback.
"""

from __future__ import annotations

import pickle
import socket
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.distributed import protocol
from repro.utils.retry import RetryPolicy


class ServingError(RuntimeError):
    """The server rejected a request (or the peer is not a policy server).

    ``transient`` marks failures a retry might fix (server unreachable,
    connection dropped) as opposed to definitive rejections (wrong peer,
    unknown design) — :class:`~repro.serving.WeightPushCallback`'s backoff
    and the ``retry=`` connect path both branch on it.
    """

    def __init__(self, message: str, *, transient: bool = False) -> None:
        super().__init__(message)
        self.transient = transient


class PolicyClient:
    """A blocking client for one serving connection.

    Parameters
    ----------
    host / port:
        The server address (``PolicyServer.address`` or the ``repro serve``
        banner).
    design:
        Default design for :meth:`act`/:meth:`act_many`/:meth:`swap`.
        Optional when the server hosts exactly one design (it becomes the
        default); required per call otherwise.
    timeout:
        Socket timeout in seconds for connect and each reply.
    retry:
        Optional :class:`~repro.utils.retry.RetryPolicy` for the connect +
        handshake: *transient* failures (server not up yet, connection
        dropped mid-handshake) back off and retry on its schedule, so a
        client racing a restarting server converges instead of dying.
        Definitive rejections ("that's a sweep broker") raise immediately.
        Established connections are never silently re-dialed — a dropped
        request still raises, because replaying it could double-act.
    connect_factory:
        Socket factory ``(host, port, timeout) -> socket`` replacing
        ``socket.create_connection`` (the :class:`~repro.chaos.FaultPlan`
        injection seam, mirroring ``WorkerOptions.connect_factory``).
    """

    def __init__(self, host: str, port: int, *,
                 design: Optional[str] = None, timeout: float = 10.0,
                 client_id: Optional[str] = None,
                 retry: Optional[RetryPolicy] = None,
                 connect_factory: Optional[Callable[[str, int, float],
                                                    socket.socket]] = None) -> None:
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:8]}"
        self._connect_factory = connect_factory
        if retry is None:
            self._sock, info = self._open(host, port, timeout)
        else:
            clock = retry.clock()
            while True:
                try:
                    self._sock, info = self._open(host, port, timeout)
                    break
                except ServingError as error:
                    if not error.transient:
                        raise
                    clock.failed(error)
        self.server_info: Dict[str, Any] = info
        self.designs: List[str] = list(info.get("designs", []))
        if design is None and len(self.designs) == 1:
            design = self.designs[0]
        self.design = design

    def _open(self, host: str, port: int, timeout: float):
        """One connect + HELLO/WELCOME handshake; ``(socket, server info)``."""
        try:
            if self._connect_factory is not None:
                sock = self._connect_factory(host, port, timeout)
            else:
                sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise ServingError(
                f"cannot reach policy server at {host}:{port}: {error}",
                transient=True) from error
        try:
            protocol.send_message(sock, protocol.HELLO, self.client_id)
            kind, info = protocol.recv_message(sock)
            if kind != protocol.WELCOME or not isinstance(info, dict):
                raise ServingError(
                    f"unexpected {kind!r} reply to HELLO from {host}:{port}")
            if not info.get("serving"):
                raise ServingError(
                    f"peer at {host}:{port} is not a policy server "
                    f"(a sweep broker?); point the client at `repro serve`")
        except (ConnectionError, OSError) as error:
            sock.close()
            raise ServingError(
                f"handshake with {host}:{port} failed: {error}",
                transient=True) from error
        except ServingError:
            sock.close()
            raise
        return sock, info

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "PolicyClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ requests
    def _design(self, design: Optional[str]) -> str:
        resolved = design if design is not None else self.design
        if resolved is None:
            raise ValueError(
                f"no design given and the server hosts {self.designs}; "
                f"pass design=...")
        return resolved

    def _recv(self) -> Any:
        try:
            return protocol.recv_message(self._sock)
        except (ConnectionError, OSError) as error:
            raise ServingError(f"server connection lost: {error}",
                transient=True) from error

    def act(self, state: Sequence[float], *,
            design: Optional[str] = None) -> int:
        """The greedy action for one observation."""
        return int(self.act_many([state], design=design)[0])

    def act_many(self, states: Sequence[Sequence[float]], *,
                 design: Optional[str] = None) -> np.ndarray:
        """Greedy actions for many observations, pipelined.

        All ``ACT`` frames are sent before any ``ACTION`` is read; the
        server's per-connection writer preserves request order, so the
        returned array lines up with ``states`` row for row.
        """
        resolved = self._design(design)
        matrix = np.asarray(states, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2:
            raise ValueError(
                f"states must be (batch, n_states), got shape {matrix.shape}")
        try:
            for row in matrix:
                protocol.send_message(self._sock, protocol.ACT,
                                      (resolved, row))
        except (ConnectionError, OSError) as error:
            raise ServingError(f"server connection lost: {error}",
                transient=True) from error
        actions = np.empty(matrix.shape[0], dtype=np.int64)
        for index in range(matrix.shape[0]):
            kind, payload = self._recv()
            if kind == protocol.ERROR:
                raise ServingError(str(payload))
            if kind != protocol.ACTION:
                raise ServingError(f"unexpected {kind!r} reply to ACT")
            actions[index] = int(payload)
        return actions

    def swap(self, agent: Any, *, design: Optional[str] = None) -> Dict[str, Any]:
        """Hot-swap the live policy for ``design`` to ``agent``.

        The agent is pickled whole (exactly what ``CheckpointCallback``
        already proves picklable), so the server's post-swap behaviour is
        identical to this agent's offline greedy behaviour.  Returns the
        server's acknowledgement (``{"design", "generation"}``).
        """
        resolved = self._design(design)
        blob = pickle.dumps(agent, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            protocol.send_message(self._sock, protocol.SWAP, (resolved, blob))
        except (ConnectionError, OSError) as error:
            raise ServingError(f"server connection lost: {error}",
                transient=True) from error
        kind, payload = self._recv()
        if kind == protocol.ERROR:
            raise ServingError(str(payload))
        if kind != protocol.SWAPPED:
            raise ServingError(f"unexpected {kind!r} reply to SWAP")
        if resolved not in self.designs:
            self.designs.append(resolved)
        return dict(payload)

    def stats(self) -> Dict[str, Any]:
        """The server's ``STATS`` snapshot (counters, latency percentiles)."""
        try:
            protocol.send_message(self._sock, protocol.STATS, None)
        except (ConnectionError, OSError) as error:
            raise ServingError(f"server connection lost: {error}",
                transient=True) from error
        kind, payload = self._recv()
        if kind == protocol.ERROR:
            raise ServingError(str(payload))
        if kind != protocol.STATS:
            raise ServingError(f"unexpected {kind!r} reply to STATS")
        return dict(payload)


__all__ = ["PolicyClient", "ServingError"]
