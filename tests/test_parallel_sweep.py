"""Tests for lock-step training, sweep orchestration and experiment wiring."""

import numpy as np
import pytest

from repro.core.designs import make_design
from repro.experiments.execution_time import ExecutionTimeExperiment
from repro.experiments.training_curve import TrainingCurveExperiment
from repro.parallel import (
    SweepRunner,
    SweepSpec,
    evaluate_agent_vectorized,
    parallel_map,
    supports_lockstep,
    train_agents_lockstep,
)
from repro.rl.runner import TrainingConfig, train_agent


def _train_serial(design, n_hidden, seeds, configs):
    return [train_agent(make_design(design, n_hidden=n_hidden, seed=seed),
                        config=config, n_hidden=n_hidden)
            for seed, config in zip(seeds, configs)]


class TestLockstepTrainer:
    def test_oselm_matches_serial_bit_for_bit(self):
        """The lock-step batch must replay the serial trials exactly: same
        episode lengths, same solve outcome, same operation counts."""
        seeds = [11, 22, 33]
        configs = [TrainingConfig(max_episodes=50, seed=seed) for seed in seeds]
        serial = _train_serial("OS-ELM-L2-Lipschitz", 16, seeds, configs)
        agents = [make_design("OS-ELM-L2-Lipschitz", n_hidden=16, seed=seed)
                  for seed in seeds]
        batched = train_agents_lockstep(agents, configs)
        for serial_result, batch_result in zip(serial, batched):
            np.testing.assert_array_equal(serial_result.curve.steps,
                                          batch_result.curve.steps)
            assert serial_result.solved == batch_result.solved
            assert serial_result.breakdown.counts == batch_result.breakdown.counts

    def test_elm_design_matches_serial(self):
        seeds = [5, 6]
        configs = [TrainingConfig(max_episodes=30, seed=seed) for seed in seeds]
        serial = _train_serial("ELM", 16, seeds, configs)
        batched = train_agents_lockstep(
            [make_design("ELM", n_hidden=16, seed=seed) for seed in seeds], configs)
        for serial_result, batch_result in zip(serial, batched):
            np.testing.assert_array_equal(serial_result.curve.steps,
                                          batch_result.curve.steps)

    def test_stall_reset_rule_matches_serial(self):
        """A tiny reset_after_episodes forces weight resets mid-batch; the
        lock-step path must re-randomise identically to the serial loop."""
        seeds = [3, 4]
        configs = [TrainingConfig(max_episodes=40, seed=seed) for seed in seeds]
        serial = [train_agent(
            make_design("OS-ELM-L2", n_hidden=16, seed=seed, reset_after_episodes=10),
            config=config) for seed, config in zip(seeds, configs)]
        agents = [make_design("OS-ELM-L2", n_hidden=16, seed=seed,
                              reset_after_episodes=10) for seed in seeds]
        batched = train_agents_lockstep(agents, configs)
        for serial_result, batch_result in zip(serial, batched):
            assert serial_result.weight_resets > 0
            assert serial_result.weight_resets == batch_result.weight_resets
            np.testing.assert_array_equal(serial_result.curve.steps,
                                          batch_result.curve.steps)

    def test_stop_when_solved_deactivates_trial(self):
        configs = [TrainingConfig(max_episodes=100, solved_threshold=2.0,
                                  solved_window=5, seed=seed) for seed in (0, 1)]
        agents = [make_design("OS-ELM-L2", n_hidden=8, seed=seed) for seed in (0, 1)]
        results = train_agents_lockstep(agents, configs)
        for result in results:
            assert result.solved
            assert result.episodes == result.episodes_to_solve < 100

    def test_rejects_unsupported_agents(self):
        dqn = make_design("DQN", n_hidden=8, seed=0)
        assert not supports_lockstep(dqn)
        assert not supports_lockstep(make_design("FPGA", n_hidden=8, seed=0))
        # The un-ridged recursive P update amplifies batched-vs-serial BLAS
        # rounding chaotically, so the unregularized OS-ELM variants are out.
        assert not supports_lockstep(make_design("OS-ELM", n_hidden=8, seed=0))
        assert not supports_lockstep(make_design("OS-ELM-Lipschitz", n_hidden=8, seed=0))
        assert supports_lockstep(make_design("OS-ELM-L2", n_hidden=8, seed=0))
        assert supports_lockstep(make_design("ELM", n_hidden=8, seed=0))
        with pytest.raises(TypeError):
            train_agents_lockstep([dqn], [TrainingConfig(max_episodes=2, seed=0)])

    def test_unregularized_oselm_falls_back_and_matches_serial(self):
        """'OS-ELM' routed through the vectorized backend must take the serial
        fallback and therefore reproduce backend='serial' exactly."""
        spec = SweepSpec(designs=("OS-ELM",), n_seeds=2, n_hidden=8,
                         training=TrainingConfig(max_episodes=15), root_seed=44)
        vec = SweepRunner(spec, backend="vectorized").run()
        ser = SweepRunner(spec, backend="serial").run()
        for vec_result, ser_result in zip(vec.results_for(), ser.results_for()):
            np.testing.assert_array_equal(vec_result.curve.steps,
                                          ser_result.curve.steps)

    def test_rejects_mismatched_batches(self):
        agents = [make_design("OS-ELM-L2", n_hidden=8, seed=0),
                  make_design("OS-ELM-L2", n_hidden=16, seed=1)]
        configs = [TrainingConfig(max_episodes=2, seed=s) for s in (0, 1)]
        with pytest.raises(ValueError):
            train_agents_lockstep(agents, configs)
        mixed_activation = [make_design("OS-ELM-L2", n_hidden=8, seed=0),
                            make_design("OS-ELM-L2", n_hidden=8, seed=1,
                                        activation="sigmoid")]
        with pytest.raises(ValueError, match="activation"):
            train_agents_lockstep(mixed_activation, configs)
        with pytest.raises(ValueError):
            train_agents_lockstep(agents[:1], configs)
        mixed_envs = [TrainingConfig(max_episodes=2, env_id="CartPole-v0", seed=0),
                      TrainingConfig(max_episodes=2, env_id="CartPole-v1", seed=1)]
        with pytest.raises(ValueError):
            train_agents_lockstep([make_design("OS-ELM-L2", n_hidden=8, seed=s)
                                   for s in (0, 1)], mixed_envs)


class TestSweepSpec:
    def test_grid_expansion_and_seed_derivation(self):
        spec = SweepSpec(designs=("ELM", "OS-ELM-L2"), n_seeds=3,
                         training=TrainingConfig(max_episodes=5), root_seed=9)
        tasks = spec.tasks()
        assert len(tasks) == 6
        seeds = [task.seed for task in tasks]
        assert len(set(seeds)) == 6                       # pairwise distinct
        assert [t.seed for t in SweepSpec(designs=("ELM", "OS-ELM-L2"), n_seeds=3,
                                          training=TrainingConfig(max_episodes=5),
                                          root_seed=9).tasks()] == seeds
        for task in tasks:
            assert task.training.seed == task.seed        # embedded per-trial seed

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(designs=())
        with pytest.raises(ValueError):
            SweepSpec(n_seeds=0)
        with pytest.raises(ValueError):
            SweepSpec(designs=("NoSuchDesign",))


class TestSweepRunner:
    def test_vectorized_and_serial_backends_agree(self):
        spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=3, n_hidden=16,
                         training=TrainingConfig(max_episodes=20), root_seed=77)
        vec = SweepRunner(spec, backend="vectorized").run()
        ser = SweepRunner(spec, backend="serial").run()
        assert len(vec) == len(ser) == 3
        for vec_result, ser_result in zip(vec.results_for(), ser.results_for()):
            np.testing.assert_array_equal(vec_result.curve.steps,
                                          ser_result.curve.steps)

    def test_process_backend_matches_serial(self):
        spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=2, n_hidden=8,
                         training=TrainingConfig(max_episodes=5), root_seed=3)
        proc = SweepRunner(spec, backend="process", max_workers=2).run()
        ser = SweepRunner(spec, backend="serial").run()
        for proc_result, ser_result in zip(proc.results_for(), ser.results_for()):
            np.testing.assert_array_equal(proc_result.curve.steps,
                                          ser_result.curve.steps)

    def test_streaming_callback_sees_every_task(self):
        spec = SweepSpec(designs=("ELM", "DQN"), n_seeds=2, n_hidden=8,
                         training=TrainingConfig(max_episodes=3), root_seed=5)
        seen = []
        result = SweepRunner(spec, backend="vectorized").run(
            callback=lambda task, res: seen.append((task.design, task.trial)))
        assert len(result) == 4
        assert sorted(seen) == [("DQN", 0), ("DQN", 1), ("ELM", 0), ("ELM", 1)]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(SweepSpec(training=TrainingConfig(max_episodes=2)),
                        backend="gpu")

    def test_explicit_task_list(self):
        """SweepRunner accepts a pre-built task list (the repro.api path) and
        reproduces the spec-driven run exactly."""
        spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=2, n_hidden=8,
                         training=TrainingConfig(max_episodes=6), root_seed=13)
        from_spec = SweepRunner(spec, backend="serial").run()
        from_tasks = SweepRunner(spec.tasks(), backend="serial").run()
        assert len(from_tasks) == len(from_spec) == 2
        for a, b in zip(from_spec.results_for(), from_tasks.results_for()):
            np.testing.assert_array_equal(a.curve.steps, b.curve.steps)
        with pytest.raises(ValueError):
            SweepRunner([], backend="serial")
        with pytest.raises(TypeError):
            SweepRunner([object()], backend="serial")
        # Generators must be materialized, not silently exhausted by validation.
        from_generator = SweepRunner(iter(spec.tasks()), backend="serial").run()
        assert len(from_generator) == 2

    def test_sweep_spec_resolves_env_dimensions(self):
        """A SweepSpec naming a non-CartPole env must size agents for it."""
        spec = SweepSpec(designs=("OS-ELM-L2",), env_ids=("MountainCar-v0",),
                         n_seeds=1, n_hidden=8,
                         training=TrainingConfig(max_episodes=2,
                                                 reward_shaping=False),
                         root_seed=2)
        task = spec.tasks()[0]
        assert (task.n_states, task.n_actions) == (2, 3)
        sweep = SweepRunner(spec, backend="serial").run()
        assert sweep.results_for()[0].episodes == 2

    def test_backend_used_recorded_per_trial(self):
        """The vectorized backend must audit which path each trial took:
        since 1.4 every design lock-steps — OS-ELM-L2 through the batched
        strategy and unregularized OS-ELM through the generic per-agent
        strategy, both recorded as "lockstep"."""
        spec = SweepSpec(designs=("OS-ELM-L2", "OS-ELM"), n_seeds=2, n_hidden=8,
                         training=TrainingConfig(max_episodes=4), root_seed=8)
        sweep = SweepRunner(spec, backend="vectorized").run()
        assert len(sweep.backends_used) == len(sweep.entries) == 4
        for (task, _), backend_used in zip(sweep.entries, sweep.backends_used):
            assert backend_used == "lockstep"
            assert sweep.backend_for(task) == "lockstep"
        assert sweep.backend_counts() == {"lockstep": 4}
        rows = {row["design"]: row for row in sweep.summary_rows()}
        assert rows["OS-ELM-L2"]["backend_used"] == "lockstep"
        assert rows["OS-ELM"]["backend_used"] == "lockstep"
        serial = SweepRunner(spec, backend="serial").run()
        assert set(serial.backends_used) == {"serial"}

    def test_aggregation_helpers(self):
        spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=3, n_hidden=8,
                         training=TrainingConfig(max_episodes=8), root_seed=21)
        sweep = SweepRunner(spec, backend="vectorized").run()
        assert 0.0 <= sweep.solved_fraction("OS-ELM-L2", "CartPole-v0") <= 1.0
        curve = sweep.aggregate_curve("OS-ELM-L2", "CartPole-v0")
        assert curve["mean_steps"].shape == curve["episodes"].shape
        assert curve["mean_steps"].shape == curve["std_steps"].shape
        assert sweep.total_env_steps > 0
        assert "OS-ELM-L2" in sweep.render()
        with pytest.raises(KeyError):
            sweep.aggregate_curve("DQN", "CartPole-v0")


class TestParallelMap:
    def test_serial_backend_orders_results(self):
        assert parallel_map(abs, [-3, -1, -2], backend="serial") == [3, 1, 2]

    def test_empty_items(self):
        assert parallel_map(abs, [], backend="process") == []

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            parallel_map(abs, [1], backend="thread")

    def test_callback_streams_completions(self):
        seen = []
        parallel_map(abs, [-1, -2], backend="serial",
                     callback=lambda index, value: seen.append((index, value)))
        assert seen == [(0, 1), (1, 2)]


class TestExperimentParallelFlag:
    def test_training_curve_parallel_matches_serial(self):
        kwargs = dict(designs=("OS-ELM-L2",), hidden_sizes=(8,),
                      training=TrainingConfig(max_episodes=4))
        serial = TrainingCurveExperiment(**kwargs).run()
        parallel = TrainingCurveExperiment(parallel=True, max_workers=2, **kwargs).run()
        serial_result = serial.get("OS-ELM-L2", 8)
        parallel_result = parallel.get("OS-ELM-L2", 8)
        np.testing.assert_array_equal(serial_result.curve.steps,
                                      parallel_result.curve.steps)

    def test_execution_time_parallel_matches_serial(self):
        kwargs = dict(designs=("OS-ELM-L2",), hidden_sizes=(8,),
                      training=TrainingConfig(max_episodes=4))
        serial = ExecutionTimeExperiment(**kwargs).run()
        parallel = ExecutionTimeExperiment(parallel=True, max_workers=2, **kwargs).run()
        assert (serial.get("OS-ELM-L2", 8).counts
                == parallel.get("OS-ELM-L2", 8).counts)


class TestVectorizedEvaluation:
    def test_returns_requested_episode_lengths(self):
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=0)
        train_agent(agent, config=TrainingConfig(max_episodes=10, seed=0))
        lengths = evaluate_agent_vectorized(agent, n_episodes=5, num_envs=3, seed=2)
        assert lengths.shape == (5,)
        assert np.all(lengths >= 1)

    def test_reproducible_for_fixed_seed(self):
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=0)
        train_agent(agent, config=TrainingConfig(max_episodes=10, seed=0))
        first = evaluate_agent_vectorized(agent, n_episodes=4, num_envs=2, seed=8)
        second = evaluate_agent_vectorized(agent, n_episodes=4, num_envs=2, seed=8)
        np.testing.assert_array_equal(first, second)

    def test_invalid_episode_count(self):
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=0)
        with pytest.raises(ValueError):
            evaluate_agent_vectorized(agent, n_episodes=0)
