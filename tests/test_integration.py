"""End-to-end integration tests crossing module boundaries.

These exercise the complete stack — environment, agent, runner, platform
models — on small budgets so they stay fast while still covering the paths
the benchmark harnesses use.
"""

import numpy as np
import pytest

import repro
from repro import TrainingConfig, evaluate_agent, make_design, train_agent
from repro.core.agents import AgentConfig, OSELMQAgent
from repro.core.regularization import RegularizationConfig
from repro.envs import make as make_env
from repro.experiments.execution_time import ExecutionTimeExperiment
from repro.fpga.platform import PynqZ1Platform


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("make_design", "train_agent", "OSELM", "ELM", "DESIGN_NAMES",
                     "FPGAAcceleratedOSELM", "PynqZ1Platform", "Q20"):
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quickstart must work as written (tiny budget here)."""
        agent = repro.make_design("OS-ELM-L2-Lipschitz", n_hidden=16, seed=0)
        result = repro.train_agent(agent, config=repro.TrainingConfig(max_episodes=5, seed=0))
        assert result.episodes == 5


class TestAllDesignsSmoke:
    @pytest.mark.parametrize("design", ["ELM", "OS-ELM", "OS-ELM-L2", "OS-ELM-Lipschitz",
                                        "OS-ELM-L2-Lipschitz", "DQN", "FPGA"])
    def test_each_design_trains_without_error(self, design):
        agent = make_design(design, n_hidden=16, seed=3)
        config = TrainingConfig(max_episodes=4, seed=3)
        result = train_agent(agent, config=config)
        assert result.design == agent.name
        assert result.episodes == 4
        assert result.breakdown.total() >= 0
        lengths = evaluate_agent(agent, n_episodes=2, config=TrainingConfig(seed=5))
        assert np.all(lengths >= 1)

    def test_plain_oselm_survives_ill_conditioning(self):
        """Without the L2 term the P update can lose positive definiteness; the agent
        must keep running (the paper's 'unstable' behaviour) rather than crash."""
        agent = make_design("OS-ELM", n_hidden=32, seed=2)
        config = TrainingConfig(max_episodes=60, seed=2)
        result = train_agent(agent, config=config)
        assert result.episodes == 60   # completed the run without raising


class TestLearningBehaviour:
    def test_oselm_l2_improves_over_random_policy(self):
        """The OS-ELM-L2 design must climb meaningfully above the random-policy baseline
        on CartPole within a few hundred episodes (Figure 4's qualitative behaviour)."""
        agent = make_design("OS-ELM-L2", n_hidden=64, seed=6, reset_after_episodes=None)
        config = TrainingConfig(max_episodes=600, seed=6, stop_when_solved=True,
                                solved_threshold=80.0, solved_window=30)
        result = train_agent(agent, config=config)
        peak = float(result.curve.moving_average.max())
        assert result.solved or peak > 40.0

    def test_dqn_learns_quickly(self):
        """The DQN baseline should lift its greedy policy well above random within
        ~150 episodes (its sample efficiency is not the paper's concern — time is)."""
        agent = make_design("DQN", n_hidden=32, seed=0)
        config = TrainingConfig(max_episodes=150, seed=0, solved_threshold=120.0,
                                solved_window=20)
        result = train_agent(agent, config=config)
        greedy_lengths = evaluate_agent(agent, n_episodes=5, config=TrainingConfig(seed=9))
        assert result.solved or float(np.mean(greedy_lengths)) > 60.0


class TestFPGAPathIntegration:
    def test_fpga_agent_accumulates_modelled_time(self):
        agent = make_design("FPGA", n_hidden=16, seed=0)
        config = TrainingConfig(max_episodes=10, seed=0)
        train_agent(agent, config=config)
        modelled = agent.model.modelled_time
        assert modelled.counts.get("seq_train", 0) > 0
        assert modelled.counts.get("predict_seq", 0) > 0
        assert modelled.seconds.get("init_train", 0.0) > 0.0

    def test_fpga_and_software_agree_functionally(self):
        """With identical seeds the FPGA (fixed-point) agent's Q-values stay close to
        the float OS-ELM-L2-Lipschitz agent's during early training."""
        seed = 4
        sw = make_design("OS-ELM-L2-Lipschitz", n_hidden=16, seed=seed)
        hw = make_design("FPGA", n_hidden=16, seed=seed)
        env_sw = make_env("CartPole-v0", seed=seed)
        env_hw = make_env("CartPole-v0", seed=seed)
        for agent, env in ((sw, env_sw), (hw, env_hw)):
            state, _ = env.reset(seed=seed)
            for _ in range(80):
                action = agent.act(state)
                result = env.step(action)
                agent.observe(state, action, 0.0, result.observation, result.done)
                state = result.observation
                if result.done:
                    state, _ = env.reset()
        probe = np.array([0.01, 0.1, -0.02, -0.1])
        q_sw = sw.q_online.q_values(probe)
        q_hw = hw.q_online.q_values(probe)
        np.testing.assert_allclose(q_hw, q_sw, atol=5e-3)

    def test_execution_time_projection_ordering(self):
        """Modelled per-operation latencies preserve the paper's ordering:
        FPGA seq_train << CPU seq_train << DQN train step (same width)."""
        platform = PynqZ1Platform()
        n_hidden = 64
        counts = {"seq_train": 10_000}
        fpga = platform.project_breakdown("FPGA", counts, n_hidden=n_hidden).total()
        software = platform.project_breakdown("OS-ELM-L2-Lipschitz", counts,
                                              n_hidden=n_hidden).total()
        dqn = platform.project_breakdown("DQN", {"train_DQN": 10_000},
                                         n_hidden=n_hidden).total()
        assert fpga < software < dqn

    def test_execution_time_experiment_single_projection(self):
        experiment = ExecutionTimeExperiment.ci_scale(designs=("FPGA",), hidden_sizes=(16,),
                                                      max_episodes=4)
        timing = experiment.run_single("FPGA", 16)
        assert timing.design == "FPGA"
        assert timing.modelled_total > 0
        assert timing.counts.get("seq_train", 0) >= 0


class TestCustomConfigurations:
    def test_one_hot_action_agent(self):
        config = AgentConfig(n_states=4, n_actions=2, n_hidden=16, seed=0,
                             one_hot_actions=True,
                             regularization=RegularizationConfig.l2(1.0))
        agent = OSELMQAgent(config)
        assert agent.config.input_size == 6
        result = train_agent(agent, config=TrainingConfig(max_episodes=3, seed=0))
        assert result.episodes == 3

    def test_mountain_car_environment_with_oselm(self):
        """The future-work scenario: the same agent API drives MountainCar."""
        config = AgentConfig(n_states=2, n_actions=3, n_hidden=16, seed=0,
                             regularization=RegularizationConfig.l2(1.0))
        agent = OSELMQAgent(config)
        env = make_env("MountainCar-v0", seed=0)
        training = TrainingConfig(env_id="MountainCar-v0", max_episodes=3,
                                  reward_shaping=False, seed=0)
        result = train_agent(agent, env, config=training)
        assert result.episodes == 3

    def test_acrobot_environment_with_dqn(self):
        agent = make_design("DQN", n_states=6, n_actions=3, n_hidden=16, seed=0,
                            min_replay_size=32)
        env = make_env("Acrobot-v1", seed=0, max_episode_steps=60)
        training = TrainingConfig(env_id="Acrobot-v1", max_episodes=2,
                                  reward_shaping=False, seed=0)
        result = train_agent(agent, env, config=training)
        assert result.episodes == 2
