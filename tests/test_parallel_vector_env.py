"""Tests for the vector-env layer: semantics, auto-reset, Sync==Subproc."""

import numpy as np
import pytest

from repro.envs.cartpole import CartPoleEnv, CartPoleParams
from repro.envs.registry import make as make_env
from repro.parallel import (
    EnvFactory,
    SubprocVectorEnv,
    SyncVectorEnv,
    VectorStepResult,
    make_vector,
)


def _factories(n, *, base_seed=100, **kwargs):
    return [EnvFactory("CartPole-v0", seed=base_seed + i,
                       kwargs=tuple(sorted(kwargs.items()))) for i in range(n)]


class TestVectorStepResult:
    def test_dones_combines_flags(self):
        result = VectorStepResult(np.zeros((2, 4)), np.ones(2),
                                  np.array([True, False]), np.array([False, False]))
        np.testing.assert_array_equal(result.dones, [True, False])

    def test_iterates_as_tuple(self):
        result = VectorStepResult(np.zeros((2, 4)), np.ones(2),
                                  np.zeros(2, bool), np.zeros(2, bool), [{}, {}])
        obs, rewards, terminated, truncated, infos = result
        assert obs.shape == (2, 4) and len(infos) == 2


class TestSyncVectorEnv:
    def test_reset_and_step_shapes(self):
        venv = SyncVectorEnv(_factories(3))
        observations, infos = venv.reset()
        assert observations.shape == (3, 4) and len(infos) == 3
        result = venv.step(np.array([0, 1, 0]))
        assert result.observations.shape == (3, 4)
        assert result.rewards.shape == (3,)
        assert result.terminated.dtype == bool and result.truncated.dtype == bool

    def test_seeded_reset_reproducible(self):
        venv = SyncVectorEnv(_factories(3))
        first, _ = venv.reset(seed=42)
        second, _ = venv.reset(seed=42)
        np.testing.assert_array_equal(first, second)
        # spawn_seeds decorrelates the sub-envs from each other.
        assert not np.array_equal(first[0], first[1])

    def test_wrong_action_count_rejected(self):
        venv = SyncVectorEnv(_factories(2))
        venv.reset()
        with pytest.raises(ValueError):
            venv.step(np.array([0, 1, 0]))

    def test_invalid_action_rejected(self):
        venv = SyncVectorEnv(_factories(2))
        venv.reset()
        with pytest.raises(ValueError):
            venv.step(np.array([0, 7]))

    def test_non_integer_actions_rejected(self):
        venv = SyncVectorEnv(_factories(2))
        venv.reset()
        with pytest.raises(ValueError, match="integer"):
            venv.step(np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            venv.step(np.array([True, False]))

    def test_step_before_reset_rejected(self):
        venv = SyncVectorEnv(_factories(2))
        with pytest.raises(RuntimeError):
            venv.step(np.array([0, 1]))

    def test_truncation_flag_per_env(self):
        venv = SyncVectorEnv(_factories(2, max_episode_steps=5))
        venv.reset(seed=0)
        for _ in range(4):
            result = venv.step(np.array([0, 1]))
        # By step 5 any env still alive must report truncated (not terminated).
        result = venv.step(np.array([0, 1]))
        for i in range(2):
            assert result.terminated[i] or result.truncated[i]

    def test_autoreset_returns_fresh_obs_and_final_observation(self):
        venv = SyncVectorEnv(_factories(2, max_episode_steps=3))
        venv.reset(seed=1)
        result = None
        for _ in range(3):
            result = venv.step(np.array([1, 1]))
        done_envs = np.flatnonzero(result.dones)
        assert done_envs.size > 0
        for i in done_envs:
            final = result.infos[i]["final_observation"]
            assert final.shape == (4,)
            # The returned row is the next episode's initial state, which is
            # drawn from U[-0.05, 0.05] and distinct from the terminal state.
            assert not np.array_equal(final, result.observations[i])
            assert np.all(np.abs(result.observations[i]) <= 0.05)

    def test_no_autoreset_raises_on_next_step(self):
        venv = SyncVectorEnv(_factories(1, max_episode_steps=2), autoreset=False)
        venv.reset(seed=0)
        venv.step(np.array([1]))
        venv.step(np.array([1]))
        with pytest.raises(RuntimeError):
            venv.step(np.array([1]))

    def test_batch_physics_enabled_for_uniform_cartpoles(self):
        assert SyncVectorEnv(_factories(2)).uses_batch_physics
        assert not SyncVectorEnv(_factories(2), batch_physics=False).uses_batch_physics

    def test_batch_physics_disabled_for_mixed_params(self):
        heavy = CartPoleParams(cart_mass=2.0)
        fns = [lambda: make_env("CartPole-v0", seed=0),
               lambda: CartPoleEnv(params=heavy, seed=1)]
        assert not SyncVectorEnv(fns).uses_batch_physics

    def test_batched_physics_matches_per_env_loop(self):
        fns = _factories(3)
        fast = SyncVectorEnv(fns)
        slow = SyncVectorEnv(fns, batch_physics=False)
        obs_fast, _ = fast.reset(seed=7)
        obs_slow, _ = slow.reset(seed=7)
        np.testing.assert_array_equal(obs_fast, obs_slow)
        rng = np.random.default_rng(0)
        for _ in range(250):
            actions = rng.integers(0, 2, size=3)
            result_fast = fast.step(actions)
            result_slow = slow.step(actions)
            np.testing.assert_array_equal(result_fast.observations,
                                          result_slow.observations)
            np.testing.assert_array_equal(result_fast.terminated,
                                          result_slow.terminated)
            np.testing.assert_array_equal(result_fast.truncated,
                                          result_slow.truncated)

    def test_large_batch_numpy_branch_matches_loop(self):
        # Above 16 sub-envs the fast path switches from the scalar-Python
        # integrator to CartPoleEnv.batch_dynamics; both must match the
        # per-env loop exactly.
        fns = _factories(20)
        fast = SyncVectorEnv(fns)
        slow = SyncVectorEnv(fns, batch_physics=False)
        obs_fast, _ = fast.reset(seed=3)
        obs_slow, _ = slow.reset(seed=3)
        np.testing.assert_array_equal(obs_fast, obs_slow)
        rng = np.random.default_rng(2)
        for _ in range(60):
            actions = rng.integers(0, 2, size=20)
            result_fast = fast.step(actions)
            result_slow = slow.step(actions)
            np.testing.assert_array_equal(result_fast.observations,
                                          result_slow.observations)
            np.testing.assert_array_equal(result_fast.terminated,
                                          result_slow.terminated)

    def test_fast_path_infos_match_loop_path(self):
        fns = _factories(2)
        fast = SyncVectorEnv(fns)
        slow = SyncVectorEnv(fns, batch_physics=False)
        fast.reset(seed=5)
        slow.reset(seed=5)
        result_fast = fast.step(np.array([0, 1]))
        result_slow = slow.step(np.array([0, 1]))
        assert result_fast.infos == result_slow.infos
        assert result_fast.infos[0]["steps"] == 1

    def test_batch_dynamics_matches_scalar_dynamics(self):
        env = CartPoleEnv(seed=3)
        env.reset()
        rng = np.random.default_rng(1)
        states = rng.uniform(-0.1, 0.1, size=(8, 4))
        actions = rng.integers(0, 2, size=8)
        batched = CartPoleEnv.batch_dynamics(states, actions, env.params)
        for i in range(8):
            scalar = env._dynamics(states[i], int(actions[i]))
            np.testing.assert_array_equal(batched[i], scalar)


class TestMakeVector:
    def test_builds_sync(self):
        venv = make_vector("CartPole-v0", 2, seed=5)
        assert isinstance(venv, SyncVectorEnv) and venv.num_envs == 2

    def test_seeded_construction_reproducible(self):
        a, _ = make_vector("CartPole-v0", 2, seed=5).reset()
        b, _ = make_vector("CartPole-v0", 2, seed=5).reset()
        np.testing.assert_array_equal(a, b)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            make_vector("CartPole-v0", 0)
        with pytest.raises(ValueError):
            make_vector("CartPole-v0", 2, vectorization="threads")
        with pytest.raises(KeyError):
            make_vector("NoSuchEnv-v0", 2)


class TestSubprocVectorEnv:
    def test_matches_sync_step_for_step(self):
        fns = _factories(3, base_seed=500)
        sync_env = SyncVectorEnv(fns)
        subproc_env = SubprocVectorEnv(fns)
        try:
            obs_sync, _ = sync_env.reset()
            obs_sub, _ = subproc_env.reset()
            np.testing.assert_array_equal(obs_sync, obs_sub)
            rng = np.random.default_rng(9)
            for _ in range(120):
                actions = rng.integers(0, 2, size=3)
                result_sync = sync_env.step(actions)
                result_sub = subproc_env.step(actions)
                np.testing.assert_array_equal(result_sync.observations,
                                              result_sub.observations)
                np.testing.assert_array_equal(result_sync.terminated,
                                              result_sub.terminated)
                np.testing.assert_array_equal(result_sync.truncated,
                                              result_sub.truncated)
        finally:
            subproc_env.close()

    def test_autoreset_final_observation(self):
        venv = SubprocVectorEnv(_factories(2, max_episode_steps=3))
        try:
            venv.reset(seed=3)
            result = None
            for _ in range(3):
                result = venv.step(np.array([1, 1]))
            for i in np.flatnonzero(result.dones):
                assert "final_observation" in result.infos[i]
        finally:
            venv.close()

    def test_closed_env_rejects_use(self):
        venv = SubprocVectorEnv(_factories(1))
        venv.close()
        with pytest.raises(RuntimeError):
            venv.reset()
        venv.close()  # idempotent

    def test_worker_exceptions_propagate(self):
        """Env errors inside a worker must re-raise in the parent instead of
        killing the pipe (step-before-reset is the canonical misuse)."""
        venv = SubprocVectorEnv(_factories(1))
        try:
            with pytest.raises(RuntimeError, match="before reset"):
                venv.step(np.array([0]))
        finally:
            venv.close()


class TestSubprocStepsPerMessage:
    """Frame-skip batching: k env steps per pipe message."""

    def test_invalid_steps_per_message(self):
        with pytest.raises(ValueError):
            SubprocVectorEnv(_factories(1), steps_per_message=0)

    def test_matches_manual_frame_skip_on_sync(self):
        """One batched step(action) must equal k Sync steps of the repeated
        action (stopping at episode end), with the rewards summed."""
        k = 4
        fns = _factories(2, base_seed=700)
        sync_env = SyncVectorEnv(fns)
        batched = SubprocVectorEnv(fns, steps_per_message=k)
        try:
            obs_sync, _ = sync_env.reset()
            obs_sub, _ = batched.reset()
            np.testing.assert_array_equal(obs_sync, obs_sub)
            rng = np.random.default_rng(41)
            for _ in range(60):
                actions = rng.integers(0, 2, size=2)
                result_sub = batched.step(actions)
                # Manual frame skip on the Sync env, per sub-env.
                expected_obs = np.empty_like(result_sub.observations)
                expected_reward = np.zeros(2)
                expected_frames = np.zeros(2, dtype=int)
                done = np.zeros(2, dtype=bool)
                for _frame in range(k):
                    live = ~done
                    if not live.any():
                        break
                    result_sync = sync_env.step(actions)
                    expected_reward[live] += result_sync.rewards[live]
                    expected_frames[live] += 1
                    expected_obs[live] = result_sync.observations[live]
                    done |= result_sync.dones
                    # NOTE: Sync auto-resets finished sub-envs, so a done
                    # sub-env keeps stepping its *next* episode here — the
                    # batched env must NOT have taken those frames.  This
                    # only stays trajectory-exact while no sub-env finishes
                    # mid-window, so the loop below re-syncs on divergence.
                np.testing.assert_array_equal(result_sub.rewards[~done],
                                              expected_reward[~done])
                np.testing.assert_array_equal(result_sub.observations[~done],
                                              expected_obs[~done])
                for i in range(2):
                    assert result_sub.infos[i]["frames"] <= k
                if done.any():
                    break   # streams diverge once an episode ends mid-window
        finally:
            batched.close()
            sync_env.close()

    def test_early_stop_at_episode_end(self):
        """With max_episode_steps=3 and k=10 the worker must stop after 3
        frames, report frames=3 and auto-reset."""
        venv = SubprocVectorEnv(_factories(1, max_episode_steps=3),
                                steps_per_message=10)
        try:
            venv.reset(seed=11)
            result = venv.step(np.array([1]))
            assert result.infos[0]["frames"] == 3
            assert result.truncated[0]
            assert result.rewards[0] == pytest.approx(3.0)   # summed unit rewards
            assert "final_observation" in result.infos[0]
        finally:
            venv.close()

    def test_k1_stays_identical_to_sync(self):
        """steps_per_message=1 must not change the protocol semantics."""
        fns = _factories(2, base_seed=900)
        sync_env = SyncVectorEnv(fns)
        subproc_env = SubprocVectorEnv(fns, steps_per_message=1)
        try:
            obs_sync, _ = sync_env.reset()
            obs_sub, _ = subproc_env.reset()
            np.testing.assert_array_equal(obs_sync, obs_sub)
            for _ in range(50):
                actions = np.array([0, 1])
                result_sync = sync_env.step(actions)
                result_sub = subproc_env.step(actions)
                np.testing.assert_array_equal(result_sync.observations,
                                              result_sub.observations)
                np.testing.assert_array_equal(result_sync.rewards,
                                              result_sub.rewards)
                assert all("frames" not in info for info in result_sub.infos)
        finally:
            subproc_env.close()
            sync_env.close()
