"""Tests for repro.utils.logging, serialization and validation."""

import io

import numpy as np
import pytest

from repro.utils.exceptions import ShapeError
from repro.utils.logging import Logger, get_logger, set_global_level
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json
from repro.utils.validation import (
    check_array,
    check_choice,
    check_in_range,
    check_positive,
    check_probability,
    ensure_2d,
)


class TestLogger:
    def test_writes_to_stream(self):
        stream = io.StringIO()
        logger = Logger("test", level="info", stream=stream)
        logger.info("hello", value=3)
        output = stream.getvalue()
        assert "hello" in output
        assert "value=3" in output
        assert "test" in output

    def test_level_filtering(self):
        stream = io.StringIO()
        logger = Logger("test", level="warning", stream=stream)
        logger.info("should not appear")
        logger.warning("should appear")
        output = stream.getvalue()
        assert "should not appear" not in output
        assert "should appear" in output

    def test_invalid_level_rejected(self):
        logger = Logger("test")
        with pytest.raises(ValueError):
            logger.level = "verbose"

    def test_global_level(self):
        stream = io.StringIO()
        logger = Logger("global-test", stream=stream)
        set_global_level("error")
        try:
            logger.info("hidden")
            assert stream.getvalue() == ""
        finally:
            set_global_level("info")

    def test_get_logger_caches(self):
        assert get_logger("cache-me") is get_logger("cache-me")

    def test_float_formatting(self):
        stream = io.StringIO()
        logger = Logger("fmt", level="info", stream=stream)
        logger.info("x", pi=3.14159265358979)
        assert "3.14159" in stream.getvalue()


class TestSerialization:
    def test_json_roundtrip(self, tmp_path):
        data = {"a": 1, "b": [1.5, 2.5], "nested": {"flag": True}}
        path = save_json(tmp_path / "result.json", data)
        assert load_json(path) == data

    def test_json_numpy_types(self, tmp_path):
        data = {"scalar": np.float64(1.5), "int": np.int32(4),
                "array": np.arange(3), "flag": np.bool_(True)}
        path = save_json(tmp_path / "np.json", data)
        loaded = load_json(path)
        assert loaded["scalar"] == 1.5
        assert loaded["int"] == 4
        assert loaded["array"] == [0, 1, 2]
        assert loaded["flag"] is True

    def test_json_creates_parent_dirs(self, tmp_path):
        path = save_json(tmp_path / "deep" / "nested" / "f.json", {"x": 1})
        assert path.exists()

    def test_arrays_roundtrip(self, tmp_path):
        arrays = {"beta": np.random.default_rng(0).normal(size=(8, 2)),
                  "p": np.eye(8)}
        path = save_arrays(tmp_path / "model", arrays)
        assert path.suffix == ".npz"
        loaded = load_arrays(path)
        np.testing.assert_allclose(loaded["beta"], arrays["beta"])
        np.testing.assert_allclose(loaded["p"], arrays["p"])


class TestValidation:
    def test_check_array_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array([1.0, np.nan])

    def test_check_array_allows_nan_when_requested(self):
        arr = check_array([1.0, np.nan], allow_nan=True)
        assert np.isnan(arr[1])

    def test_ensure_2d_promotes_vector(self):
        arr = ensure_2d([1.0, 2.0, 3.0])
        assert arr.shape == (1, 3)

    def test_ensure_2d_checks_features(self):
        with pytest.raises(ShapeError):
            ensure_2d(np.zeros((4, 3)), n_features=5)

    def test_ensure_2d_rejects_3d(self):
        with pytest.raises(ShapeError):
            ensure_2d(np.zeros((2, 2, 2)))

    def test_check_positive(self):
        assert check_positive(1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0)
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(-1.0, strict=False)

    def test_check_probability(self):
        assert check_probability(0.7) == 0.7
        with pytest.raises(ValueError):
            check_probability(1.2)
        with pytest.raises(ValueError):
            check_probability(-0.1)

    def test_check_in_range(self):
        assert check_in_range(0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            check_in_range(1.0, 0.0, 1.0, inclusive=(True, False))

    def test_check_choice(self):
        assert check_choice("svd", ["svd", "qr"]) == "svd"
        with pytest.raises(ValueError):
            check_choice("lu", ["svd", "qr"])
