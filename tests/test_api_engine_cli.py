"""Tests for the engine, the report adapters, the CLI and shim equivalence."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import Budget, ExperimentSpec, get_spec, run
from repro.api.cli import main
from repro.experiments.execution_time import ExecutionTimeExperiment
from repro.experiments.training_curve import TrainingCurveExperiment
from repro.utils.serialization import save_json

SRC = str(Path(__file__).resolve().parents[1] / "src")


def _tiny_spec(**overrides):
    defaults = dict(name="engine-tiny", designs=("OS-ELM-L2",),
                    hidden_sizes=(16,), budget=Budget(max_episodes=8))
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestEngine:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            run(_tiny_spec(), backend="gpu")

    def test_backends_agree(self):
        spec = _tiny_spec(designs=("OS-ELM-L2", "OS-ELM"))
        serial = run(spec, backend="serial")
        vectorized = run(spec, backend="vectorized")
        assert serial.summary_rows() == vectorized.summary_rows()
        for a, b in zip(serial.results(), vectorized.results()):
            np.testing.assert_array_equal(a.curve.steps, b.curve.steps)
        # Both designs lock-step now: OS-ELM-L2 through the batched strategy,
        # unregularized OS-ELM through the generic per-agent strategy.
        assert vectorized.backend_counts() == {"lockstep": 2}

    def test_trials_in_grid_order(self):
        spec = _tiny_spec(designs=("OS-ELM-L2", "OS-ELM"), hidden_sizes=(8, 16))
        report = run(spec, backend="vectorized")
        observed = [(r.task.n_hidden, r.task.design) for r in report.trials]
        assert observed == [(8, "OS-ELM-L2"), (8, "OS-ELM"),
                            (16, "OS-ELM-L2"), (16, "OS-ELM")]

    def test_resource_table_kind(self):
        report = run("table3")
        assert report.resource_report is not None
        rows = report.summary_rows()
        assert [row["Units"] for row in rows] == [32, 64, 128, 192, 256]
        assert rows[-1]["fits"] is False                    # 256 exceeds BRAM
        assert "Table 3" in report.render()

    def test_multi_seed_rows_extended(self):
        spec = _tiny_spec(n_seeds=2, budget=Budget(max_episodes=3))
        report = run(spec, backend="serial")
        rows = report.summary_rows()
        assert len(rows) == 2
        assert {row["trial"] for row in rows} == {0, 1}
        with pytest.raises(ValueError, match="n_seeds"):
            report.to_training_curve_result()

    def test_registered_name_resolution(self):
        spec = get_spec("figure4", scale="ci")
        assert spec.designs == ("OS-ELM-L2-Lipschitz", "DQN")
        # The table2 alias must resolve to the execution-time spec (no
        # training needed to check name resolution).
        assert get_spec("table2", scale="ci").kind == "execution_time"
        # run() by name routes through the same resolution; table3 is the
        # cheap kind (analytical, zero trials).
        assert run("table3").spec.name == "table3"


class TestShimEquivalence:
    """The deprecated harness classes must reproduce their historical output."""

    def test_training_curve_rows_pinned(self):
        legacy = TrainingCurveExperiment.ci_scale(
            designs=("OS-ELM-L2",), hidden_sizes=(16,), max_episodes=8)
        with pytest.deprecated_call():
            collected = legacy.run()
        spec = legacy.to_spec()
        report = run(spec, backend="serial")
        assert collected.summary_rows() == report.summary_rows()
        # And the engine's vectorized path agrees too (the CI guarantee).
        assert run(spec, backend="vectorized").summary_rows() == collected.summary_rows()

    def test_training_curve_seeds_match_run_single(self):
        """The spec path must train on exactly run_single's seeds."""
        experiment = TrainingCurveExperiment.ci_scale(
            designs=("OS-ELM-L2",), hidden_sizes=(16,), max_episodes=5)
        direct = experiment.run_single("OS-ELM-L2", 16)
        report = run(experiment.to_spec(), backend="serial")
        assert report.trials[0].result.seed == direct.seed
        np.testing.assert_array_equal(report.trials[0].result.curve.steps,
                                      direct.curve.steps)

    def test_execution_time_rows_pinned(self):
        legacy = ExecutionTimeExperiment.ci_scale(
            designs=("OS-ELM-L2", "FPGA"), hidden_sizes=(16,), max_episodes=4)
        with pytest.deprecated_call():
            result = legacy.run()
        report = run(legacy.to_spec(), backend="serial")
        assert result.summary_rows() == report.summary_rows()
        timing = report.to_execution_time_result().get("FPGA", 16)
        assert timing.modelled_total > 0

    def test_scale_constructors_route_through_specs(self):
        paper = TrainingCurveExperiment.paper_scale()
        assert paper.training.max_episodes == 50_000
        assert paper.training.solved_threshold == 195.0
        ci = TrainingCurveExperiment.ci_scale()
        assert ci.training.max_episodes == 60
        assert ci.training.solved_threshold == 60.0
        # ci and paper must differ only in declarative fields, sharing seeds.
        assert ci.seed == paper.seed == 42
        et_paper = ExecutionTimeExperiment.paper_scale()
        assert et_paper.training.max_episodes == 50_000
        assert et_paper.seed == ExecutionTimeExperiment.ci_scale().seed == 7


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("figure4", "figure5", "table2", "table3"):
            assert name in out

    def test_run_report_cycle(self, tmp_path, capsys):
        spec = _tiny_spec(name="cli-tiny", budget=Budget(max_episodes=6))
        spec_path = tmp_path / "spec.json"
        save_json(spec_path, spec.to_json())
        out_dir = str(tmp_path / "artifacts")
        csv_a = str(tmp_path / "a.csv")
        csv_b = str(tmp_path / "b.csv")

        assert main(["run", str(spec_path), "--backend", "serial",
                     "--out", out_dir, "--csv", csv_a]) == 0
        first = capsys.readouterr().out
        assert "1 executed" in first and "0 from cache" in first

        # Second run: full cache hit, identical CSV.
        assert main(["run", str(spec_path), "--backend", "vectorized",
                     "--out", out_dir, "--csv", csv_b]) == 0
        second = capsys.readouterr().out
        assert "1 from cache" in second and "0 executed" in second
        assert Path(csv_a).read_text() == Path(csv_b).read_text()
        assert "design" in Path(csv_a).read_text()

        # report renders from cache only.
        assert main(["report", str(spec_path), "--out", out_dir]) == 0
        assert "OS-ELM-L2" in capsys.readouterr().out

    def test_report_without_artifacts_fails(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        save_json(spec_path, _tiny_spec(name="missing").to_json())
        assert main(["report", str(spec_path),
                     "--out", str(tmp_path / "empty")]) == 2
        assert "artifact store" in capsys.readouterr().err

    def test_run_table3_no_store_needed(self, capsys, tmp_path):
        assert main(["run", "table3", "--out", str(tmp_path / "a")]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_python_m_repro_subprocess(self):
        """`python -m repro list` must work as an actual module entry point."""
        proc = subprocess.run([sys.executable, "-m", "repro", "list"],
                              capture_output=True, text=True,
                              env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr
        assert "figure4" in proc.stdout


class TestPlotting:
    def test_plot_report_is_graceful_without_matplotlib(self, tmp_path):
        from repro.api.plotting import matplotlib_available, plot_report

        report = run(_tiny_spec(name="plot-tiny"), backend="serial")
        written = plot_report(report, tmp_path / "figs")
        if matplotlib_available():   # pragma: no cover - env-dependent branch
            assert written and all(path.exists() for path in written)
        else:
            assert written is None

    def test_cli_plot_flag(self, tmp_path, capsys):
        from repro.api.plotting import matplotlib_available

        spec_path = tmp_path / "spec.json"
        save_json(spec_path, _tiny_spec(name="plot-cli").to_json())
        fig_dir = tmp_path / "figs"
        # --plot is a bare flag (safe before or after the positional) and the
        # directory travels separately via --plot-dir.
        assert main(["run", "--plot", str(spec_path), "--out", str(tmp_path / "a"),
                     "--plot-dir", str(fig_dir)]) == 0
        out = capsys.readouterr().out
        if matplotlib_available():   # pragma: no cover - env-dependent branch
            assert "figure:" in out
            assert list(fig_dir.glob("*.png"))
        else:
            assert "matplotlib is not installed" in out

    def test_design_colors_are_entity_stable(self):
        """Color follows the design, not its position in the current plot."""
        from repro.api.plotting import design_color
        from repro.core.designs import DESIGN_NAMES

        colors = [design_color(design) for design in DESIGN_NAMES]
        assert len(set(colors)) == len(colors)            # distinct slots
        assert design_color("DQN") == design_color("DQN")  # stable mapping


class TestProgressStreaming:
    def test_progress_every_streams_to_stderr(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        save_json(spec_path, _tiny_spec(name="progress-cli").to_json())
        assert main(["run", str(spec_path), "--out", str(tmp_path / "a"),
                     "--backend", "serial", "--progress-every", "2",
                     "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "episode 2:" in err and "done:" in err
