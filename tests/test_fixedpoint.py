"""Tests for the repro.fixedpoint Q-format arithmetic (Section 4.2's 32-bit Q20)."""

import numpy as np
import pytest

from repro.fixedpoint.array import FixedPointArray, quantize_array
from repro.fixedpoint.ops import (
    fixed_add,
    fixed_divide,
    fixed_dot,
    fixed_matmul,
    fixed_multiply,
    fixed_outer,
    fixed_reciprocal,
    quantization_error,
)
from repro.fixedpoint.qformat import Q20, OverflowPolicy, QFormat, RoundingMode
from repro.utils.exceptions import ConfigurationError, FixedPointOverflowError


class TestQFormat:
    def test_q20_parameters(self):
        assert Q20.total_bits == 32
        assert Q20.frac_bits == 20
        assert Q20.int_bits == 11
        assert Q20.scale == pytest.approx(2.0 ** -20)
        assert Q20.max_value == pytest.approx(2048.0, rel=1e-5)
        assert Q20.min_value == pytest.approx(-2048.0, rel=1e-5)

    def test_invalid_formats_rejected(self):
        with pytest.raises(ConfigurationError):
            QFormat(total_bits=1, frac_bits=0)
        with pytest.raises(ConfigurationError):
            QFormat(total_bits=16, frac_bits=16)
        with pytest.raises(ConfigurationError):
            QFormat(total_bits=16, frac_bits=-1)

    def test_roundtrip_error_bounded_by_half_lsb(self, rng):
        values = rng.uniform(-100, 100, size=1000)
        quantized = Q20.quantize(values)
        assert np.max(np.abs(quantized - values)) <= Q20.scale / 2 + 1e-15

    def test_exact_values_preserved(self):
        # Multiples of the LSB are represented exactly.
        values = np.array([0.0, 1.0, -1.0, 0.5, 1.25, -3.75])
        np.testing.assert_array_equal(Q20.quantize(values), values)

    def test_saturation(self):
        fmt = QFormat(16, 8)   # range about [-128, 128)
        assert fmt.quantize(1000.0) == pytest.approx(fmt.max_value)
        assert fmt.quantize(-1000.0) == pytest.approx(fmt.min_value)

    def test_error_policy_raises(self):
        fmt = QFormat(16, 8, overflow=OverflowPolicy.ERROR)
        with pytest.raises(FixedPointOverflowError):
            fmt.to_raw(1000.0)

    def test_wrap_policy(self):
        fmt = QFormat(8, 0, overflow=OverflowPolicy.WRAP)
        # 8-bit signed wraps 128 -> -128
        assert fmt.quantize(128.0) == -128.0

    def test_floor_rounding(self):
        fmt = QFormat(16, 4, rounding=RoundingMode.FLOOR)
        assert fmt.quantize(0.99 / 16 + 0.0) <= 0.99 / 16

    def test_nearest_rounding_symmetric(self):
        fmt = QFormat(16, 1)
        assert fmt.quantize(0.25) == pytest.approx(0.5)
        assert fmt.quantize(-0.25) == pytest.approx(-0.5)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Q20.to_raw(np.nan)

    def test_representable(self):
        assert Q20.representable(1.0)
        assert not QFormat(8, 0).representable(0.5)

    def test_with_policy(self):
        fmt = Q20.with_policy(overflow=OverflowPolicy.ERROR)
        assert fmt.overflow is OverflowPolicy.ERROR
        assert fmt.total_bits == Q20.total_bits

    def test_name(self):
        assert "20" in Q20.name


class TestFixedPointArray:
    def test_roundtrip(self, rng):
        values = rng.uniform(-10, 10, size=(4, 5))
        arr = FixedPointArray(values)
        np.testing.assert_allclose(arr.to_float(), values, atol=Q20.scale)

    def test_zeros_and_eye(self):
        z = FixedPointArray.zeros((3, 3))
        np.testing.assert_array_equal(z.to_float(), np.zeros((3, 3)))
        eye = FixedPointArray.eye(3)
        np.testing.assert_array_equal(eye.to_float(), np.eye(3))

    def test_shape_properties(self):
        arr = FixedPointArray(np.zeros((2, 7)))
        assert arr.shape == (2, 7)
        assert arr.ndim == 2
        assert arr.size == 14
        assert len(arr) == 2

    def test_nbytes_uses_nominal_width(self):
        arr = FixedPointArray(np.zeros(10), QFormat(16, 8))
        assert arr.nbytes == 20

    def test_indexing(self):
        arr = FixedPointArray(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert arr[1, 1].item() == pytest.approx(4.0)
        sub = arr[0]
        np.testing.assert_allclose(sub.to_float(), [1.0, 2.0])

    def test_setitem_quantizes(self):
        arr = FixedPointArray.zeros(4)
        arr[2] = 1.3
        assert arr.to_float()[2] == pytest.approx(1.3, abs=Q20.scale)

    def test_operator_overloads(self):
        a = FixedPointArray(np.array([1.0, 2.0]))
        b = FixedPointArray(np.array([0.5, 0.25]))
        np.testing.assert_allclose((a + b).to_float(), [1.5, 2.25])
        np.testing.assert_allclose((a - b).to_float(), [0.5, 1.75])
        np.testing.assert_allclose((a * b).to_float(), [0.5, 0.5])
        np.testing.assert_allclose((a / b).to_float(), [2.0, 8.0])

    def test_array_protocol(self):
        arr = FixedPointArray(np.array([1.0, 2.0]))
        as_np = np.asarray(arr)
        np.testing.assert_allclose(as_np, [1.0, 2.0])

    def test_copy_independent(self):
        a = FixedPointArray(np.array([1.0]))
        b = a.copy()
        b[0] = 5.0
        assert a.to_float()[0] == pytest.approx(1.0)

    def test_max_abs_error_vs(self, rng):
        ref = rng.uniform(-1, 1, size=8)
        arr = FixedPointArray(ref)
        assert arr.max_abs_error_vs(ref) <= Q20.scale

    def test_quantize_array_helper(self):
        assert quantize_array(0.1) == pytest.approx(0.1, abs=Q20.scale)


class TestFixedOps:
    def test_add_exact_on_grid(self):
        a, b = FixedPointArray(np.array([1.5])), FixedPointArray(np.array([2.25]))
        assert fixed_add(a, b).to_float()[0] == 3.75

    def test_add_saturates(self):
        fmt = QFormat(16, 8)
        a = FixedPointArray(np.array([120.0]), fmt)
        b = FixedPointArray(np.array([120.0]), fmt)
        assert fixed_add(a, b, fmt=fmt).to_float()[0] == pytest.approx(fmt.max_value)

    def test_multiply_close_to_float(self, rng):
        a = rng.uniform(-5, 5, size=(3, 4))
        b = rng.uniform(-5, 5, size=(3, 4))
        result = fixed_multiply(a, b).to_float()
        np.testing.assert_allclose(result, a * b, atol=1e-4)

    def test_divide(self):
        result = fixed_divide(np.array([1.0, 3.0]), np.array([4.0, 2.0]))
        np.testing.assert_allclose(result.to_float(), [0.25, 1.5], atol=Q20.scale)

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            fixed_divide(np.array([1.0]), np.array([0.0]))

    def test_reciprocal(self):
        assert fixed_reciprocal(np.array([8.0])).to_float()[0] == pytest.approx(0.125)

    def test_dot_matches_float_within_tolerance(self, rng):
        a = rng.uniform(-1, 1, size=64)
        b = rng.uniform(-1, 1, size=64)
        result = fixed_dot(a, b).item()
        assert result == pytest.approx(float(a @ b), abs=64 * Q20.scale)

    def test_dot_precise_accumulate(self, rng):
        a = rng.uniform(-1, 1, size=32)
        b = rng.uniform(-1, 1, size=32)
        precise = fixed_dot(a, b, precise_accumulate=True).item()
        assert precise == pytest.approx(float(a @ b), abs=Q20.scale)

    def test_dot_shape_mismatch(self):
        with pytest.raises(ValueError):
            fixed_dot(np.ones(3), np.ones(4))

    def test_matmul_matches_float(self, rng):
        a = rng.uniform(-2, 2, size=(6, 8))
        b = rng.uniform(-2, 2, size=(8, 3))
        result = fixed_matmul(a, b).to_float()
        np.testing.assert_allclose(result, a @ b, atol=8 * Q20.scale * 4)

    def test_matmul_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            fixed_matmul(np.ones((2, 3)), np.ones((4, 2)))

    def test_matmul_vector_promotion(self):
        result = fixed_matmul(np.ones(3), np.ones(3))
        assert result.to_float().item() == pytest.approx(3.0)

    def test_outer(self, rng):
        a, b = rng.uniform(-1, 1, 4), rng.uniform(-1, 1, 5)
        np.testing.assert_allclose(fixed_outer(a, b).to_float(), np.outer(a, b), atol=1e-5)

    def test_quantization_error_bound(self, rng):
        values = rng.uniform(-100, 100, size=50)
        assert quantization_error(values) <= Q20.scale / 2 + 1e-15

    def test_coarse_format_error_larger(self, rng):
        values = rng.uniform(-1, 1, size=100)
        coarse = QFormat(16, 8)
        assert quantization_error(values, coarse) > quantization_error(values, Q20)
