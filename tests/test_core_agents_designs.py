"""Tests for Algorithm 1's agents and the seven-design factory."""

import numpy as np
import pytest

from repro.baselines.dqn import DQNAgent
from repro.core.agents import AgentConfig, ELMQAgent, OSELMQAgent
from repro.core.designs import DESIGN_NAMES, SOFTWARE_DESIGNS, design_spec, make_design
from repro.core.regularization import RegularizationConfig
from repro.fpga.accelerator import FPGAAcceleratedOSELM


class TestAgentConfig:
    def test_paper_defaults(self, tiny_agent_config):
        config = tiny_agent_config
        assert config.greedy_probability == 0.7       # epsilon_1
        assert config.update_probability == 0.5        # epsilon_2
        assert config.target_update_interval == 2      # UPDATE_STEP
        assert config.clip_low == -1.0 and config.clip_high == 1.0
        assert config.reset_after_episodes == 300
        assert config.activation == "relu"

    def test_input_size_cartpole(self, tiny_agent_config):
        assert tiny_agent_config.input_size == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            AgentConfig(n_states=0, n_actions=2)
        with pytest.raises(ValueError):
            AgentConfig(n_states=4, n_actions=2, gamma=1.5)
        with pytest.raises(ValueError):
            AgentConfig(n_states=4, n_actions=2, greedy_probability=2.0)
        with pytest.raises(ValueError):
            AgentConfig(n_states=4, n_actions=2, target_update_interval=0)
        with pytest.raises(ValueError):
            AgentConfig(n_states=4, n_actions=2, reset_after_episodes=0)

    def test_with_updates(self, tiny_agent_config):
        changed = tiny_agent_config.with_updates(n_hidden=64)
        assert changed.n_hidden == 64
        assert tiny_agent_config.n_hidden == 16


def _fill_buffer(agent, rng, steps=None):
    """Drive the agent with synthetic transitions until initial training happens."""
    steps = steps if steps is not None else agent.config.n_hidden + 5
    state = rng.uniform(-0.05, 0.05, size=4)
    for _ in range(steps):
        action = agent.act(state)
        next_state = state + rng.normal(scale=0.01, size=4)
        reward = float(rng.uniform(-1.0, 1.0))
        agent.observe(state, action, reward, next_state, False)
        state = next_state
    return state


class TestOSELMQAgent:
    def test_initial_training_triggers_when_buffer_full(self, tiny_agent_config, rng):
        agent = OSELMQAgent(tiny_agent_config)
        assert not agent.initial_training_done
        _fill_buffer(agent, rng)
        assert agent.initial_training_done
        assert agent.breakdown.counts.get("init_train", 0) == 1

    def test_operation_labels_recorded(self, tiny_agent_config, rng):
        agent = OSELMQAgent(tiny_agent_config)
        _fill_buffer(agent, rng, steps=tiny_agent_config.n_hidden + 40)
        counts = agent.breakdown.counts
        assert counts.get("predict_init", 0) > 0
        assert counts.get("predict_seq", 0) > 0
        assert counts.get("seq_train", 0) > 0
        assert "train_DQN" not in counts

    def test_random_update_gate_reduces_updates(self, rng):
        config = AgentConfig(n_states=4, n_actions=2, n_hidden=16, seed=0,
                             update_probability=0.0)
        agent = OSELMQAgent(config)
        _fill_buffer(agent, rng, steps=60)
        assert agent.breakdown.counts.get("seq_train", 0) == 0

    def test_always_update_gate(self, rng):
        config = AgentConfig(n_states=4, n_actions=2, n_hidden=16, seed=0,
                             update_probability=1.0)
        agent = OSELMQAgent(config)
        _fill_buffer(agent, rng, steps=16 + 30)
        assert agent.breakdown.counts.get("seq_train", 0) == 30

    def test_act_returns_valid_action(self, tiny_agent_config, rng):
        agent = OSELMQAgent(tiny_agent_config)
        for _ in range(10):
            assert agent.act(rng.uniform(-1, 1, 4)) in (0, 1)

    def test_target_sync_interval(self, rng):
        config = AgentConfig(n_states=4, n_actions=2, n_hidden=8, seed=0,
                             target_update_interval=2)
        agent = OSELMQAgent(config)
        _fill_buffer(agent, rng, steps=20)
        beta_before = agent.model.beta.copy()
        agent._target_beta = np.zeros_like(beta_before)
        agent.end_episode(1)     # episodes_completed becomes 1 -> no sync
        assert np.allclose(agent._target_beta, 0.0)
        agent.end_episode(2)     # episodes_completed becomes 2 -> sync
        np.testing.assert_array_equal(agent._target_beta, agent.model.beta)

    def test_weight_reset_rule(self, rng):
        config = AgentConfig(n_states=4, n_actions=2, n_hidden=8, seed=0,
                             reset_after_episodes=3)
        agent = OSELMQAgent(config)
        _fill_buffer(agent, rng, steps=20)
        assert agent.initial_training_done
        for _ in range(3):
            agent.register_progress(False)
        assert agent.weight_resets == 1
        assert not agent.initial_training_done
        assert agent.global_step == 0

    def test_reset_not_triggered_when_solved(self, rng):
        config = AgentConfig(n_states=4, n_actions=2, n_hidden=8, seed=0,
                             reset_after_episodes=2)
        agent = OSELMQAgent(config)
        for _ in range(10):
            agent.register_progress(True)
        assert agent.weight_resets == 0

    def test_clipped_targets_bound_beta_updates(self, rng):
        """Every sequential target passed to the model lies in [-1, 1]."""
        config = AgentConfig(n_states=4, n_actions=2, n_hidden=16, seed=0,
                             update_probability=1.0)
        agent = OSELMQAgent(config)
        recorded = []
        original = agent.q_online.update

        def spy(state, action, target):
            recorded.append(target)
            return original(state, action, target)

        agent.q_online.update = spy
        _fill_buffer(agent, rng, steps=60)
        assert recorded
        assert all(-1.0 <= t <= 1.0 for t in recorded)

    def test_diagnostics_available(self, tiny_agent_config, rng):
        agent = OSELMQAgent(tiny_agent_config)
        _fill_buffer(agent, rng)
        assert agent.lipschitz_upper_bound() > 0
        assert agent.beta_norm() > 0


class TestELMQAgent:
    def test_retrains_each_time_buffer_fills(self, rng):
        config = AgentConfig(n_states=4, n_actions=2, n_hidden=8, seed=0)
        agent = ELMQAgent(config)
        _fill_buffer(agent, rng, steps=8 * 3 + 2)
        # the buffer is cleared after each batch fit, so 3 initial trainings fit in 26 steps
        assert agent.breakdown.counts.get("init_train", 0) == 3
        assert agent.breakdown.counts.get("seq_train", 0) is None or \
            agent.breakdown.counts.get("seq_train", 0) == 0

    def test_no_sequential_updates(self, rng):
        config = AgentConfig(n_states=4, n_actions=2, n_hidden=8, seed=0)
        agent = ELMQAgent(config)
        _fill_buffer(agent, rng, steps=40)
        assert "seq_train" not in agent.breakdown.counts


class TestDesignFactory:
    def test_all_names_present(self):
        assert DESIGN_NAMES == ("ELM", "OS-ELM", "OS-ELM-L2", "OS-ELM-Lipschitz",
                                "OS-ELM-L2-Lipschitz", "DQN", "FPGA")
        assert "FPGA" not in SOFTWARE_DESIGNS

    def test_design_spec_regularization(self):
        assert design_spec("OS-ELM").regularization == RegularizationConfig.none()
        assert design_spec("OS-ELM-L2").regularization.l2_delta == 1.0
        assert design_spec("OS-ELM-Lipschitz").regularization.spectral_normalize_alpha
        spec = design_spec("OS-ELM-L2-Lipschitz")
        assert spec.regularization.l2_delta == 0.5
        assert spec.regularization.spectral_normalize_alpha
        assert design_spec("FPGA").runs_on_fpga
        assert not design_spec("DQN").is_proposed

    def test_design_spec_unknown(self):
        with pytest.raises(ValueError):
            design_spec("A3C")

    def test_make_design_types(self):
        assert isinstance(make_design("ELM", n_hidden=8, seed=0), ELMQAgent)
        assert isinstance(make_design("OS-ELM", n_hidden=8, seed=0), OSELMQAgent)
        assert isinstance(make_design("DQN", n_hidden=8, seed=0), DQNAgent)
        fpga_agent = make_design("FPGA", n_hidden=16, seed=0)
        assert isinstance(fpga_agent, OSELMQAgent)
        assert isinstance(fpga_agent.model, FPGAAcceleratedOSELM)

    def test_make_design_names_propagate(self):
        agent = make_design("OS-ELM-L2-Lipschitz", n_hidden=8, seed=0)
        assert agent.name == "OS-ELM-L2-Lipschitz"
        assert make_design("FPGA", n_hidden=16, seed=0).name == "FPGA"

    def test_make_design_config_overrides(self):
        agent = make_design("OS-ELM", n_hidden=8, seed=0, greedy_probability=0.9)
        assert agent.config.greedy_probability == 0.9
        dqn = make_design("DQN", n_hidden=8, seed=0, batch_size=16, min_replay_size=16)
        assert dqn.config.batch_size == 16

    def test_make_design_unknown(self):
        with pytest.raises(ValueError):
            make_design("PPO")

    def test_fpga_design_uses_l2_lipschitz(self):
        agent = make_design("FPGA", n_hidden=16, seed=0)
        assert agent.config.regularization.l2_delta == 0.5
        assert agent.config.regularization.spectral_normalize_alpha


class TestDQNAgent:
    def _agent(self, **overrides):
        from repro.baselines.dqn import DQNConfig
        defaults = dict(n_states=4, n_actions=2, n_hidden=16, seed=0,
                        replay_capacity=500, min_replay_size=32, batch_size=32)
        defaults.update(overrides)
        return DQNAgent(DQNConfig(**defaults))

    def test_act_valid(self, rng):
        agent = self._agent()
        assert agent.act(rng.normal(size=4)) in (0, 1)
        assert agent.breakdown.counts.get("predict_1", 0) == 1

    def test_training_starts_after_min_replay(self, rng):
        agent = self._agent()
        state = rng.normal(size=4)
        for i in range(31):
            agent.observe(state, 0, 0.0, state, False)
        assert agent.train_steps == 0
        agent.observe(state, 0, 0.0, state, False)
        assert agent.train_steps == 1
        assert agent.breakdown.counts.get("train_DQN", 0) == 1
        assert agent.breakdown.counts.get("predict_32", 0) == 2

    def test_target_network_sync(self, rng):
        agent = self._agent(target_update_interval=1)
        state = rng.normal(size=4)
        for _ in range(40):
            agent.observe(state, agent.act(state), 0.0, state, False)
        # after training the online network differs from the target network...
        assert not np.allclose(agent.q_network.layers[0].weights,
                               agent.target_network.layers[0].weights)
        agent.end_episode(1)
        np.testing.assert_array_equal(agent.q_network.layers[0].weights,
                                      agent.target_network.layers[0].weights)

    def test_reset_weights(self, rng):
        agent = self._agent()
        state = rng.normal(size=4)
        for _ in range(40):
            agent.observe(state, 0, 0.0, state, False)
        agent.reset_weights()
        assert agent.train_steps == 0
        assert len(agent.replay) == 0
        assert agent.weight_resets == 1

    def test_q_values_shape(self, rng):
        agent = self._agent()
        assert agent.q_values(rng.normal(size=4)).shape == (2,)

    def test_config_validation(self):
        from repro.baselines.dqn import DQNConfig
        with pytest.raises(ValueError):
            DQNConfig(n_states=4, n_actions=2, min_replay_size=8, batch_size=32)
        with pytest.raises(ValueError):
            DQNConfig(n_states=4, n_actions=2, learning_rate=0.0)

    def test_replay_buffer(self, rng):
        from repro.baselines.replay_buffer import ReplayBuffer
        buffer = ReplayBuffer(capacity=10, n_states=4, seed=0)
        for i in range(15):
            buffer.add(np.full(4, i), i % 2, float(i), np.full(4, i + 1), False)
        assert len(buffer) == 10
        assert buffer.full
        states, actions, rewards, next_states, dones = buffer.sample(6)
        assert states.shape == (6, 4)
        assert rewards.min() >= 5.0     # oldest entries were overwritten
        buffer.clear()
        assert len(buffer) == 0

    def test_replay_buffer_errors(self):
        from repro.baselines.replay_buffer import ReplayBuffer
        with pytest.raises(ValueError):
            ReplayBuffer(0, 4)
        buffer = ReplayBuffer(4, 2, seed=0)
        with pytest.raises(ValueError):
            buffer.sample(2)
