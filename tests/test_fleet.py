"""The elastic fleet: scaling policy, supervisor, autoscaler, CLI.

Policy tests drive :class:`~repro.fleet.ThresholdPolicy` with a fake
monotonic clock, so hysteresis, cooldown and idle-grace behaviour are
deterministic.  The end-to-end tests run real broker + real worker
processes and assert the load-bearing contract: an autoscaled distributed
sweep loses no leases and produces results identical to the serial
backend under an aggressive scaling schedule.
"""

import threading
import time

import pytest

from repro.fleet import (
    AutoscaleConfig,
    FleetAutoscaler,
    FleetObservation,
    FleetReport,
    ScalingDecision,
    ThresholdPolicy,
    WorkerSupervisor,
    WorkerView,
)
from repro.parallel.sweep import SweepRunner, SweepSpec
from repro.rl.runner import TrainingConfig


def _tiny_spec(n_seeds=3, max_episodes=3):
    return SweepSpec(designs=("OS-ELM-L2",), n_seeds=n_seeds, n_hidden=8,
                     training=TrainingConfig(max_episodes=max_episodes),
                     root_seed=123)


class _FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _obs(queued, workers, done=0, total=None):
    """Observation helper: workers is [(id, leases)] or [(id, leases, draining)]."""
    views = []
    for row in workers:
        worker_id, leases = row[0], row[1]
        draining = row[2] if len(row) > 2 else False
        views.append(WorkerView(worker_id=worker_id, connected=True,
                                draining=draining, leases=leases,
                                completed=0))
    leased = sum(v.leases for v in views)
    if total is None:
        total = queued + leased + done + 10    # leave the sweep unfinished
    return FleetObservation(queued=queued, leased=leased, done=done,
                            total=total, workers=tuple(views))


class TestThresholdPolicy:
    def test_tops_up_to_min_without_cooldown(self):
        clock = _FakeClock()
        policy = ThresholdPolicy(min_workers=2, max_workers=4, clock=clock)
        first = policy.decide(_obs(5, []))
        assert first.spawn == 2 and "min_workers" in first.reason
        # The floor ignores cooldown: a crashed fleet refills immediately.
        second = policy.decide(_obs(5, [("a", 1)]))
        assert second.spawn == 1

    def test_scales_up_on_high_water_backlog(self):
        clock = _FakeClock()
        policy = ThresholdPolicy(min_workers=1, max_workers=3,
                                 high_water=2.0, clock=clock)
        decision = policy.decide(_obs(4, [("a", 1)]))   # backlog 4/1 = 4.0
        assert decision.spawn == 1 and "high_water" in decision.reason

    def test_cooldown_blocks_consecutive_scale_ups(self):
        clock = _FakeClock()
        policy = ThresholdPolicy(min_workers=1, max_workers=4,
                                 high_water=1.0, cooldown_seconds=5.0,
                                 clock=clock)
        assert policy.decide(_obs(8, [("a", 1)])).spawn == 1
        assert not policy.decide(_obs(8, [("a", 1), ("b", 1)]))
        clock.advance(5.0)
        assert policy.decide(_obs(8, [("a", 1), ("b", 1)])).spawn == 1

    def test_scale_up_step_and_max_bound(self):
        clock = _FakeClock()
        policy = ThresholdPolicy(min_workers=1, max_workers=3,
                                 high_water=1.0, scale_up_step=4, clock=clock)
        assert policy.decide(_obs(9, [("a", 1)])).spawn == 2   # capped at max
        clock.advance(10.0)
        assert not policy.decide(
            _obs(9, [("a", 1), ("b", 1), ("c", 1)]))           # at ceiling

    def test_idle_grace_then_retire_longest_idle_first(self):
        clock = _FakeClock()
        policy = ThresholdPolicy(min_workers=1, max_workers=4,
                                 idle_grace_seconds=2.0, low_water=0.5,
                                 cooldown_seconds=0.0, clock=clock)
        # "a" goes idle now; "b" only one tick later.
        assert not policy.decide(_obs(0, [("a", 0), ("b", 1)]))
        clock.advance(1.0)
        assert not policy.decide(_obs(0, [("a", 0), ("b", 0)]))
        clock.advance(1.0)                      # a idle 2s, b idle 1s
        decision = policy.decide(_obs(0, [("a", 0), ("b", 0)]))
        assert decision.retire == ("a",) and "idle" in decision.reason

    def test_busy_worker_never_retired(self):
        clock = _FakeClock()
        policy = ThresholdPolicy(min_workers=0, max_workers=4,
                                 idle_grace_seconds=0.0, cooldown_seconds=0.0,
                                 clock=clock)
        decision = policy.decide(_obs(0, [("busy", 2), ("idle", 0)]))
        assert decision.retire == ("idle",)

    def test_hysteresis_band_blocks_scale_down(self):
        clock = _FakeClock()
        policy = ThresholdPolicy(min_workers=1, max_workers=4,
                                 high_water=2.0, low_water=0.5,
                                 idle_grace_seconds=0.0, cooldown_seconds=0.0,
                                 clock=clock)
        # backlog 1.0 sits inside the (0.5, 2.0) hysteresis band: no action
        # in either direction even with an idle worker available.
        assert not policy.decide(_obs(2, [("a", 0), ("b", 1)]))

    def test_never_drains_below_min_workers(self):
        clock = _FakeClock()
        policy = ThresholdPolicy(min_workers=2, max_workers=4,
                                 idle_grace_seconds=0.0, cooldown_seconds=0.0,
                                 clock=clock)
        decision = policy.decide(_obs(0, [("a", 0), ("b", 0), ("c", 0)]))
        assert len(decision.retire) == 1        # 3 alive, floor 2

    def test_draining_workers_not_counted_alive(self):
        clock = _FakeClock()
        policy = ThresholdPolicy(min_workers=1, max_workers=4,
                                 high_water=2.0, clock=clock)
        # One live worker + one already draining: backlog is 4/1, scale up.
        decision = policy.decide(_obs(4, [("a", 1), ("leaving", 0, True)]))
        assert decision.spawn == 1

    def test_completed_sweep_is_a_no_op(self):
        policy = ThresholdPolicy(clock=_FakeClock())
        done = FleetObservation(queued=0, leased=0, done=5, total=5,
                                workers=(WorkerView("a", True, False, 0, 5),))
        assert not policy.decide(done)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="min_workers"):
            ThresholdPolicy(min_workers=-1)
        with pytest.raises(ValueError, match="max_workers"):
            ThresholdPolicy(min_workers=3, max_workers=2)
        with pytest.raises(ValueError, match="hysteresis"):
            ThresholdPolicy(low_water=3.0, high_water=2.0)
        with pytest.raises(ValueError, match="scale_up_step"):
            ThresholdPolicy(scale_up_step=0)


class TestObservationAndConfig:
    def test_observation_from_snapshot(self):
        snapshot = {
            "tasks": {"total": 10, "queued": 4, "leased": 2, "done": 4},
            "workers": {
                "w1": {"connected": True, "draining": False, "leases": 2,
                       "completed": 3},
                "w2": {"connected": True, "draining": True, "leases": 0,
                       "completed": 1},
                "w3": {"connected": False, "draining": False, "leases": 0,
                       "completed": 0},
            },
        }
        obs = FleetObservation.from_snapshot(snapshot)
        assert (obs.queued, obs.leased, obs.done, obs.total) == (4, 2, 4, 10)
        assert [w.worker_id for w in obs.alive] == ["w1"]
        assert obs.remaining == 6

    def test_config_builds_matching_policy(self):
        config = AutoscaleConfig(min_workers=2, max_workers=7,
                                 high_water=3.0, low_water=1.0,
                                 idle_grace_seconds=9.0,
                                 cooldown_seconds=11.0, scale_up_step=2)
        policy = config.build_policy()
        assert policy.min_workers == 2 and policy.max_workers == 7
        assert policy.high_water == 3.0 and policy.low_water == 1.0
        assert policy.idle_grace_seconds == 9.0
        assert policy.cooldown_seconds == 11.0
        assert policy.scale_up_step == 2

    def test_report_summary_is_grep_stable(self):
        report = FleetReport(scale_ups=2, workers_spawned=3, peak_workers=3,
                             drains_requested=1,
                             worker_lifetimes=[1.0, 2.5],
                             broker_counters={"drains_completed": 3,
                                              "drain_requeued_tasks": 0})
        line = report.summary()
        assert "scale_ups=2" in line
        assert "graceful_drains=3" in line
        assert "drain_requeues=0" in line
        assert "worker_lifetimes=1.0-2.5s" in line
        empty = FleetReport().summary()
        assert "scale_ups=0" in empty and "worker_lifetimes=n/a" in empty

    def test_scaling_decision_truthiness(self):
        assert not ScalingDecision()
        assert ScalingDecision(spawn=1)
        assert ScalingDecision(retire=("a",))


class TestEndToEnd:
    """Real broker + real worker processes (slower; the acceptance tests)."""

    def test_supervisor_spawns_reaps_and_stops(self):
        from repro.distributed.broker import SweepBroker

        tasks = _tiny_spec(n_seeds=2).tasks()
        with SweepBroker(tasks) as broker:
            host, port = broker.address
            supervisor = WorkerSupervisor(host, port, id_prefix="t")
            spawned = supervisor.scale_up(1)
            assert spawned == ["t-0"]
            assert supervisor.owns("t-0") and not supervisor.owns("t-9")
            assert broker.join(timeout=60.0)
            deadline = time.monotonic() + 10.0
            reaped = []
            while time.monotonic() < deadline and not reaped:
                reaped = supervisor.reap()
                time.sleep(0.05)
            assert [r[0] for r in reaped] == ["t-0"]
            worker_id, exitcode, lifetime = reaped[0]
            assert exitcode == 0 and lifetime > 0
            assert supervisor.alive_count() == 0
            assert supervisor.stop_all() == []

    def test_sigterm_drains_worker_gracefully(self):
        """Satellite 1: SIGTERM mid-sweep -> finish in-flight task, deliver,
        exit 0 — the broker records a graceful drain and requeues nothing."""
        from repro.distributed.broker import SweepBroker

        tasks = _tiny_spec(n_seeds=30, max_episodes=20).tasks()
        with SweepBroker(tasks) as broker:
            host, port = broker.address
            supervisor = WorkerSupervisor(host, port, id_prefix="sig")
            supervisor.scale_up(1)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and broker.completed_count < 2:
                time.sleep(0.02)
            assert broker.completed_count >= 2, "worker never started"
            assert supervisor.signal(["sig-0"]) == ["sig-0"]
            deadline = time.monotonic() + 30.0
            reaped = []
            while time.monotonic() < deadline and not reaped:
                reaped = supervisor.reap()
                time.sleep(0.05)
            assert reaped and reaped[0][0] == "sig-0"
            assert reaped[0][1] == 0, "SIGTERM exit was not graceful"
            completed_at_exit = broker.completed_count
            assert completed_at_exit < len(tasks), \
                "worker finished the whole grid before the signal"
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and broker.drains_completed < 1:
                time.sleep(0.02)
            assert broker.drains_completed == 1
            assert broker.drain_requeued_tasks == 0
            assert broker.requeued_tasks == 0
            # finish the sweep so the broker shuts down cleanly
            supervisor.scale_up(1)
            assert broker.join(timeout=120.0)
            supervisor.stop_all()

    def test_autoscaled_sweep_matches_serial_backend(self):
        """Acceptance: scale-up + graceful drain mid-sweep, zero lost
        leases, results identical to the serial backend.

        The grid is shaped to force both scaling directions: a pile of
        quick trials builds the backlog that triggers a scale-up, and one
        deterministically long trial (``stop_when_solved=False``) leaves
        a single worker grinding the tail while the others idle past the
        grace period and get drained mid-sweep.
        """
        tasks = _tiny_spec(n_seeds=16, max_episodes=5).tasks()
        tasks += SweepSpec(
            designs=("OS-ELM-L2",), n_seeds=1, n_hidden=8,
            training=TrainingConfig(max_episodes=3000,
                                    stop_when_solved=False),
            root_seed=321).tasks()
        serial = SweepRunner(tasks, backend="serial").run()
        config = AutoscaleConfig(min_workers=1, max_workers=2,
                                 poll_interval=0.05, idle_grace_seconds=0.2,
                                 cooldown_seconds=0.1, high_water=1.5,
                                 low_water=0.5)
        elastic = SweepRunner(tasks, backend="distributed",
                              autoscale=config).run()
        assert elastic.fleet_report is not None
        report = elastic.fleet_report
        assert report.scale_ups >= 1
        assert report.workers_spawned >= 1
        assert report.drain_requeues == 0
        assert report.broker_counters.get("requeued_tasks", 0) == 0
        assert report.graceful_drains >= 1   # the mid-sweep idle drain
        assert len(elastic) == len(serial)
        for (task_a, result_a), (task_b, result_b) in zip(serial.entries,
                                                          elastic.entries):
            assert task_a.key() == task_b.key()
            assert result_a.episodes_to_solve == result_b.episodes_to_solve
            assert result_a.episodes == result_b.episodes
            assert list(result_a.curve.steps) == list(result_b.curve.steps)
        assert set(elastic.backend_counts()) == {"distributed"}

    def test_autoscale_rejected_off_distributed_backend(self):
        with pytest.raises(ValueError, match="autoscale"):
            SweepRunner(_tiny_spec(), backend="serial", autoscale=True)
        from repro.api.engine import run

        with pytest.raises(ValueError, match="autoscale"):
            run(_spec_for_engine(), backend="serial", autoscale=True)


def _spec_for_engine():
    from repro.api.spec import Budget, ExperimentSpec

    return ExperimentSpec(name="fleet-test", kind="training_curve",
                          designs=("OS-ELM-L2",), hidden_sizes=(8,),
                          env_ids=("CartPole-v0",), n_seeds=1,
                          budget=Budget(max_episodes=3))


class TestFleetAutoscaleCLI:
    def test_fleet_autoscale_requires_live_broker(self, capsys):
        import socket

        from repro.api.cli import main

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["fleet", "autoscale", "--connect",
                     f"127.0.0.1:{port}"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["fleet", "autoscale", "--connect", "not-an-address"]) == 2

    def test_fleet_autoscale_attaches_to_external_broker(self, capsys):
        """`repro fleet autoscale --connect` drives a broker it did not
        start: spawns workers, drains them, exits when the broker goes."""
        from repro.api.cli import main
        from repro.distributed.broker import SweepBroker

        tasks = _tiny_spec(n_seeds=2).tasks()
        broker = SweepBroker(tasks)
        broker.start()
        host, port = broker.address

        def close_when_done():
            broker.join(timeout=120.0)
            broker.close()

        closer = threading.Thread(target=close_when_done, daemon=True)
        closer.start()
        try:
            code = main(["fleet", "autoscale", "--connect", f"{host}:{port}",
                         "--min", "1", "--max", "2",
                         "--autoscale-interval", "0.1",
                         "--autoscale-idle-grace", "0.2",
                         "--autoscale-cooldown", "0.1", "--watch"])
        finally:
            broker.close()
            closer.join(timeout=5.0)
        assert code == 0
        out = capsys.readouterr().out
        assert "autoscaling fleet" in out
        assert "fleet: scale_ups=" in out
        assert "drain_requeues=0" in out
        assert broker.completed_count == len(tasks)
