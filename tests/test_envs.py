"""Tests for the repro.envs Gym-style environment suite."""

import math

import numpy as np
import pytest

from repro.envs import (
    AcrobotEnv,
    Box,
    CartPoleEnv,
    Discrete,
    EpisodeStatistics,
    MountainCarEnv,
    TimeLimit,
    make,
    registry,
    spec,
)
from repro.envs.core import StepResult


class TestSpaces:
    def test_discrete_sample_and_contains(self):
        space = Discrete(3, seed=0)
        for _ in range(20):
            assert space.contains(space.sample())
        assert not space.contains(3)
        assert not space.contains(-1)
        assert not space.contains(1.5)
        assert not space.contains(True)

    def test_discrete_with_start(self):
        space = Discrete(2, start=5)
        assert space.contains(5) and space.contains(6)
        assert not space.contains(0)

    def test_discrete_invalid(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_discrete_equality(self):
        assert Discrete(2) == Discrete(2)
        assert Discrete(2) != Discrete(3)

    def test_box_sample_within_bounds(self):
        space = Box(low=np.array([-1.0, 0.0]), high=np.array([1.0, 2.0]), seed=0)
        for _ in range(50):
            sample = space.sample()
            assert space.contains(sample)

    def test_box_unbounded_sampling(self):
        space = Box(low=np.array([-np.inf, 0.0]), high=np.array([np.inf, np.inf]), seed=0)
        sample = space.sample()
        assert sample.shape == (2,)
        assert np.all(np.isfinite(sample))
        assert not space.is_bounded()

    def test_box_contains_checks_shape(self):
        space = Box(-1.0, 1.0, shape=(3,))
        assert not space.contains(np.zeros(2))
        assert space.contains(np.zeros(3))

    def test_box_invalid_bounds(self):
        with pytest.raises(ValueError):
            Box(low=1.0, high=-1.0, shape=(2,))

    def test_space_seeding_reproducible(self):
        a, b = Discrete(10, seed=3), Discrete(10, seed=3)
        assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]


class TestCartPole:
    def test_reset_state_near_zero(self, cartpole_env):
        obs, info = cartpole_env.reset(seed=1)
        assert obs.shape == (4,)
        assert np.all(np.abs(obs) <= 0.05)
        assert isinstance(info, dict)

    def test_step_before_reset_raises(self):
        env = CartPoleEnv(seed=0)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_invalid_action_rejected(self, cartpole_env):
        cartpole_env.reset(seed=0)
        with pytest.raises(ValueError):
            cartpole_env.step(5)

    def test_reward_is_one_per_step(self, cartpole_env):
        cartpole_env.reset(seed=0)
        result = cartpole_env.step(0)
        assert result.reward == 1.0

    def test_terminates_on_angle(self):
        env = CartPoleEnv(max_episode_steps=None, seed=0)
        env.reset(seed=0)
        done = False
        steps = 0
        while not done and steps < 1000:
            result = env.step(0)   # constant push left -> the pole must fall
            done = result.terminated
            steps += 1
        assert done
        assert steps < 200

    def test_truncates_at_episode_limit(self):
        env = CartPoleEnv(max_episode_steps=5, seed=0)
        env.reset(seed=0)
        result = None
        for _ in range(5):
            result = env.step(env.action_space.sample())
            if result.done:
                break
        assert result.truncated or result.terminated

    def test_observation_bounds_match_table2(self):
        env = CartPoleEnv(seed=0)
        table = env.observation_bounds_table
        assert table["cart_position"] == (-4.8, 4.8)
        assert table["cart_velocity"][1] == math.inf
        # The observation-space angle bound is 2 x 12 degrees = 0.418 rad; the
        # paper's Table 2 quotes the same numeric value (41.8) with a degree
        # sign, i.e. the radian bound printed as degrees.
        angle_bound_rad = env.observation_space.high[2]
        assert angle_bound_rad == pytest.approx(0.418, abs=0.01)
        assert table["pole_angle_degrees"][1] == pytest.approx(math.degrees(angle_bound_rad))
        # The episode itself terminates at +-2.4 m and +-12 degrees.
        assert env.params.position_threshold == 2.4
        assert env.params.angle_threshold_degrees == 12.0

    def test_dynamics_deterministic_given_state(self):
        env = CartPoleEnv(seed=0)
        state = np.array([0.01, 0.0, 0.02, 0.0])
        a = env._dynamics(state, 1)
        b = env._dynamics(state, 1)
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_trajectory(self):
        def rollout(seed):
            env = CartPoleEnv(seed=seed)
            obs, _ = env.reset(seed=seed)
            trace = [obs]
            for _ in range(20):
                result = env.step(1)
                trace.append(result.observation)
                if result.done:
                    break
            return np.concatenate(trace)

        np.testing.assert_array_equal(rollout(7), rollout(7))

    def test_random_policy_average_length(self):
        """Random play should survive roughly 20-25 steps (Gym's known value)."""
        env = CartPoleEnv(seed=0)
        rng = np.random.default_rng(0)
        lengths = []
        for _ in range(100):
            env.reset()
            steps = 0
            done = False
            while not done:
                result = env.step(int(rng.integers(2)))
                steps += 1
                done = result.done
            lengths.append(steps)
        assert 15 < np.mean(lengths) < 35


class TestMountainCarAndAcrobot:
    def test_mountain_car_reset_range(self):
        env = MountainCarEnv(seed=0)
        obs, _ = env.reset()
        assert -0.6 <= obs[0] <= -0.4
        assert obs[1] == 0.0

    def test_mountain_car_negative_reward(self):
        env = MountainCarEnv(seed=0)
        env.reset()
        assert env.step(1).reward == -1.0

    def test_mountain_car_velocity_clipped(self):
        env = MountainCarEnv(seed=0)
        env.reset()
        for _ in range(100):
            result = env.step(2)
            assert abs(result.observation[1]) <= MountainCarEnv.MAX_SPEED + 1e-12
            if result.done:
                break

    def test_mountain_car_truncates(self):
        env = MountainCarEnv(max_episode_steps=10, seed=0)
        env.reset()
        done = False
        steps = 0
        while not done:
            result = env.step(1)
            done = result.done
            steps += 1
        assert steps <= 10

    def test_acrobot_observation_shape(self):
        env = AcrobotEnv(seed=0)
        obs, _ = env.reset()
        assert obs.shape == (6,)
        # cos/sin components stay in [-1, 1]
        assert np.all(np.abs(obs[:4]) <= 1.0)

    def test_acrobot_step_and_reward(self):
        env = AcrobotEnv(seed=0)
        env.reset()
        result = env.step(0)
        assert result.reward in (-1.0, 0.0)
        assert env.observation_space.contains(result.observation)

    def test_acrobot_angle_wrapping(self):
        assert AcrobotEnv._wrap(3 * np.pi, -np.pi, np.pi) == pytest.approx(np.pi, abs=1e-9)


class TestRegistry:
    def test_known_ids_registered(self):
        for env_id in ("CartPole-v0", "CartPole-v1", "MountainCar-v0", "Acrobot-v1"):
            assert env_id in registry

    def test_make_cartpole_v0(self):
        env = make("CartPole-v0", seed=0)
        assert isinstance(env, CartPoleEnv)
        assert env.spec.max_episode_steps == 200
        assert env.spec.reward_threshold == 195.0

    def test_make_cartpole_v1_longer(self):
        env = make("CartPole-v1", seed=0)
        assert env.max_episode_steps == 500

    def test_make_unknown(self):
        with pytest.raises(KeyError):
            make("Pong-v0")

    def test_spec_lookup(self):
        assert spec("CartPole-v0").reward_threshold == 195.0
        with pytest.raises(KeyError):
            spec("Nope-v0")

    def test_make_with_statistics(self):
        env = make("CartPole-v0", seed=0, record_statistics=True)
        assert isinstance(env, EpisodeStatistics)

    def test_make_override_kwargs(self):
        env = make("CartPole-v0", seed=0, max_episode_steps=50)
        assert env.max_episode_steps == 50


class TestWrappers:
    def test_time_limit_truncates(self):
        env = TimeLimit(CartPoleEnv(max_episode_steps=None, seed=0), max_episode_steps=3)
        env.reset()
        results = [env.step(1) for _ in range(3)]
        assert results[-1].truncated

    def test_time_limit_invalid(self):
        with pytest.raises(ValueError):
            TimeLimit(CartPoleEnv(seed=0), 0)

    def test_episode_statistics_records(self):
        env = EpisodeStatistics(CartPoleEnv(seed=0))
        for _ in range(3):
            env.reset()
            done = False
            while not done:
                result = env.step(env.action_space.sample())
                done = result.done
        assert env.n_episodes == 3
        assert len(env.episode_returns) == 3
        assert all(length > 0 for length in env.episode_lengths)
        assert env.episode_returns[0] == env.episode_lengths[0]   # +1 reward per step

    def test_episode_statistics_info_annotation(self):
        env = EpisodeStatistics(CartPoleEnv(max_episode_steps=5, seed=0))
        env.reset()
        result = None
        done = False
        while not done:
            result = env.step(0)
            done = result.done
        assert "episode" in result.info

    def test_wrapper_unwrapped(self):
        inner = CartPoleEnv(seed=0)
        wrapped = EpisodeStatistics(TimeLimit(inner, 10))
        assert wrapped.unwrapped is inner
        assert wrapped.action_space is inner.action_space


class TestStepResult:
    def test_tuple_protocol(self):
        result = StepResult(np.zeros(2), 1.0, False, True, {"k": 1})
        obs, reward, terminated, truncated, info = result
        assert reward == 1.0 and truncated and not terminated
        assert result.done
