"""The systems env family: Autoscale-v0 dynamics, bit-identity, spec API.

Three layers under test, mirroring the env-family redesign:

* the queueing simulator itself — seeded determinism, reward bounds,
  overload termination, the cold-start pipeline;
* the generic vectorized fast path — ``SyncVectorEnv`` must drive
  ``AutoscaleEnv.batch_dynamics`` bit-identically to the per-env loop, and
  the unified Trainer's serial and lock-step drivers must produce
  float-exact identical curves (the same ``.hex()`` discipline as
  ``test_training_equivalence.py``);
* the spec/registry generalization — ``EnvSpec`` capability metadata,
  registry-derived ``SweepTask`` dimensions with the deprecation path for
  explicit overrides, and ``ExperimentSpec.env_overrides`` plumbing.
"""

import warnings

import numpy as np
import pytest

from repro.api import ArtifactStore, Budget, ExperimentSpec, get_spec, run
from repro.core.designs import make_design
from repro.envs import AutoscaleEnv, AutoscaleParams
from repro.envs.registry import (
    env_dimensions,
    make as make_env,
    register as register_env,
    registry as registry_dict,
    spec as env_spec,
)
from repro.parallel import EnvFactory, SyncVectorEnv
from repro.parallel.sweep import SweepRunner, SweepSpec, SweepTask
from repro.training import Trainer, TrainingConfig

N_DIMS = AutoscaleParams().n_state_dims


def _autoscale_factories(n, *, base_seed=300, **kwargs):
    return [EnvFactory("Autoscale-v0", seed=base_seed + i,
                       kwargs=tuple(sorted(kwargs.items()))) for i in range(n)]


# ------------------------------------------------------------------- dynamics
class TestAutoscaleEnv:
    def test_reset_shape_and_initial_fleet(self):
        env = AutoscaleEnv(seed=5)
        obs, info = env.reset()
        params = env.params
        assert obs.shape == (N_DIMS,)
        assert obs[0] == params.initial_replicas / params.max_replicas
        assert obs[1] == 0.0                       # empty backlog
        assert 0.0 <= obs[5] < 1.0                 # the episode's diurnal phase

    def test_same_seed_same_trajectory(self):
        def rollout(seed):
            env = AutoscaleEnv(seed=seed)
            obs, _ = env.reset()
            trace = [obs]
            for step in range(60):
                result = env.step(step % 3)
                trace.append(result.observation)
                if result.terminated or result.truncated:
                    break
            return np.array(trace)

        np.testing.assert_array_equal(rollout(11), rollout(11))
        assert not np.array_equal(rollout(11), rollout(12))

    def test_reward_bounds(self):
        env = AutoscaleEnv(seed=3)
        env.reset()
        worst = -(env.params.latency_weight + env.params.cost_weight)
        for step in range(200):
            result = env.step(env.action_space.sample())
            assert worst <= result.reward < 0.0    # cost > 0 while fleet > 0
            if result.terminated or result.truncated:
                env.reset()

    def test_scale_down_policy_overloads(self):
        """Retiring replicas forever must eventually overflow the queue."""
        env = AutoscaleEnv(seed=0, max_episode_steps=None)
        env.reset()
        for _ in range(2000):
            result = env.step(0)
            if result.terminated:
                assert result.observation[1] >= 1.0   # backlog >= queue_limit
                break
        else:
            pytest.fail("scale-to-min policy never overloaded")

    def test_cold_start_pipeline_delays_launches(self):
        """A launched replica joins the warm pool only after cold_start_steps."""
        params = AutoscaleParams(burst_start_probability=0.0)
        env = AutoscaleEnv(seed=9, params=params)
        obs, _ = env.reset()
        warm0 = obs[0]
        result = env.step(2)                        # launch
        assert result.observation[0] == warm0       # still cold
        assert result.observation[7:].sum() > 0.0   # sitting in the pipeline
        for _ in range(params.cold_start_steps):
            result = env.step(1)                    # hold while it warms
        assert result.observation[0] == warm0 + 1.0 / params.max_replicas

    def test_truncates_at_max_episode_steps(self):
        env = AutoscaleEnv(seed=21, max_episode_steps=7)
        env.reset()
        for _ in range(6):
            result = env.step(1)
            assert not result.truncated
        result = env.step(1)
        assert result.truncated

    def test_power_of_two_scales_enforced(self):
        with pytest.raises(ValueError, match="power of two"):
            AutoscaleParams(queue_limit=1000.0)
        with pytest.raises(ValueError, match="cold_start_steps"):
            AutoscaleParams(cold_start_steps=0)

    def test_serial_step_is_one_row_batch_dynamics(self):
        """The serial env must walk the exact stream batch_dynamics defines."""
        env = AutoscaleEnv(seed=17)
        obs, _ = env.reset()
        shadow_rng = np.random.default_rng(np.random.SeedSequence(17))
        shadow_state = obs[None, :].copy()
        # Re-draw the reset's phase so the shadow generator stays in sync.
        shadow_rng.random()
        for step in range(50):
            expected, rewards, terminated = AutoscaleEnv.batch_dynamics(
                shadow_state, np.array([step]), np.array([1]), env.params,
                [shadow_rng])
            result = env.step(1)
            np.testing.assert_array_equal(result.observation, expected[0])
            assert result.reward == rewards[0]
            shadow_state = expected


# ------------------------------------------------- vectorized generic fast path
class TestGenericBatchedPath:
    def test_fast_path_enabled_for_uniform_autoscale(self):
        venv = SyncVectorEnv(_autoscale_factories(3))
        assert venv.uses_batch_dynamics
        assert not venv.uses_batch_physics      # CartPole's dedicated hook only
        off = SyncVectorEnv(_autoscale_factories(3), batch_physics=False)
        assert not off.uses_batch_dynamics

    def test_fast_path_disabled_for_mixed_params(self):
        heavy = AutoscaleParams(service_rate=4.0)
        fns = [lambda: make_env("Autoscale-v0", seed=0),
               lambda: AutoscaleEnv(params=heavy, seed=1)]
        assert not SyncVectorEnv(fns).uses_batch_dynamics

    def test_batched_matches_per_env_loop_bit_for_bit(self):
        fns = _autoscale_factories(4, max_episode_steps=90)
        fast = SyncVectorEnv(fns)
        slow = SyncVectorEnv(fns, batch_physics=False)
        assert fast.uses_batch_dynamics and not slow.uses_batch_dynamics
        obs_fast, _ = fast.reset(seed=23)
        obs_slow, _ = slow.reset(seed=23)
        np.testing.assert_array_equal(obs_fast, obs_slow)
        rng = np.random.default_rng(1)
        for _ in range(400):                    # crosses autoresets
            actions = rng.integers(0, 3, size=4)
            rf, rs = fast.step(actions), slow.step(actions)
            np.testing.assert_array_equal(rf.observations, rs.observations)
            np.testing.assert_array_equal(rf.rewards, rs.rewards)
            np.testing.assert_array_equal(rf.terminated, rs.terminated)
            np.testing.assert_array_equal(rf.truncated, rs.truncated)
            for info_fast, info_slow in zip(rf.infos, rs.infos):
                if "final_observation" in info_fast or "final_observation" in info_slow:
                    np.testing.assert_array_equal(
                        info_fast["final_observation"],
                        info_slow["final_observation"])


# ------------------------------------------------------ trainer bit-identity
def _autoscale_config(seed, max_episodes=3):
    return TrainingConfig(env_id="Autoscale-v0", max_episodes=max_episodes,
                          max_steps_per_episode=60, solved_threshold=55.0,
                          solved_window=5, reward_shaping=False, seed=seed)


class TestSerialLockstepBitIdentity:
    @pytest.mark.parametrize("design", ["OS-ELM-L2-Lipschitz", "DQN"])
    def test_fit_equals_fit_lockstep(self, design):
        def agent(seed):
            return make_design(design, n_states=N_DIMS, n_actions=3,
                               n_hidden=8, seed=seed)

        serial = Trainer().fit(agent(31), config=_autoscale_config(31),
                               n_hidden=8)
        lockstep = Trainer().fit_lockstep([agent(31)], [_autoscale_config(31)],
                                          strategy="generic")[0]
        assert [r.steps for r in serial.curve.records] \
            == [r.steps for r in lockstep.curve.records]
        # .hex() round-trips floats exactly: these are byte-identity checks.
        assert [r.shaped_return.hex() for r in serial.curve.records] \
            == [r.shaped_return.hex() for r in lockstep.curve.records]
        assert [r.moving_average.hex() for r in serial.curve.records] \
            == [r.moving_average.hex() for r in lockstep.curve.records]

    def test_mixed_design_lockstep_batch_matches_serial(self):
        designs = ["OS-ELM", "DQN", "FPGA"]
        agents = [make_design(d, n_states=N_DIMS, n_actions=3, n_hidden=8,
                              seed=40 + i) for i, d in enumerate(designs)]
        configs = [_autoscale_config(40 + i) for i in range(len(designs))]
        batch = Trainer().fit_lockstep(agents, configs, strategy="generic")
        for i, design in enumerate(designs):
            solo = Trainer().fit(
                make_design(design, n_states=N_DIMS, n_actions=3, n_hidden=8,
                            seed=40 + i),
                config=configs[i], n_hidden=8)
            assert [r.steps for r in solo.curve.records] \
                == [r.steps for r in batch[i].curve.records], design

    def test_vectorized_backend_reports_lockstep(self):
        spec = SweepSpec(designs=("OS-ELM-L2-Lipschitz", "DQN"), n_seeds=1,
                         n_hidden=8, training=_autoscale_config(None, 2),
                         root_seed=13)
        vec = SweepRunner(spec, backend="vectorized").run()
        assert set(vec.backends_used) == {"lockstep"}
        ser = SweepRunner(spec, backend="serial").run()
        for vec_result, ser_result in zip(vec.results_for(), ser.results_for()):
            np.testing.assert_array_equal(vec_result.curve.steps,
                                          ser_result.curve.steps)


# -------------------------------------------------------- registry metadata
class TestEnvRegistryMetadata:
    def test_autoscale_spec_capabilities(self):
        spec = env_spec("Autoscale-v0")
        assert spec.n_states == N_DIMS
        assert spec.n_actions == 3
        assert spec.supports_batch_dynamics is True
        assert spec.family == "systems"

    def test_classic_control_family_default(self):
        assert env_spec("CartPole-v0").family == "classic-control"
        assert env_spec("CartPole-v0").supports_batch_dynamics is True
        assert env_spec("MountainCar-v0").supports_batch_dynamics is False

    def test_env_dimensions_answered_from_metadata(self):
        """With metadata present the factory must never be called."""
        def exploding_factory(**kwargs):
            raise AssertionError("metadata lookup must not instantiate")

        register_env("MetaOnly-v0", exploding_factory, n_states=12, n_actions=5)
        try:
            assert env_dimensions("MetaOnly-v0") == (12, 5)
        finally:
            registry_dict.pop("MetaOnly-v0", None)

    def test_env_dimensions_falls_back_to_instantiation(self):
        register_env("NoMeta-v0", lambda **kw: AutoscaleEnv(**kw))
        try:
            assert env_dimensions("NoMeta-v0") == (N_DIMS, 3)
        finally:
            registry_dict.pop("NoMeta-v0", None)


class TestSweepTaskDimensionDerivation:
    def test_dims_derived_from_registry(self):
        task = SweepTask(design="DQN", env_id="Autoscale-v0", n_hidden=8,
                         gamma=0.99, seed=1, trial=0,
                         training=TrainingConfig(max_episodes=1))
        assert (task.n_states, task.n_actions) == (N_DIMS, 3)

    def test_matching_explicit_dims_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            task = SweepTask(design="DQN", env_id="CartPole-v0", n_hidden=8,
                             gamma=0.99, seed=1, trial=0,
                             training=TrainingConfig(max_episodes=1),
                             n_states=4, n_actions=2)
        assert (task.n_states, task.n_actions) == (4, 2)

    def test_contradicting_explicit_dims_warn(self):
        with pytest.warns(DeprecationWarning, match="registry"):
            task = SweepTask(design="DQN", env_id="CartPole-v0", n_hidden=8,
                             gamma=0.99, seed=1, trial=0,
                             training=TrainingConfig(max_episodes=1),
                             n_states=6, n_actions=3)
        # Deprecated, but the override still wins for one release.
        assert (task.n_states, task.n_actions) == (6, 3)

    def test_unregistered_env_requires_and_keeps_explicit_dims(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            task = SweepTask(design="DQN", env_id="NotRegistered-v9", n_hidden=8,
                             gamma=0.99, seed=1, trial=0,
                             training=TrainingConfig(max_episodes=1),
                             n_states=3, n_actions=2)
        assert (task.n_states, task.n_actions) == (3, 2)


# ------------------------------------------------------------- env_overrides
class TestEnvOverrides:
    def _spec(self, **overrides):
        defaults = dict(
            name="ov", designs=("OS-ELM-L2",), hidden_sizes=(8,),
            env_ids=("Autoscale-v0",),
            budget=Budget(max_episodes=4, solved_threshold=45.0,
                          solved_window=5, reward_shaping=False))
        defaults.update(overrides)
        return ExperimentSpec(**defaults)

    def test_budget_and_env_params_overrides_reach_tasks(self):
        spec = self._spec(env_overrides={"Autoscale-v0": {
            "max_episodes": 9,
            "env_params": {"max_episode_steps": 50}}})
        task = spec.tasks()[0]
        assert task.training.max_episodes == 9
        assert task.training.env_params == (("max_episode_steps", 50),)
        assert spec.env_budget("Autoscale-v0").max_episodes == 9
        assert spec.env_params("Autoscale-v0") == {"max_episode_steps": 50}

    def test_overrides_scoped_per_env(self):
        spec = self._spec(env_ids=("CartPole-v0", "Autoscale-v0"),
                          env_overrides={"Autoscale-v0": {"max_episodes": 2}})
        by_env = {task.env_id: task for task in spec.tasks()}
        assert by_env["Autoscale-v0"].training.max_episodes == 2
        assert by_env["CartPole-v0"].training.max_episodes == 4

    def test_unknown_env_or_field_rejected(self):
        with pytest.raises(ValueError, match="env_overrides"):
            self._spec(env_overrides={"MountainCar-v0": {"max_episodes": 2}})
        with pytest.raises(ValueError, match="env_overrides"):
            self._spec(env_overrides={"Autoscale-v0": {"bogus_knob": 1}})

    def test_empty_overrides_excluded_from_hash(self):
        """Pre-existing specs must keep their spec_hash: an empty
        env_overrides may not enter the canonical form."""
        plain = self._spec()
        explicit = self._spec(env_overrides={})
        assert plain.spec_hash == explicit.spec_hash
        assert "env_overrides" not in plain.canonical_json()
        loaded = ExperimentSpec.from_json(plain.to_json())
        assert loaded == plain and loaded.spec_hash == plain.spec_hash

    def test_non_empty_overrides_change_hash_and_round_trip(self):
        spec = self._spec(env_overrides={"Autoscale-v0": {"max_episodes": 9}})
        assert spec.spec_hash != self._spec().spec_hash
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec and rebuilt.spec_hash == spec.spec_hash


# ----------------------------------------------------- registered experiments
class TestAutoscaleSpecs:
    def test_registered_variants(self):
        paper = get_spec("autoscale", scale="paper")
        ci = get_spec("autoscale", scale="ci")
        assert paper.env_ids == ci.env_ids == ("Autoscale-v0",)
        assert paper.budget.reward_shaping is False
        assert ci is get_spec("autoscale_ci")        # shared cache identity
        assert ci.env_params("Autoscale-v0") == {"max_episode_steps": 50}

    def test_ci_run_serial_vs_vectorized_byte_identical(self, tmp_path):
        from repro.api.reports import summary_csv

        spec = get_spec("autoscale_ci")
        serial = run(spec, backend="serial")
        vectorized = run(spec, backend="vectorized")
        assert {record.backend_used for record in vectorized.trials} \
            == {"lockstep"}
        assert summary_csv(serial) == summary_csv(vectorized)

    def test_save_policy_serve_round_trip(self, tmp_path):
        from repro.serving import PolicyClient, PolicyServer, load_spec_policies

        spec = get_spec("autoscale_ci")
        run(spec, backend="serial", out=str(tmp_path), save_policy=True)
        store = ArtifactStore(tmp_path)
        policies, problems = load_spec_policies(store, spec)
        assert problems == []
        assert sorted(policies) == sorted(spec.designs)
        design = "OS-ELM-L2-Lipschitz"
        agent = policies[design]
        states = np.random.default_rng(0).uniform(0.0, 1.0, size=(8, N_DIMS))
        with PolicyServer({design: agent}) as server:
            with PolicyClient(*server.address) as client:
                served = [client.act(state, design=design) for state in states]
        offline = [agent.act(state, explore=False) for state in states]
        assert served == offline
